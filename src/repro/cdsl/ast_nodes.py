"""AST node definitions for the C subset.

Nodes are plain mutable Python objects.  Every node records:

* ``loc`` — the :class:`~repro.cdsl.source.SourceLocation` it was parsed
  from (or attached to by a transformation), used by debug info and the
  crash-site mapping oracle;
* ``_fields`` — the names of child-bearing attributes, which powers the
  generic visitor / transformer machinery in :mod:`repro.cdsl.visitor`.

Two families of nodes never appear in parsed source and are only created by
compiler passes:

* sanitizer check nodes (:class:`SanitizerCheck`) inserted by the ASan /
  UBSan / MSan instrumentation passes, and
* profiling hooks (:class:`ProfileHook`) inserted by the UBfuzz execution
  profiler (paper §3.2.2).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from repro.cdsl.ctypes_ import CType
from repro.cdsl.source import UNKNOWN_LOCATION, SourceLocation

_node_counter = itertools.count(1)


class Node:
    """Base class of all AST nodes."""

    _fields: tuple[str, ...] = ()

    def __init__(self, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        self.loc = loc
        self.node_id = next(_node_counter)

    def children(self) -> Iterable["Node"]:
        """Yield all direct child nodes."""
        for name in self._fields:
            value = getattr(self, name, None)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.node_id} loc={self.loc}>"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class of expressions.

    ``ctype`` is filled in by semantic analysis; ``symbol`` is set on
    identifiers after name resolution.
    """

    def __init__(self, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.ctype: Optional[CType] = None


class IntLiteral(Expr):
    _fields = ()

    def __init__(self, value: int, suffix: str = "",
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.value = value
        self.suffix = suffix


class StringLiteral(Expr):
    _fields = ()

    def __init__(self, value: str, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.value = value


class Identifier(Expr):
    _fields = ()

    def __init__(self, name: str, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.name = name
        self.symbol = None  # repro.cdsl.sema.VarSymbol, set by Sema


class BinaryOp(Expr):
    """A binary operation.  ``op`` is the C spelling, e.g. ``"+"``, ``"<<"``."""

    _fields = ("lhs", "rhs")

    ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
    SHIFT_OPS = ("<<", ">>")
    BITWISE_OPS = ("&", "|", "^")
    RELATIONAL_OPS = ("<", ">", "<=", ">=", "==", "!=")
    LOGICAL_OPS = ("&&", "||")

    def __init__(self, op: str, lhs: Expr, rhs: Expr,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class UnaryOp(Expr):
    """Prefix unary operators: ``-``, ``+``, ``!``, ``~``."""

    _fields = ("operand",)

    def __init__(self, op: str, operand: Expr,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.op = op
        self.operand = operand


class IncDec(Expr):
    """Pre/post increment and decrement (``++x``, ``x--`` ...)."""

    _fields = ("operand",)

    def __init__(self, op: str, operand: Expr, is_prefix: bool,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.op = op  # "++" or "--"
        self.operand = operand
        self.is_prefix = is_prefix


class Assignment(Expr):
    """Simple and compound assignment (``=``, ``+=``, ``<<=`` ...)."""

    _fields = ("target", "value")

    def __init__(self, op: str, target: Expr, value: Expr,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.op = op
        self.target = target
        self.value = value


class ArraySubscript(Expr):
    _fields = ("base", "index")

    def __init__(self, base: Expr, index: Expr,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.base = base
        self.index = index


class Deref(Expr):
    """Pointer dereference ``*p``."""

    _fields = ("pointer",)

    def __init__(self, pointer: Expr, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.pointer = pointer


class AddressOf(Expr):
    _fields = ("operand",)

    def __init__(self, operand: Expr, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.operand = operand


class MemberAccess(Expr):
    """``base.field`` (``arrow=False``) or ``base->field`` (``arrow=True``)."""

    _fields = ("base",)

    def __init__(self, base: Expr, field: str, arrow: bool,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.base = base
        self.field = field
        self.arrow = arrow


class Cast(Expr):
    _fields = ("operand",)

    def __init__(self, target_type: CType, operand: Expr,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.target_type = target_type
        self.operand = operand


class Call(Expr):
    _fields = ("args",)

    def __init__(self, name: str, args: Sequence[Expr],
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.name = name
        self.args = list(args)


class Conditional(Expr):
    """The ternary operator ``cond ? then : otherwise``."""

    _fields = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class CommaExpr(Expr):
    _fields = ("parts",)

    def __init__(self, parts: Sequence[Expr],
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.parts = list(parts)


class SizeofExpr(Expr):
    """``sizeof(type)`` or ``sizeof expr`` — always folded to a constant."""

    _fields = ("operand",)

    def __init__(self, operand: Optional[Expr] = None,
                 target_type: Optional[CType] = None,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.operand = operand
        self.target_type = target_type


# ---------------------------------------------------------------------------
# Compiler-inserted expression wrappers
# ---------------------------------------------------------------------------


class SanitizerCheck(Expr):
    """A sanitizer check wrapping an expression.

    ``kind`` identifies the check (e.g. ``"asan_load"``, ``"ubsan_add"``,
    ``"msan_branch"``); ``inner`` is the original expression whose evaluation
    the check guards.  The VM consults the sanitizer runtime before/while
    evaluating ``inner`` and aborts with a report when the check fires.
    ``detail`` carries check-specific data (access size, operator, ...).
    """

    _fields = ("inner",)

    def __init__(self, kind: str, inner: Expr, sanitizer: str,
                 detail: Optional[dict] = None,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.kind = kind
        self.inner = inner
        self.sanitizer = sanitizer
        self.detail = detail or {}


class ProfileHook(Expr):
    """A profiling hook wrapping an expression (paper §2.1, LOG_* statements).

    When executed in profiling mode the VM records the value (and, for
    pointers, the pointed-to memory object) of ``inner`` under ``key``.
    The hook is transparent: it evaluates to the value of ``inner``.
    """

    _fields = ("inner",)

    def __init__(self, key: str, inner: Expr,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.key = key
        self.inner = inner


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    pass


class VarDecl(Node):
    """A single declarator.  ``init`` is an expression or :class:`InitList`."""

    _fields = ("init",)

    def __init__(self, name: str, ctype: CType, init: Optional[Node] = None,
                 is_global: bool = False, qualifiers: Sequence[str] = (),
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.init = init
        self.is_global = is_global
        self.qualifiers = tuple(qualifiers)
        self.symbol = None  # set by Sema


class InitList(Node):
    _fields = ("items",)

    def __init__(self, items: Sequence[Node],
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.items = list(items)


class DeclStmt(Stmt):
    _fields = ("decls",)

    def __init__(self, decls: Sequence[VarDecl],
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.decls = list(decls)


class ExprStmt(Stmt):
    _fields = ("expr",)

    def __init__(self, expr: Expr, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.expr = expr


class CompoundStmt(Stmt):
    _fields = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt],
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.stmts = list(stmts)
        self.scope_id: Optional[int] = None  # set by Sema


class IfStmt(Stmt):
    _fields = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Stmt, otherwise: Optional[Stmt] = None,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class WhileStmt(Stmt):
    _fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.cond = cond
        self.body = body


class ForStmt(Stmt):
    """``for (init; cond; step) body``; any of the three heads may be None."""

    _fields = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Node], cond: Optional[Expr],
                 step: Optional[Expr], body: Stmt,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class ReturnStmt(Stmt):
    _fields = ("value",)

    def __init__(self, value: Optional[Expr] = None,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.value = value


class BreakStmt(Stmt):
    _fields = ()


class ContinueStmt(Stmt):
    _fields = ()


class EmptyStmt(Stmt):
    _fields = ()


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


class ParamDecl(Node):
    _fields = ()

    def __init__(self, name: str, ctype: CType,
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.symbol = None


class FunctionDecl(Node):
    _fields = ("params", "body")

    def __init__(self, name: str, return_type: CType,
                 params: Sequence[ParamDecl], body: Optional[CompoundStmt],
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.name = name
        self.return_type = return_type
        self.params = list(params)
        self.body = body


class StructDef(Node):
    _fields = ()

    def __init__(self, struct_type, loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.struct_type = struct_type


class TranslationUnit(Node):
    """A whole program: struct definitions, globals and functions in order."""

    _fields = ("decls",)

    def __init__(self, decls: Sequence[Node],
                 loc: SourceLocation = UNKNOWN_LOCATION) -> None:
        super().__init__(loc)
        self.decls = list(decls)

    @property
    def functions(self) -> List[FunctionDecl]:
        return [d for d in self.decls if isinstance(d, FunctionDecl)]

    @property
    def globals(self) -> List[VarDecl]:
        out: List[VarDecl] = []
        for d in self.decls:
            if isinstance(d, DeclStmt):
                out.extend(d.decls)
            elif isinstance(d, VarDecl):
                out.append(d)
        return out

    @property
    def struct_defs(self) -> List[StructDef]:
        return [d for d in self.decls if isinstance(d, StructDef)]

    def function_named(self, name: str) -> Optional[FunctionDecl]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None


# Node categories used by expression matching and the optimizer passes.

MEMORY_ACCESS_NODES = (ArraySubscript, Deref, MemberAccess)
LVALUE_NODES = (Identifier, ArraySubscript, Deref, MemberAccess)
