"""Pretty-printer: AST back to C source text.

UBfuzz's pipeline is *generate seed → mutate AST → print → re-parse →
compile*, exactly like the paper's tool emits a mutated C file that GCC and
LLVM then compile.  Printing one statement per line keeps the ``(line,
offset)`` crash sites stable and readable.

The printer is precedence-aware so the printed text parses back to an
equivalent AST (`tests/cdsl/test_roundtrip.py` checks this property with
hypothesis-generated programs).
"""

from __future__ import annotations

from typing import List

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct

# Precedence levels, higher binds tighter.  Mirrors the parser's table.
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_PREC_ASSIGN = 0
_PREC_UNARY = 11
_PREC_POSTFIX = 12
_PREC_PRIMARY = 13


class Printer:
    """Stateless printer; create one and call :meth:`print_unit`."""

    def __init__(self, indent_width: int = 2) -> None:
        self.indent_width = indent_width

    # -- public API ----------------------------------------------------------

    def print_unit(self, unit: ast.TranslationUnit) -> str:
        lines: List[str] = []
        for decl in unit.decls:
            lines.extend(self._print_top_level(decl))
        return "\n".join(lines) + "\n"

    def print_stmt(self, stmt: ast.Stmt) -> str:
        return "\n".join(self._print_statement(stmt, 0))

    def print_expr(self, expr: ast.Expr) -> str:
        return self._expr(expr, _PREC_ASSIGN)

    # -- declarations --------------------------------------------------------

    def _print_top_level(self, decl: ast.Node) -> List[str]:
        if isinstance(decl, ast.StructDef):
            return self._print_struct_def(decl)
        if isinstance(decl, ast.DeclStmt):
            return [self._declarator_text(d) + ";" for d in decl.decls]
        if isinstance(decl, ast.VarDecl):
            return [self._declarator_text(decl) + ";"]
        if isinstance(decl, ast.FunctionDecl):
            return self._print_function(decl)
        raise TypeError(f"cannot print top-level node {type(decl).__name__}")

    def _print_struct_def(self, decl: ast.StructDef) -> List[str]:
        struct = decl.struct_type
        lines = [f"struct {struct.tag} {{"]
        for field in struct.fields:
            lines.append(" " * self.indent_width
                         + self._declare(field.ctype, field.name) + ";")
        lines.append("};")
        return lines

    def _print_function(self, fn: ast.FunctionDecl) -> List[str]:
        params = ", ".join(self._declare(p.ctype, p.name) for p in fn.params)
        if not params:
            params = "void"
        header = f"{self._type_text(fn.return_type)} {fn.name}({params})"
        if fn.body is None:
            return [header + ";"]
        lines = [header + " {"]
        for stmt in fn.body.stmts:
            lines.extend(self._print_statement(stmt, 1))
        lines.append("}")
        return lines

    def _decl_stmt_text(self, stmt: ast.DeclStmt) -> str:
        # All declarators in one DeclStmt share a base type; print them
        # as separate full declarators joined by commas for fidelity.
        parts = [self._declarator_text(d) for d in stmt.decls]
        if len(parts) == 1:
            return parts[0] + ";"
        # Multiple declarators: only merge when they share the same base
        # spelling; otherwise emit separate statements joined by "; ".
        return "; ".join(parts) + ";"

    def _declarator_text(self, decl: ast.VarDecl) -> str:
        quals = " ".join(q for q in decl.qualifiers if q != "extern")
        text = self._declare(decl.ctype, decl.name)
        if quals:
            text = f"{quals} {text}"
        if decl.init is not None:
            text += " = " + self._init_text(decl.init)
        return text

    def _init_text(self, init: ast.Node) -> str:
        if isinstance(init, ast.InitList):
            inner = ", ".join(self._init_text(item) for item in init.items)
            return "{" + inner + "}"
        return self._expr(init, _PREC_ASSIGN + 1)

    # -- types ---------------------------------------------------------------

    def _type_text(self, ctype: ct.CType) -> str:
        if isinstance(ctype, ct.StructType):
            return f"struct {ctype.tag}"
        if isinstance(ctype, ct.PointerType):
            return f"{self._type_text(ctype.pointee)}*"
        return str(ctype)

    def _declare(self, ctype: ct.CType, name: str) -> str:
        """Spell a declaration of *name* with type *ctype*."""
        suffix = ""
        while isinstance(ctype, ct.ArrayType):
            suffix += f"[{ctype.length}]"
            ctype = ctype.element
        stars = ""
        while isinstance(ctype, ct.PointerType):
            stars += "*"
            ctype = ctype.pointee
        base = f"struct {ctype.tag}" if isinstance(ctype, ct.StructType) else str(ctype)
        return f"{base} {stars}{name}{suffix}"

    # -- statements ----------------------------------------------------------

    def _print_statement(self, stmt: ast.Stmt, depth: int) -> List[str]:
        pad = " " * (self.indent_width * depth)
        if isinstance(stmt, ast.DeclStmt):
            # One declarator per line so that printing is a fixpoint of
            # parse-then-print (multi-declarator statements re-parse as
            # separate declarations).
            return [pad + self._declarator_text(d) + ";" for d in stmt.decls]
        if isinstance(stmt, ast.ExprStmt):
            return [pad + self._expr(stmt.expr, _PREC_ASSIGN) + ";"]
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                return [pad + "return;"]
            return [pad + "return " + self._expr(stmt.value, _PREC_ASSIGN) + ";"]
        if isinstance(stmt, ast.BreakStmt):
            return [pad + "break;"]
        if isinstance(stmt, ast.ContinueStmt):
            return [pad + "continue;"]
        if isinstance(stmt, ast.EmptyStmt):
            return [pad + ";"]
        if isinstance(stmt, ast.CompoundStmt):
            lines = [pad + "{"]
            for inner in stmt.stmts:
                lines.extend(self._print_statement(inner, depth + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(stmt, ast.IfStmt):
            lines = [pad + f"if ({self._expr(stmt.cond, _PREC_ASSIGN)})"]
            lines.extend(self._print_block_or_stmt(stmt.then, depth))
            if stmt.otherwise is not None:
                lines.append(pad + "else")
                lines.extend(self._print_block_or_stmt(stmt.otherwise, depth))
            return lines
        if isinstance(stmt, ast.WhileStmt):
            lines = [pad + f"while ({self._expr(stmt.cond, _PREC_ASSIGN)})"]
            lines.extend(self._print_block_or_stmt(stmt.body, depth))
            return lines
        if isinstance(stmt, ast.ForStmt):
            init = ""
            if isinstance(stmt.init, ast.DeclStmt):
                init = self._decl_stmt_text(stmt.init)[:-1]  # strip ";"
            elif isinstance(stmt.init, ast.ExprStmt):
                init = self._expr(stmt.init.expr, _PREC_ASSIGN)
            elif isinstance(stmt.init, ast.Expr):
                init = self._expr(stmt.init, _PREC_ASSIGN)
            cond = self._expr(stmt.cond, _PREC_ASSIGN) if stmt.cond is not None else ""
            step = self._expr(stmt.step, _PREC_ASSIGN) if stmt.step is not None else ""
            lines = [pad + f"for ({init}; {cond}; {step})"]
            lines.extend(self._print_block_or_stmt(stmt.body, depth))
            return lines
        raise TypeError(f"cannot print statement {type(stmt).__name__}")

    def _print_block_or_stmt(self, stmt: ast.Stmt, depth: int) -> List[str]:
        if isinstance(stmt, ast.CompoundStmt):
            return self._print_statement(stmt, depth)
        return self._print_statement(stmt, depth + 1)

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: ast.Expr, min_prec: int) -> str:
        text, prec = self._expr_with_prec(expr)
        if prec < min_prec:
            return f"({text})"
        return text

    def _expr_with_prec(self, expr: ast.Expr) -> tuple[str, int]:
        if isinstance(expr, ast.IntLiteral):
            return self._literal_text(expr), _PREC_PRIMARY
        if isinstance(expr, ast.StringLiteral):
            return '"' + expr.value + '"', _PREC_PRIMARY
        if isinstance(expr, ast.Identifier):
            return expr.name, _PREC_PRIMARY
        if isinstance(expr, ast.BinaryOp):
            prec = _BINARY_PRECEDENCE[expr.op]
            lhs = self._expr(expr.lhs, prec)
            rhs = self._expr(expr.rhs, prec + 1)
            return f"{lhs} {expr.op} {rhs}", prec
        if isinstance(expr, ast.UnaryOp):
            operand = self._expr(expr.operand, _PREC_UNARY)
            return f"{expr.op}{operand}", _PREC_UNARY
        if isinstance(expr, ast.IncDec):
            operand = self._expr(expr.operand, _PREC_UNARY)
            if expr.is_prefix:
                return f"{expr.op}{operand}", _PREC_UNARY
            return f"{operand}{expr.op}", _PREC_POSTFIX
        if isinstance(expr, ast.Assignment):
            target = self._expr(expr.target, _PREC_UNARY)
            value = self._expr(expr.value, _PREC_ASSIGN)
            return f"{target} {expr.op} {value}", _PREC_ASSIGN
        if isinstance(expr, ast.ArraySubscript):
            base = self._expr(expr.base, _PREC_POSTFIX)
            index = self._expr(expr.index, _PREC_ASSIGN)
            return f"{base}[{index}]", _PREC_POSTFIX
        if isinstance(expr, ast.Deref):
            pointer = self._expr(expr.pointer, _PREC_UNARY)
            return f"*{pointer}", _PREC_UNARY
        if isinstance(expr, ast.AddressOf):
            operand = self._expr(expr.operand, _PREC_UNARY)
            return f"&{operand}", _PREC_UNARY
        if isinstance(expr, ast.MemberAccess):
            base = self._expr(expr.base, _PREC_POSTFIX)
            sep = "->" if expr.arrow else "."
            return f"{base}{sep}{expr.field}", _PREC_POSTFIX
        if isinstance(expr, ast.Cast):
            operand = self._expr(expr.operand, _PREC_UNARY)
            return f"({self._type_text(expr.target_type)}){operand}", _PREC_UNARY
        if isinstance(expr, ast.Call):
            args = ", ".join(self._expr(a, _PREC_ASSIGN + 1) for a in expr.args)
            return f"{expr.name}({args})", _PREC_POSTFIX
        if isinstance(expr, ast.Conditional):
            cond = self._expr(expr.cond, 1)
            then = self._expr(expr.then, _PREC_ASSIGN)
            other = self._expr(expr.otherwise, _PREC_ASSIGN)
            return f"{cond} ? {then} : {other}", _PREC_ASSIGN
        if isinstance(expr, ast.CommaExpr):
            parts = ", ".join(self._expr(p, _PREC_ASSIGN) for p in expr.parts)
            # The comma operator binds weaker than assignment; report a
            # precedence below every context so it is always parenthesised
            # except at statement level, where parentheses are harmless.
            return parts, -1
        if isinstance(expr, ast.SizeofExpr):
            if expr.target_type is not None:
                return f"sizeof({self._type_text(expr.target_type)})", _PREC_UNARY
            return f"sizeof {self._expr(expr.operand, _PREC_UNARY)}", _PREC_UNARY
        if isinstance(expr, ast.ProfileHook):
            # Profiling hooks are transparent; printing them yields the
            # original expression (they are removed before emission anyway).
            return self._expr_with_prec(expr.inner)
        if isinstance(expr, ast.SanitizerCheck):
            # Sanitizer checks live only in compiled binaries; if a check
            # somehow reaches the printer, emit the guarded expression.
            return self._expr_with_prec(expr.inner)
        raise TypeError(f"cannot print expression {type(expr).__name__}")

    def _literal_text(self, literal: ast.IntLiteral) -> str:
        suffix = literal.suffix
        value = literal.value
        if value < 0:
            # Negative literals do not exist in C; print as a parenthesised
            # negation so re-parsing yields an equivalent expression.
            return f"(-{-value}{suffix})"
        return f"{value}{suffix}"


_DEFAULT_PRINTER = Printer()


def print_program(unit: ast.TranslationUnit) -> str:
    """Render a translation unit back to compilable C-subset source.

    The output is stable: ``print_program(parse_program(s))`` is a fixed
    point, which the UB generator and the test-case reducer rely on when
    they re-parse their own output.
    """
    return _DEFAULT_PRINTER.print_unit(unit)


def print_expr(expr: ast.Expr) -> str:
    return _DEFAULT_PRINTER.print_expr(expr)


def print_stmt(stmt: ast.Stmt) -> str:
    return _DEFAULT_PRINTER.print_stmt(stmt)
