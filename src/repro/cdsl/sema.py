"""Semantic analysis: scopes, name resolution and type annotation.

Running :func:`analyze` over a parsed translation unit

* builds the scope tree (needed by the use-after-scope UB synthesiser, which
  must know whether a pointed-to object outlives the pointer),
* resolves every :class:`~repro.cdsl.ast_nodes.Identifier` to a
  :class:`VarSymbol`,
* annotates every expression with its C type (``expr.ctype``), and
* records the function table (user functions plus builtins).

The analysis is deliberately permissive — the mutated programs produced by
UB insertion are still *syntactically and statically* valid C, only their
runtime behaviour is undefined, so anything the parser accepts should pass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.utils.errors import SemaError

_symbol_counter = itertools.count(1)
_scope_counter = itertools.count(1)


@dataclass
class Scope:
    """A lexical scope.  Depth 0 is the global scope."""

    scope_id: int
    parent: Optional["Scope"]
    depth: int
    symbols: Dict[str, "VarSymbol"] = field(default_factory=dict)

    def declare(self, symbol: "VarSymbol") -> None:
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional["VarSymbol"]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def is_ancestor_of(self, other: "Scope") -> bool:
        """True if *self* encloses (or equals) *other*."""
        scope: Optional[Scope] = other
        while scope is not None:
            if scope.scope_id == self.scope_id:
                return True
            scope = scope.parent
        return False


@dataclass
class VarSymbol:
    """A declared variable (global, local or parameter)."""

    name: str
    ctype: ct.CType
    storage: str              # "global", "local" or "param"
    scope: Scope
    decl: Optional[ast.Node]
    uid: int = field(default_factory=lambda: next(_symbol_counter))

    @property
    def is_global(self) -> bool:
        return self.storage == "global"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VarSymbol {self.name}:{self.ctype} {self.storage}>"


@dataclass
class FunctionSignature:
    name: str
    return_type: ct.CType
    param_types: tuple
    variadic: bool = False
    is_builtin: bool = False


BUILTIN_FUNCTIONS: Dict[str, FunctionSignature] = {
    "printf": FunctionSignature("printf", ct.INT, (ct.PointerType(ct.CHAR),), True, True),
    "__builtin_printf": FunctionSignature("__builtin_printf", ct.INT,
                                          (ct.PointerType(ct.CHAR),), True, True),
    "malloc": FunctionSignature("malloc", ct.PointerType(ct.VOID), (ct.ULONG,), False, True),
    "calloc": FunctionSignature("calloc", ct.PointerType(ct.VOID),
                                (ct.ULONG, ct.ULONG), False, True),
    "free": FunctionSignature("free", ct.VOID, (ct.PointerType(ct.VOID),), False, True),
    "memset": FunctionSignature("memset", ct.PointerType(ct.VOID),
                                (ct.PointerType(ct.VOID), ct.INT, ct.ULONG), False, True),
    "abort": FunctionSignature("abort", ct.VOID, (), False, True),
    "exit": FunctionSignature("exit", ct.VOID, (ct.INT,), False, True),
}


@dataclass
class SemanticInfo:
    """The result of semantic analysis over one translation unit."""

    unit: ast.TranslationUnit
    global_scope: Scope
    scopes: List[Scope]
    functions: Dict[str, FunctionSignature]
    symbols: List[VarSymbol]

    def symbol_named(self, name: str) -> Optional[VarSymbol]:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        return None


class Sema:
    """The semantic analyser.  One instance analyses one translation unit."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.global_scope = Scope(next(_scope_counter), None, 0)
        self.scopes: List[Scope] = [self.global_scope]
        self.symbols: List[VarSymbol] = []
        self.functions: Dict[str, FunctionSignature] = dict(BUILTIN_FUNCTIONS)
        self.current_function: Optional[ast.FunctionDecl] = None

    # -- public --------------------------------------------------------------

    def analyze(self) -> SemanticInfo:
        # Register user functions first so forward calls resolve.
        for fn in self.unit.functions:
            self.functions[fn.name] = FunctionSignature(
                fn.name, fn.return_type,
                tuple(p.ctype for p in fn.params), False, False)
        for decl in self.unit.decls:
            if isinstance(decl, ast.StructDef):
                continue
            if isinstance(decl, ast.DeclStmt):
                for var in decl.decls:
                    var.is_global = True
                    self._declare_var(var, self.global_scope, "global")
            elif isinstance(decl, ast.VarDecl):
                decl.is_global = True
                self._declare_var(decl, self.global_scope, "global")
            elif isinstance(decl, ast.FunctionDecl):
                self._analyze_function(decl)
        return SemanticInfo(self.unit, self.global_scope, self.scopes,
                            self.functions, self.symbols)

    # -- declarations --------------------------------------------------------

    def _new_scope(self, parent: Scope) -> Scope:
        scope = Scope(next(_scope_counter), parent, parent.depth + 1)
        self.scopes.append(scope)
        return scope

    def _declare_var(self, decl: ast.VarDecl, scope: Scope, storage: str) -> VarSymbol:
        symbol = VarSymbol(decl.name, decl.ctype, storage, scope, decl)
        decl.symbol = symbol
        scope.declare(symbol)
        self.symbols.append(symbol)
        if decl.init is not None:
            self._visit_initializer(decl.init, scope)
        return symbol

    def _visit_initializer(self, init: ast.Node, scope: Scope) -> None:
        if isinstance(init, ast.InitList):
            for item in init.items:
                self._visit_initializer(item, scope)
        else:
            self._expr_type(init, scope)

    def _analyze_function(self, fn: ast.FunctionDecl) -> None:
        self.current_function = fn
        fn_scope = self._new_scope(self.global_scope)
        for param in fn.params:
            symbol = VarSymbol(param.name, param.ctype, "param", fn_scope, param)
            param.symbol = symbol
            fn_scope.declare(symbol)
            self.symbols.append(symbol)
        if fn.body is not None:
            self._analyze_compound(fn.body, fn_scope)
        self.current_function = None

    # -- statements ----------------------------------------------------------

    def _analyze_compound(self, block: ast.CompoundStmt, parent: Scope) -> None:
        scope = self._new_scope(parent)
        block.scope_id = scope.scope_id
        for stmt in block.stmts:
            self._analyze_stmt(stmt, scope)

    def _analyze_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for var in stmt.decls:
                self._declare_var(var, scope, "local")
        elif isinstance(stmt, ast.ExprStmt):
            self._expr_type(stmt.expr, scope)
        elif isinstance(stmt, ast.CompoundStmt):
            self._analyze_compound(stmt, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._expr_type(stmt.cond, scope)
            self._analyze_stmt_in_child_scope(stmt.then, scope)
            if stmt.otherwise is not None:
                self._analyze_stmt_in_child_scope(stmt.otherwise, scope)
        elif isinstance(stmt, ast.WhileStmt):
            self._expr_type(stmt.cond, scope)
            self._analyze_stmt_in_child_scope(stmt.body, scope)
        elif isinstance(stmt, ast.ForStmt):
            for_scope = self._new_scope(scope)
            if isinstance(stmt.init, ast.DeclStmt):
                for var in stmt.init.decls:
                    self._declare_var(var, for_scope, "local")
            elif isinstance(stmt.init, ast.ExprStmt):
                self._expr_type(stmt.init.expr, for_scope)
            elif isinstance(stmt.init, ast.Expr):
                self._expr_type(stmt.init, for_scope)
            if stmt.cond is not None:
                self._expr_type(stmt.cond, for_scope)
            if stmt.step is not None:
                self._expr_type(stmt.step, for_scope)
            self._analyze_stmt_in_child_scope(stmt.body, for_scope)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._expr_type(stmt.value, scope)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt, ast.EmptyStmt)):
            pass
        else:
            raise SemaError(f"unsupported statement {type(stmt).__name__}")

    def _analyze_stmt_in_child_scope(self, stmt: ast.Stmt, scope: Scope) -> None:
        """If/while/for bodies that are compounds get their own scope."""
        if isinstance(stmt, ast.CompoundStmt):
            self._analyze_compound(stmt, scope)
        else:
            self._analyze_stmt(stmt, scope)

    # -- expressions ---------------------------------------------------------

    def _expr_type(self, expr: ast.Expr, scope: Scope) -> ct.CType:
        ctype = self._compute_type(expr, scope)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr, scope: Scope) -> ct.CType:
        if isinstance(expr, ast.IntLiteral):
            return _literal_type(expr)
        if isinstance(expr, ast.StringLiteral):
            return ct.PointerType(ct.CHAR)
        if isinstance(expr, ast.Identifier):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise SemaError(f"use of undeclared identifier {expr.name!r} "
                                f"at {expr.loc}")
            expr.symbol = symbol
            return symbol.ctype
        if isinstance(expr, ast.BinaryOp):
            return self._binary_type(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            operand = self._expr_type(expr.operand, scope)
            if expr.op == "!":
                return ct.INT
            return ct.integer_promote(operand)
        if isinstance(expr, ast.IncDec):
            return self._expr_type(expr.operand, scope)
        if isinstance(expr, ast.Assignment):
            target = self._expr_type(expr.target, scope)
            self._expr_type(expr.value, scope)
            return ct.decay(target)
        if isinstance(expr, ast.ArraySubscript):
            base = ct.decay(self._expr_type(expr.base, scope))
            self._expr_type(expr.index, scope)
            if isinstance(base, ct.PointerType):
                return base.pointee
            raise SemaError(f"subscripted value is not an array or pointer at {expr.loc}")
        if isinstance(expr, ast.Deref):
            pointer = ct.decay(self._expr_type(expr.pointer, scope))
            if isinstance(pointer, ct.PointerType):
                return pointer.pointee
            raise SemaError(f"cannot dereference non-pointer at {expr.loc}")
        if isinstance(expr, ast.AddressOf):
            operand = self._expr_type(expr.operand, scope)
            return ct.PointerType(operand)
        if isinstance(expr, ast.MemberAccess):
            base = self._expr_type(expr.base, scope)
            if expr.arrow:
                base = ct.decay(base)
                if not isinstance(base, ct.PointerType):
                    raise SemaError(f"-> applied to non-pointer at {expr.loc}")
                base = base.pointee
            if not isinstance(base, ct.StructType):
                raise SemaError(f"member access on non-struct at {expr.loc}")
            field_info = base.field_named(expr.field)
            if field_info is None:
                raise SemaError(f"struct {base.tag} has no field {expr.field!r}")
            return field_info.ctype
        if isinstance(expr, ast.Cast):
            self._expr_type(expr.operand, scope)
            return expr.target_type
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope)
        if isinstance(expr, ast.Conditional):
            self._expr_type(expr.cond, scope)
            then = ct.decay(self._expr_type(expr.then, scope))
            otherwise = ct.decay(self._expr_type(expr.otherwise, scope))
            if then.is_integer and otherwise.is_integer:
                return ct.usual_arithmetic_conversion(then, otherwise)
            return then
        if isinstance(expr, ast.CommaExpr):
            last = ct.INT
            for part in expr.parts:
                last = self._expr_type(part, scope)
            return last
        if isinstance(expr, ast.SizeofExpr):
            if expr.operand is not None:
                self._expr_type(expr.operand, scope)
            return ct.ULONG
        if isinstance(expr, ast.ProfileHook):
            return self._expr_type(expr.inner, scope)
        if isinstance(expr, ast.SanitizerCheck):
            return self._expr_type(expr.inner, scope)
        raise SemaError(f"unsupported expression {type(expr).__name__}")

    def _binary_type(self, expr: ast.BinaryOp, scope: Scope) -> ct.CType:
        lhs = ct.decay(self._expr_type(expr.lhs, scope))
        rhs = ct.decay(self._expr_type(expr.rhs, scope))
        op = expr.op
        if op in ast.BinaryOp.RELATIONAL_OPS or op in ast.BinaryOp.LOGICAL_OPS:
            return ct.INT
        if op in ("+", "-"):
            if isinstance(lhs, ct.PointerType) and rhs.is_integer:
                return lhs
            if isinstance(rhs, ct.PointerType) and lhs.is_integer and op == "+":
                return rhs
            if isinstance(lhs, ct.PointerType) and isinstance(rhs, ct.PointerType):
                return ct.LONG
        if op in ast.BinaryOp.SHIFT_OPS:
            return ct.integer_promote(lhs) if lhs.is_integer else ct.INT
        if lhs.is_integer and rhs.is_integer:
            return ct.usual_arithmetic_conversion(lhs, rhs)
        # Mixed pointer/integer bit operations should not occur in the subset.
        if isinstance(lhs, ct.PointerType):
            return lhs
        if isinstance(rhs, ct.PointerType):
            return rhs
        return ct.INT

    def _call_type(self, expr: ast.Call, scope: Scope) -> ct.CType:
        for arg in expr.args:
            self._expr_type(arg, scope)
        signature = self.functions.get(expr.name)
        if signature is None:
            raise SemaError(f"call to undeclared function {expr.name!r} at {expr.loc}")
        return signature.return_type


def _literal_type(literal: ast.IntLiteral) -> ct.CType:
    suffix = literal.suffix.lower()
    unsigned = "u" in suffix
    is_long = "l" in suffix
    if unsigned and is_long:
        return ct.ULONG
    if unsigned:
        return ct.UINT if ct.UINT.contains(literal.value) else ct.ULONG
    if is_long:
        return ct.LONG
    if ct.INT.contains(literal.value):
        return ct.INT
    if ct.UINT.contains(literal.value):
        return ct.UINT
    return ct.LONG


def analyze(unit: ast.TranslationUnit) -> SemanticInfo:
    """Run semantic analysis over *unit*, annotating the AST in place.

    Resolves every identifier to a symbol, types every expression
    (``expr.ctype``) and assigns scope ids to compound statements.  Returns
    the :class:`SemanticInfo` summary; raises
    :class:`~repro.utils.errors.SemaError` on undeclared names, bad types
    and the like.  Must run before a unit is interpreted or optimized.
    """
    return Sema(unit).analyze()
