"""Source locations.

The crash-site mapping oracle (paper §3.3, Definition 2) identifies a crash
site by the ``(line, offset)`` pair of the last executed instruction.  In this
reproduction the "offset" is the 1-based column of the expression in the
printed source program, which plays the same role as the byte offset GCC/LLVM
debug information records within a line.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A (line, column) position in a source file.  Both are 1-based.

    ``line == 0`` denotes an unknown/compiler-generated location, which is
    what instrumentation inserted by sanitizer passes carries unless it is
    attached to an existing expression.
    """

    line: int = 0
    col: int = 0

    @property
    def is_known(self) -> bool:
        return self.line > 0

    def site(self) -> tuple[int, int]:
        """Return the (line, offset) tuple used by crash-site mapping."""
        return (self.line, self.col)

    def __str__(self) -> str:
        if not self.is_known:
            return "<unknown>"
        return f"{self.line}:{self.col}"


UNKNOWN_LOCATION = SourceLocation(0, 0)
