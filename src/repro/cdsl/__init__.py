"""The C-subset frontend: lexer, parser, semantic analysis and printer."""

from repro.cdsl import ast_nodes, ctypes_
from repro.cdsl.lexer import Lexer, Token, tokenize
from repro.cdsl.parser import Parser, parse_expression, parse_program
from repro.cdsl.printer import Printer, print_expr, print_program, print_stmt
from repro.cdsl.sema import Scope, Sema, SemanticInfo, VarSymbol, analyze
from repro.cdsl.source import UNKNOWN_LOCATION, SourceLocation
from repro.cdsl.visitor import (
    NodeTransformer,
    NodeVisitor,
    clone,
    clone_fresh,
    count_nodes,
    enclosing_statement,
    find_nodes,
    insert_before,
    parent_map,
    replace_node,
    walk,
)

__all__ = [
    "ast_nodes",
    "ctypes_",
    "Lexer",
    "Token",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_program",
    "Printer",
    "print_expr",
    "print_program",
    "print_stmt",
    "Scope",
    "Sema",
    "SemanticInfo",
    "VarSymbol",
    "analyze",
    "UNKNOWN_LOCATION",
    "SourceLocation",
    "NodeTransformer",
    "NodeVisitor",
    "clone",
    "clone_fresh",
    "count_nodes",
    "enclosing_statement",
    "find_nodes",
    "insert_before",
    "parent_map",
    "replace_node",
    "walk",
]
