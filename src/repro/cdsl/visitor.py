"""Generic AST traversal utilities.

Three tools are provided:

* :func:`walk` — preorder iteration over every node of a subtree;
* :class:`NodeVisitor` — dispatch-by-class read-only visitor;
* :class:`NodeTransformer` — rebuilds children from the values returned by
  ``visit_*`` methods, which is how optimizer passes and the UB-insertion
  mutator rewrite programs.

There is also :func:`clone` for deep-copying a program before mutating it,
and :func:`find_nodes` / :func:`parent_map` helpers used by expression
matching and shadow statement insertion.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Iterator, List, Optional, Type, TypeVar

from repro.cdsl import ast_nodes as ast

N = TypeVar("N", bound=ast.Node)


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Yield *node* and all of its descendants in preorder."""
    yield node
    for child in node.children():
        yield from walk(child)


def find_nodes(root: ast.Node, node_type: Type[N],
               predicate: Optional[Callable[[N], bool]] = None) -> List[N]:
    """Collect all descendants of *root* of the given type."""
    out: List[N] = []
    for node in walk(root):
        if isinstance(node, node_type) and (predicate is None or predicate(node)):
            out.append(node)
    return out


def clone(node: N) -> N:
    """Deep-copy a subtree so it can be mutated independently of the seed.

    Node ids are preserved, which lets callers find "the same" node in the
    clone (the UB generator relies on this to locate its mutation site).
    """
    return copy.deepcopy(node)


def fast_clone(node: N) -> N:
    """Structurally copy a subtree without ``copy.deepcopy`` overhead.

    Node objects and the lists holding them are copied (ids preserved,
    aliasing respected via a memo); every other attribute value — source
    locations, types, resolved symbols, detail dicts — is *shared* with the
    original, except plain dicts which get a shallow copy.  The result is
    meant for the compilation pipeline, which re-runs semantic analysis on
    the copy before anything consults symbols or types, so sharing the
    stale annotations is safe.  Prefer :func:`clone` when the copy must be
    fully independent (e.g. seed mutation).
    """
    return _fast_clone(node, {})


def _fast_clone(node: ast.Node, memo: Dict[int, ast.Node]) -> ast.Node:
    existing = memo.get(id(node))
    if existing is not None:
        return existing
    new = object.__new__(type(node))
    memo[id(node)] = new
    target = new.__dict__
    for key, value in node.__dict__.items():
        if isinstance(value, ast.Node):
            target[key] = _fast_clone(value, memo)
        elif type(value) is list:
            target[key] = [_fast_clone(item, memo)
                           if isinstance(item, ast.Node) else item
                           for item in value]
        elif type(value) is dict:
            target[key] = dict(value)
        else:
            target[key] = value
    return new


def clone_fresh(node: N) -> N:
    """Deep-copy a subtree and give every copied node a new id.

    Use this when duplicating an expression *within* one program (e.g. a
    safe-math wrapper reusing a divisor): node ids must stay unique inside a
    single translation unit.
    """
    new = copy.deepcopy(node)
    for child in walk(new):
        child.node_id = next(ast._node_counter)
    return new


def parent_map(root: ast.Node) -> Dict[int, ast.Node]:
    """Map each node id to its parent node (the root has no entry)."""
    parents: Dict[int, ast.Node] = {}
    for node in walk(root):
        for child in node.children():
            parents[child.node_id] = node
    return parents


def count_nodes(root: ast.Node) -> int:
    return sum(1 for _ in walk(root))


class NodeVisitor:
    """Read-only visitor with ``visit_<ClassName>`` dispatch."""

    def visit(self, node: ast.Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node):
        for child in node.children():
            self.visit(child)
        return None


class NodeTransformer:
    """Rewriting visitor.

    ``visit_*`` methods return the replacement node (possibly the original),
    ``None`` to delete a statement from its containing list, or a list of
    nodes to splice several statements in place of one.
    """

    def visit(self, node: ast.Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node):
        for field_name in node._fields:
            value = getattr(node, field_name, None)
            if isinstance(value, ast.Node):
                new_value = self.visit(value)
                if isinstance(new_value, list):
                    raise TypeError(
                        f"cannot splice a list into single-node field "
                        f"{type(node).__name__}.{field_name}")
                setattr(node, field_name, new_value)
            elif isinstance(value, list):
                new_list: List[ast.Node] = []
                for item in value:
                    if not isinstance(item, ast.Node):
                        new_list.append(item)
                        continue
                    result = self.visit(item)
                    if result is None:
                        continue
                    if isinstance(result, list):
                        new_list.extend(result)
                    else:
                        new_list.append(result)
                setattr(node, field_name, new_list)
        return node


def replace_node(root: ast.Node, target: ast.Node, replacement: ast.Node) -> bool:
    """Replace *target* (found by identity) with *replacement* in the tree.

    Returns True if the target was found.  Used by shadow statement
    insertion to swap an expression for its instrumented form.
    """
    for node in walk(root):
        for field_name in node._fields:
            value = getattr(node, field_name, None)
            if value is target:
                setattr(node, field_name, replacement)
                return True
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if item is target:
                        value[i] = replacement
                        return True
    return False


def insert_before(root: ast.Node, anchor_stmt: ast.Stmt,
                  new_stmts: List[ast.Stmt]) -> bool:
    """Insert statements immediately before *anchor_stmt* in its block.

    The anchor must live in a statement list (a compound statement or the
    top-level declaration list); returns False when no such list is found.
    """
    for node in walk(root):
        for field_name in node._fields:
            value = getattr(node, field_name, None)
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if item is anchor_stmt:
                        value[i:i] = list(new_stmts)
                        return True
    return False


def enclosing_statement(root: ast.Node, expr: ast.Expr) -> Optional[ast.Stmt]:
    """Return the innermost statement that contains *expr* (by identity)."""
    parents = parent_map(root)
    node: ast.Node = expr
    while node.node_id in parents:
        node = parents[node.node_id]
        if isinstance(node, ast.Stmt):
            return node
    return None
