"""Recursive-descent parser for the C subset.

The grammar covers the language produced by the seed generator and used by
the paper's example programs: global and local variable declarations (with
initializer lists), struct definitions, functions, the usual statements, and
the full C expression precedence for the operators in the subset.

The parser produces the AST defined in :mod:`repro.cdsl.ast_nodes`; semantic
analysis (:mod:`repro.cdsl.sema`) resolves names and computes types
afterwards.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.lexer import Token, tokenize
from repro.cdsl.source import SourceLocation
from repro.utils.errors import ParseError

_TYPE_KEYWORDS = {"void", "char", "short", "int", "long", "unsigned", "signed", "struct"}
_QUALIFIER_KEYWORDS = {"const", "volatile", "static", "extern"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0
        self.struct_types: dict[str, ct.StructType] = {}

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.index]
        if not tok.is_eof:
            self.index += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind != kind:
            return False
        return text is None or tok.text == text

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._peek()
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line, tok.col)
        return self._advance()

    @staticmethod
    def _loc(tok: Token) -> SourceLocation:
        return SourceLocation(tok.line, tok.col)

    # -- entry points --------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        decls: List[ast.Node] = []
        first = self._peek()
        while not self._peek().is_eof:
            decls.extend(self._parse_external_declaration())
        return ast.TranslationUnit(decls, loc=self._loc(first))

    def parse_expression(self) -> ast.Expr:
        """Parse a standalone expression (used by tests and the reducer)."""
        expr = self._parse_expr()
        if not self._peek().is_eof:
            tok = self._peek()
            raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.col)
        return expr

    # -- declarations --------------------------------------------------------

    def _parse_external_declaration(self) -> List[ast.Node]:
        start = self._peek()
        qualifiers = self._parse_qualifiers()
        base_type, struct_def = self._parse_base_type()
        out: List[ast.Node] = []
        if struct_def is not None and self._check("op", ";"):
            # A bare "struct tag { ... };" definition.
            self._advance()
            out.append(struct_def)
            return out
        if struct_def is not None:
            out.append(struct_def)

        # Could be a function definition or a (list of) variable declarations.
        name_tok, ctype = self._parse_declarator(base_type)
        if self._check("op", "("):
            fn = self._parse_function_rest(name_tok, ctype, start)
            out.append(fn)
            return out
        decls = [self._finish_declarator(name_tok, ctype, qualifiers, is_global=True)]
        while self._match("op", ","):
            name_tok, ctype = self._parse_declarator(base_type)
            decls.append(self._finish_declarator(name_tok, ctype, qualifiers, is_global=True))
        self._expect("op", ";")
        out.append(ast.DeclStmt(decls, loc=self._loc(start)))
        return out

    def _parse_qualifiers(self) -> List[str]:
        qualifiers: List[str] = []
        while self._peek().kind == "keyword" and self._peek().text in _QUALIFIER_KEYWORDS:
            qualifiers.append(self._advance().text)
        return qualifiers

    def _parse_base_type(self) -> tuple[ct.CType, Optional[ast.StructDef]]:
        """Parse a type specifier (possibly defining a struct on the way)."""
        tok = self._peek()
        if tok.kind != "keyword" or tok.text not in _TYPE_KEYWORDS:
            raise ParseError(f"expected type specifier, found {tok.text!r}", tok.line, tok.col)
        if tok.text == "struct":
            return self._parse_struct_specifier()
        words: List[str] = []
        while (self._peek().kind == "keyword"
               and self._peek().text in _TYPE_KEYWORDS
               and self._peek().text != "struct"):
            words.append(self._advance().text)
            # also consume interleaved qualifiers ("unsigned const int")
            while self._peek().kind == "keyword" and self._peek().text in _QUALIFIER_KEYWORDS:
                self._advance()
        return self._type_from_words(words, tok), None

    def _type_from_words(self, words: List[str], tok: Token) -> ct.CType:
        if not words:
            raise ParseError("missing type specifier", tok.line, tok.col)
        if words == ["void"]:
            return ct.VOID
        signed = True
        if "unsigned" in words:
            signed = False
            words = [w for w in words if w != "unsigned"]
        words = [w for w in words if w != "signed"]
        if not words or words == ["int"]:
            base = ct.INT
        elif "char" in words:
            base = ct.CHAR
        elif "short" in words:
            base = ct.SHORT
        elif "long" in words:
            base = ct.LONG
        else:
            raise ParseError(f"unsupported type {' '.join(words)!r}", tok.line, tok.col)
        if signed:
            return base
        return {ct.CHAR: ct.UCHAR, ct.SHORT: ct.USHORT,
                ct.INT: ct.UINT, ct.LONG: ct.ULONG}[base]

    def _parse_struct_specifier(self) -> tuple[ct.CType, Optional[ast.StructDef]]:
        struct_tok = self._expect("keyword", "struct")
        tag_tok = self._expect("ident")
        tag = tag_tok.text
        if not self._check("op", "{"):
            if tag not in self.struct_types:
                # Forward reference: create an empty placeholder.
                self.struct_types[tag] = ct.StructType.create(tag, [])
            return self.struct_types[tag], None
        self._advance()  # "{"
        members: List[tuple[str, ct.CType]] = []
        while not self._check("op", "}"):
            self._parse_qualifiers()
            base_type, _ = self._parse_base_type()
            while True:
                name_tok, ctype = self._parse_declarator(base_type)
                members.append((name_tok.text, ctype))
                if not self._match("op", ","):
                    break
            # The paper writes "struct a { int x }" without a trailing
            # semicolon on the field; accept both spellings.
            self._match("op", ";")
        self._expect("op", "}")
        struct_type = ct.StructType.create(tag, members)
        self.struct_types[tag] = struct_type
        return struct_type, ast.StructDef(struct_type, loc=self._loc(struct_tok))

    def _parse_declarator(self, base_type: ct.CType) -> tuple[Token, ct.CType]:
        """Parse ``* ... name [N]...`` and return (name token, full type)."""
        ctype = base_type
        while self._match("op", "*"):
            ctype = ct.PointerType(ctype)
        name_tok = self._expect("ident")
        # Array suffixes: the outermost dimension is written first.
        dims: List[int] = []
        while self._match("op", "["):
            size_tok = self._expect("number")
            dims.append(_parse_int_text(size_tok.text)[0])
            self._expect("op", "]")
        for dim in reversed(dims):
            ctype = ct.ArrayType(ctype, dim)
        return name_tok, ctype

    def _finish_declarator(self, name_tok: Token, ctype: ct.CType,
                           qualifiers: List[str], is_global: bool) -> ast.VarDecl:
        init: Optional[ast.Node] = None
        if self._match("op", "="):
            init = self._parse_initializer()
        return ast.VarDecl(name_tok.text, ctype, init, is_global=is_global,
                           qualifiers=qualifiers, loc=self._loc(name_tok))

    def _parse_initializer(self) -> ast.Node:
        if self._check("op", "{"):
            open_tok = self._advance()
            items: List[ast.Node] = []
            if not self._check("op", "}"):
                items.append(self._parse_initializer())
                while self._match("op", ","):
                    if self._check("op", "}"):
                        break
                    items.append(self._parse_initializer())
            self._expect("op", "}")
            return ast.InitList(items, loc=self._loc(open_tok))
        return self._parse_assignment()

    def _parse_function_rest(self, name_tok: Token, return_type: ct.CType,
                             start: Token) -> ast.FunctionDecl:
        self._expect("op", "(")
        params: List[ast.ParamDecl] = []
        if not self._check("op", ")"):
            if self._check("keyword", "void") and self._check("op", ")", offset=1):
                self._advance()
            else:
                while True:
                    self._parse_qualifiers()
                    base_type, _ = self._parse_base_type()
                    p_name, p_type = self._parse_declarator(base_type)
                    params.append(ast.ParamDecl(p_name.text, ct.decay(p_type),
                                                loc=self._loc(p_name)))
                    if not self._match("op", ","):
                        break
        self._expect("op", ")")
        if self._match("op", ";"):
            body = None
        else:
            body = self._parse_compound()
        return ast.FunctionDecl(name_tok.text, return_type, params, body,
                                loc=self._loc(start))

    # -- statements ----------------------------------------------------------

    def _parse_compound(self) -> ast.CompoundStmt:
        open_tok = self._expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self._check("op", "}"):
            stmts.append(self._parse_statement())
        self._expect("op", "}")
        return ast.CompoundStmt(stmts, loc=self._loc(open_tok))

    def _starts_declaration(self) -> bool:
        tok = self._peek()
        return tok.kind == "keyword" and (tok.text in _TYPE_KEYWORDS
                                          or tok.text in _QUALIFIER_KEYWORDS)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if self._check("op", "{"):
            return self._parse_compound()
        if self._check("op", ";"):
            self._advance()
            return ast.EmptyStmt(loc=self._loc(tok))
        if tok.kind == "keyword":
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                self._advance()
                value = None if self._check("op", ";") else self._parse_expr()
                self._expect("op", ";")
                return ast.ReturnStmt(value, loc=self._loc(tok))
            if tok.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.BreakStmt(loc=self._loc(tok))
            if tok.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.ContinueStmt(loc=self._loc(tok))
            if self._starts_declaration():
                return self._parse_local_declaration()
        expr = self._parse_expr()
        self._expect("op", ";")
        return ast.ExprStmt(expr, loc=self._loc(tok))

    def _parse_local_declaration(self) -> ast.DeclStmt:
        start = self._peek()
        qualifiers = self._parse_qualifiers()
        base_type, _ = self._parse_base_type()
        decls = []
        while True:
            name_tok, ctype = self._parse_declarator(base_type)
            decls.append(self._finish_declarator(name_tok, ctype, qualifiers,
                                                 is_global=False))
            if not self._match("op", ","):
                break
        self._expect("op", ";")
        return ast.DeclStmt(decls, loc=self._loc(start))

    def _parse_if(self) -> ast.IfStmt:
        tok = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        then = self._parse_statement()
        otherwise = None
        if self._match("keyword", "else"):
            otherwise = self._parse_statement()
        return ast.IfStmt(cond, then, otherwise, loc=self._loc(tok))

    def _parse_while(self) -> ast.WhileStmt:
        tok = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.WhileStmt(cond, body, loc=self._loc(tok))

    def _parse_for(self) -> ast.ForStmt:
        tok = self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[ast.Node] = None
        if not self._check("op", ";"):
            if self._starts_declaration():
                init = self._parse_local_declaration()
            else:
                init = ast.ExprStmt(self._parse_expr(), loc=self._loc(tok))
                self._expect("op", ";")
        else:
            self._advance()
        if isinstance(init, ast.DeclStmt):
            pass  # _parse_local_declaration consumed the ";"
        cond = None if self._check("op", ";") else self._parse_expr()
        self._expect("op", ";")
        step = None if self._check("op", ")") else self._parse_expr()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.ForStmt(init, cond, step, body, loc=self._loc(tok))

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        """Full expression including the comma operator."""
        first = self._parse_assignment()
        if not self._check("op", ","):
            return first
        parts = [first]
        while self._match("op", ","):
            parts.append(self._parse_assignment())
        return ast.CommaExpr(parts, loc=first.loc)

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_conditional()
        tok = self._peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self._advance()
            rhs = self._parse_assignment()
            return ast.Assignment(tok.text, lhs, rhs, loc=self._loc(tok))
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._check("op", "?"):
            q = self._advance()
            then = self._parse_assignment()
            self._expect("op", ":")
            otherwise = self._parse_conditional()
            return ast.Conditional(cond, then, otherwise, loc=self._loc(q))
        return cond

    # Binary operator precedence, lowest first.
    _PRECEDENCE: List[List[str]] = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        ops = self._PRECEDENCE[level]
        lhs = self._parse_binary(level + 1)
        while self._peek().kind == "op" and self._peek().text in ops:
            tok = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.BinaryOp(tok.text, lhs, rhs, loc=self._loc(tok))
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.IncDec(tok.text, operand, is_prefix=True, loc=self._loc(tok))
        if tok.kind == "op" and tok.text in ("-", "+", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(tok.text, operand, loc=self._loc(tok))
        if tok.kind == "op" and tok.text == "*":
            self._advance()
            operand = self._parse_unary()
            return ast.Deref(operand, loc=self._loc(tok))
        if tok.kind == "op" and tok.text == "&":
            self._advance()
            operand = self._parse_unary()
            return ast.AddressOf(operand, loc=self._loc(tok))
        if tok.kind == "keyword" and tok.text == "sizeof":
            self._advance()
            if self._check("op", "(") and self._is_type_start(1):
                self._advance()
                target_type = self._parse_type_name()
                self._expect("op", ")")
                return ast.SizeofExpr(target_type=target_type, loc=self._loc(tok))
            operand = self._parse_unary()
            return ast.SizeofExpr(operand=operand, loc=self._loc(tok))
        if tok.kind == "op" and tok.text == "(" and self._is_type_start(1):
            self._advance()
            target_type = self._parse_type_name()
            self._expect("op", ")")
            operand = self._parse_unary()
            return ast.Cast(target_type, operand, loc=self._loc(tok))
        return self._parse_postfix()

    def _is_type_start(self, offset: int) -> bool:
        tok = self._peek(offset)
        return tok.kind == "keyword" and (tok.text in _TYPE_KEYWORDS
                                          or tok.text in _QUALIFIER_KEYWORDS)

    def _parse_type_name(self) -> ct.CType:
        self._parse_qualifiers()
        base_type, _ = self._parse_base_type()
        ctype = base_type
        while self._match("op", "*"):
            ctype = ct.PointerType(ctype)
        return ctype

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if self._check("op", "["):
                self._advance()
                index = self._parse_expr()
                close = self._expect("op", "]")
                expr = ast.ArraySubscript(expr, index, loc=expr.loc or self._loc(tok))
                expr.loc = self._loc(tok)
            elif self._check("op", "("):
                if not isinstance(expr, ast.Identifier):
                    raise ParseError("only direct calls are supported", tok.line, tok.col)
                self._advance()
                args: List[ast.Expr] = []
                if not self._check("op", ")"):
                    args.append(self._parse_assignment())
                    while self._match("op", ","):
                        args.append(self._parse_assignment())
                self._expect("op", ")")
                expr = ast.Call(expr.name, args, loc=expr.loc)
            elif self._check("op", "."):
                self._advance()
                field = self._expect("ident")
                expr = ast.MemberAccess(expr, field.text, arrow=False, loc=self._loc(field))
            elif self._check("op", "->"):
                self._advance()
                field = self._expect("ident")
                expr = ast.MemberAccess(expr, field.text, arrow=True, loc=self._loc(field))
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self._advance()
                expr = ast.IncDec(tok.text, expr, is_prefix=False, loc=self._loc(tok))
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "number":
            self._advance()
            value, suffix = _parse_int_text(tok.text)
            return ast.IntLiteral(value, suffix, loc=self._loc(tok))
        if tok.kind == "string":
            self._advance()
            return ast.StringLiteral(tok.text[1:-1], loc=self._loc(tok))
        if tok.kind == "char":
            self._advance()
            return ast.IntLiteral(_char_value(tok.text), loc=self._loc(tok))
        if tok.kind == "ident":
            self._advance()
            return ast.Identifier(tok.text, loc=self._loc(tok))
        if self._check("op", "("):
            self._advance()
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def _parse_int_text(text: str) -> tuple[int, str]:
    """Split an integer literal into (value, suffix)."""
    body = text
    suffix = ""
    while body and body[-1] in "uUlL":
        suffix = body[-1] + suffix
        body = body[:-1]
    value = int(body, 0)
    return value, suffix


def _char_value(text: str) -> int:
    inner = text[1:-1]
    if inner.startswith("\\"):
        escapes = {"n": 10, "t": 9, "0": 0, "r": 13, "\\": 92, "'": 39}
        return escapes.get(inner[1], ord(inner[1]))
    return ord(inner) if inner else 0


def parse_program(source: str) -> ast.TranslationUnit:
    """Parse C-subset *source* into a :class:`~repro.cdsl.ast_nodes.TranslationUnit`.

    Only syntax is checked; run :func:`~repro.cdsl.sema.analyze` on the
    result to resolve names and types.  Raises
    :class:`~repro.utils.errors.ParseError` (or ``LexError``) on malformed
    input.

    Example::

        unit = parse_program("int main() { return 0; }")
        unit.function_named("main")  # -> FunctionDecl
    """
    return Parser(source).parse_translation_unit()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression, mainly for tests and synthesis helpers."""
    return Parser(source).parse_expression()
