"""The type system of the C subset used throughout the reproduction.

The subset covers what the paper's UB types (Table 1) require:

* signed and unsigned integer types of 8/16/32/64 bits,
* pointers (arbitrary depth),
* one-dimensional constant-size arrays,
* simple structs with scalar/array fields,
* functions.

Types are immutable value objects; two structurally equal types compare
equal, which keeps semantic analysis and the interpreter simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


class CType:
    """Base class of all types in the subset."""

    def sizeof(self) -> int:
        raise NotImplementedError

    def alignof(self) -> int:
        return self.sizeof()

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_pointer


@dataclass(frozen=True)
class VoidType(CType):
    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """An integer type with an explicit bit width and signedness."""

    name: str
    bits: int
    signed: bool

    def sizeof(self) -> int:
        return self.bits // 8

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def contains(self, value: int) -> bool:
        """Return True if *value* is representable without wrapping."""
        return self.min_value <= value <= self.max_value

    def wrap(self, value: int) -> int:
        """Reduce *value* modulo 2**bits and reinterpret per signedness.

        This models what actually happens on two's-complement hardware: it is
        how the VM stores out-of-range results (the C abstract machine calls
        signed overflow undefined, but the simulated hardware still produces
        a wrapped bit pattern).
        """
        value &= (1 << self.bits) - 1
        if self.signed and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee} *"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int

    def sizeof(self) -> int:
        return self.element.sizeof() * self.length

    def alignof(self) -> int:
        return self.element.alignof()

    def __str__(self) -> str:
        return f"{self.element} [{self.length}]"


@dataclass(frozen=True)
class StructField:
    name: str
    ctype: CType
    offset: int


@dataclass(frozen=True)
class StructType(CType):
    """A struct with a fixed layout computed at construction time."""

    tag: str
    fields: Tuple[StructField, ...] = field(default_factory=tuple)

    @staticmethod
    def create(tag: str, members: Sequence[Tuple[str, CType]]) -> "StructType":
        """Build a struct type, laying out fields with natural alignment."""
        fields: list[StructField] = []
        offset = 0
        max_align = 1
        for name, ctype in members:
            align = ctype.alignof()
            max_align = max(max_align, align)
            offset = _align_up(offset, align)
            fields.append(StructField(name, ctype, offset))
            offset += ctype.sizeof()
        total = _align_up(offset, max_align) if members else 1
        struct = StructType(tag, tuple(fields))
        object.__setattr__(struct, "_size", total)
        object.__setattr__(struct, "_align", max_align)
        return struct

    def sizeof(self) -> int:
        return getattr(self, "_size", 1)

    def alignof(self) -> int:
        return getattr(self, "_align", 1)

    def field_named(self, name: str) -> Optional[StructField]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType
    params: Tuple[CType, ...]

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params) or "void"
        return f"{self.return_type} (*)({params})"


def _align_up(value: int, align: int) -> int:
    if align <= 1:
        return value
    return (value + align - 1) // align * align


# ---------------------------------------------------------------------------
# Canonical instances
# ---------------------------------------------------------------------------

VOID = VoidType()
CHAR = IntType("char", 8, True)
UCHAR = IntType("unsigned char", 8, False)
SHORT = IntType("short", 16, True)
USHORT = IntType("unsigned short", 16, False)
INT = IntType("int", 32, True)
UINT = IntType("unsigned int", 32, False)
LONG = IntType("long", 64, True)
ULONG = IntType("unsigned long", 64, False)
BOOL_RESULT = INT  # C comparisons and logical operators yield int

SIGNED_TYPES = (CHAR, SHORT, INT, LONG)
UNSIGNED_TYPES = (UCHAR, USHORT, UINT, ULONG)
INTEGER_TYPES = SIGNED_TYPES + UNSIGNED_TYPES

_BY_NAME = {t.name: t for t in INTEGER_TYPES}
_BY_NAME["void"] = VOID


def integer_type_named(name: str) -> CType:
    """Look up a builtin type by its C spelling (e.g. ``"unsigned int"``)."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise KeyError(f"unknown builtin type: {name!r}") from exc


def pointer_to(ctype: CType) -> PointerType:
    return PointerType(ctype)


def array_of(element: CType, length: int) -> ArrayType:
    return ArrayType(element, length)


def decay(ctype: CType) -> CType:
    """Array-to-pointer decay as applied in expression contexts."""
    if isinstance(ctype, ArrayType):
        return PointerType(ctype.element)
    return ctype


def integer_promote(ctype: CType) -> CType:
    """C integer promotion: types narrower than int are promoted to int."""
    if isinstance(ctype, IntType) and ctype.bits < INT.bits:
        return INT
    return ctype


def usual_arithmetic_conversion(lhs: CType, rhs: CType) -> CType:
    """The (simplified) usual arithmetic conversions for two integer types."""
    lhs = integer_promote(lhs)
    rhs = integer_promote(rhs)
    if not isinstance(lhs, IntType) or not isinstance(rhs, IntType):
        return lhs if isinstance(lhs, IntType) else rhs
    if lhs == rhs:
        return lhs
    if lhs.signed == rhs.signed:
        return lhs if lhs.bits >= rhs.bits else rhs
    unsigned, signed = (lhs, rhs) if not lhs.signed else (rhs, lhs)
    if unsigned.bits >= signed.bits:
        return unsigned
    return signed


def is_compatible_pointer(lhs: CType, rhs: CType) -> bool:
    """Loose pointer compatibility used by semantic analysis."""
    if not (isinstance(lhs, PointerType) and isinstance(rhs, PointerType)):
        return False
    if isinstance(lhs.pointee, VoidType) or isinstance(rhs.pointee, VoidType):
        return True
    return lhs.pointee == rhs.pointee
