"""A hand-written lexer for the C subset.

The lexer tracks 1-based line and column numbers for every token; those
positions become the ``(line, offset)`` sites that debug information and the
crash-site mapping oracle work with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.utils.errors import LexError

KEYWORDS = {
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "struct", "if", "else", "for", "while", "do", "return", "break",
    "continue", "sizeof", "static", "const", "volatile", "extern",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    kind: str        # "ident", "keyword", "number", "string", "char", "op", "eof"
    text: str
    line: int
    col: int

    @property
    def is_eof(self) -> bool:
        return self.kind == "eof"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


class Lexer:
    """Tokenize C-subset source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            tok = self._next_token()
            tokens.append(tok)
            if tok.is_eof:
                return tokens

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", self.line, self.col)
            elif ch == "#":
                # Preprocessor-style lines (e.g. "#include") are skipped whole;
                # generated programs do not rely on the preprocessor.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token("eof", "", self.line, self.col)
        line, col = self.line, self.col
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, col)
        if ch.isdigit():
            return self._lex_number(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        if ch == "'":
            return self._lex_char(line, col)
        for op in _OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_ident(self, line: int, col: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start:self.pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self.pos < len(self.source) and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self.pos < len(self.source) and self._peek().isdigit():
                self._advance()
        # Integer suffixes (u, l, ul, ull, ...)
        while self.pos < len(self.source) and self._peek() in "uUlL":
            self._advance()
        text = self.source[start:self.pos]
        return Token("number", text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        start = self.pos
        self._advance()  # opening quote
        while self.pos < len(self.source) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self.pos >= len(self.source):
            raise LexError("unterminated string literal", line, col)
        self._advance()  # closing quote
        return Token("string", self.source[start:self.pos], line, col)

    def _lex_char(self, line: int, col: int) -> Token:
        start = self.pos
        self._advance()  # opening quote
        while self.pos < len(self.source) and self._peek() != "'":
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self.pos >= len(self.source):
            raise LexError("unterminated character literal", line, col)
        self._advance()
        return Token("char", self.source[start:self.pos], line, col)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper returning the token list for *source*."""
    return Lexer(source).tokenize()
