"""The elimination oracle: which markers does each configuration keep?

Two questions are answered about a :class:`~repro.markers.instrument.MarkedProgram`:

* **liveness** — which markers does the program's execution actually reach?
  The instrumented source is interpreted directly (no optimizer), with the
  VM's call hook recording every marker call in order.  Generated seed
  programs are closed and deterministic, so this single run *is* the
  program's behaviour: an unreached marker is semantically dead.
* **elimination** — which markers survive compilation under a
  (compiler, version, opt-pipeline) configuration?  Each config is compiled
  through the normal driver with version-aware pipelines, and the emitted
  unit is scanned for surviving marker calls.

All compiles of one oracle share a
:class:`~repro.compilers.cache.CompilationCache`: the frontend runs once
per program and each optimizer pipeline once per (program, compiler,
version, opt level), which is what makes full config matrices affordable
(see ``benchmarks/test_marker_throughput.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compilers.cache import CompilationCache, source_fingerprint
from repro.compilers.compiler import SimulatedCompiler, make_compiler
from repro.compilers.versions import version_label
from repro.cdsl.parser import parse_program
from repro.cdsl.sema import analyze
from repro.cdsl.visitor import fast_clone
from repro.markers.instrument import MarkedProgram, marker_calls
from repro.optim.pipelines import effective_pass_names
from repro.telemetry import runtime as telemetry
from repro.vm.compile import compile_program
from repro.vm.interpreter import run_program

DEFAULT_MAX_STEPS = 150_000


@dataclass(frozen=True, order=True)
class MarkerConfig:
    """One surveyed configuration: compiler, release, optimization level."""

    compiler: str
    version: int
    opt_level: str

    @property
    def label(self) -> str:
        return f"{version_label(self.compiler, self.version)} {self.opt_level}"


@dataclass(frozen=True)
class MarkerOutcome:
    """What one configuration did to a marked program.

    ``retained`` holds the markers surviving in the emitted unit;
    ``pipeline`` the effective (version-aware) pass names of the config;
    ``passes_run`` the passes that actually changed the program.
    """

    config: MarkerConfig
    retained: frozenset
    pipeline: Tuple[str, ...]
    passes_run: Tuple[str, ...]

    def eliminated(self, marked: MarkedProgram) -> frozenset:
        return frozenset(marked.marker_names) - self.retained


class EliminationOracle:
    """Compiles marked programs across configs and classifies each marker."""

    def __init__(self, cache: Optional[CompilationCache] = None,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 vm: str = "compiled") -> None:
        self.cache = cache if cache is not None else CompilationCache()
        self.max_steps = max_steps
        #: Liveness executor: ``"compiled"`` runs the closure-compiled
        #: program (cached per source through the closure layer, so a
        #: reduction screen's repeated probes pay compilation once),
        #: ``"interp"`` the AST interpreter.
        self.vm = vm
        self._compilers: Dict[Tuple[str, int], SimulatedCompiler] = {}

    # -- liveness ---------------------------------------------------------------

    def analyzed_unit(self, source_text: str):
        """Parse + analyze *source_text*, sharing the frontend cache.

        The pristine parsed unit is cached like the compiler driver's
        frontend phase; callers get an analyzed :func:`fast_clone` (sema
        annotates nodes in place, so the master must stay untouched).
        """
        fingerprint = source_fingerprint(source_text)
        pristine = self.cache.frontend(fingerprint,
                                       lambda: parse_program(source_text))
        unit = fast_clone(pristine)
        return unit, analyze(unit)

    def liveness(self, marked: MarkedProgram,
                 analyzed=None) -> Tuple[str, ...]:
        """The sequence of marker calls the reference execution performs.

        The un-optimized instrumented program is interpreted directly;
        marker calls are recorded through the VM call hook in execution
        order (duplicates included — the equivalence property suite
        compares whole sequences).  *analyzed* (a ``(unit, sema)`` pair
        from :meth:`analyzed_unit`) skips the redundant frontend run when
        the caller already has one — the reduction predicate's hot path.
        """
        reached: List[str] = []
        hook = (lambda name: reached.append(name)
                if name.startswith(marked.prefix) else None)
        with telemetry.stage("oracle", kind="liveness"):
            if self.vm == "compiled":
                def build():
                    unit, sema = analyzed if analyzed is not None \
                        else self.analyzed_unit(marked.source)
                    return compile_program(unit, sema)
                program = self.cache.closure(
                    ("liveness", source_fingerprint(marked.source)), build)
                program.run(max_steps=self.max_steps, call_hook=hook)
            else:
                unit, sema = analyzed if analyzed is not None \
                    else self.analyzed_unit(marked.source)
                run_program(unit, sema, max_steps=self.max_steps,
                            call_hook=hook)
        return tuple(reached)

    def live_set(self, marked: MarkedProgram) -> frozenset:
        """The set of markers the reference execution reaches."""
        return frozenset(self.liveness(marked))

    # -- elimination ------------------------------------------------------------

    def survey(self, marked: MarkedProgram,
               configs: Sequence[MarkerConfig]) -> Dict[MarkerConfig, MarkerOutcome]:
        """Compile *marked* under every config; map each to its outcome."""
        outcomes: Dict[MarkerConfig, MarkerOutcome] = {}
        with telemetry.stage("oracle", kind="survey", configs=len(configs)):
            for config in configs:
                outcomes[config] = self.compile_one(marked, config)
        return outcomes

    def compile_one(self, marked: MarkedProgram,
                    config: MarkerConfig) -> MarkerOutcome:
        """Compile under one config and scan the emitted unit for markers."""
        compiler = self._compiler_for(config.compiler, config.version)
        binary = compiler.compile(marked.source, opt_level=config.opt_level)
        retained = frozenset(marker_calls(binary.unit, marked.prefix))
        pipeline = tuple(effective_pass_names(config.compiler,
                                              config.opt_level,
                                              config.version))
        return MarkerOutcome(config=config, retained=retained,
                             pipeline=pipeline,
                             passes_run=tuple(binary.passes_run))

    # -- internals --------------------------------------------------------------

    def _compiler_for(self, name: str, version: int) -> SimulatedCompiler:
        key = (name, version)
        compiler = self._compilers.get(key)
        if compiler is None:
            compiler = make_compiler(name, version=version,
                                     defect_registry=[], cache=self.cache,
                                     versioned_pipelines=True)
            self._compilers[key] = compiler
        return compiler
