"""Marker-based missed-optimization and optimizer-regression finding.

The DEAD-style workload on top of the existing toolchain: plant liveness
markers into UB-free generated programs, compile each marked program under
every (compiler, version, opt-pipeline) configuration through the shared
:class:`~repro.compilers.cache.CompilationCache`, and diff which markers
each configuration eliminates.

* :mod:`repro.markers.instrument` — the marker-planting instrumentation
  pass (:class:`MarkerPlanter`) and the :class:`MarkedProgram` /
  :class:`MarkerSite` records;
* :mod:`repro.markers.oracle` — :class:`EliminationOracle`: reference
  liveness via the VM call hook, per-config elimination via cached
  version-aware compiles;
* :mod:`repro.markers.engine` — :class:`MarkerEngine`: the campaign loop
  producing missed-optimization / regression / unsound-elimination
  findings with bucketed dedup by (kind, compiler, marker site,
  responsible pass).

Campaigns shard through the orchestrator (``python -m repro.orchestrator
--mode markers``) bit-identically to a serial run, shrink through
:func:`repro.reduction.make_marker_predicate`, and render through
:func:`repro.analysis.table_marker_survival`.
"""

from repro.markers.engine import (
    MISSED_OPT_LEVELS,
    MISSED_OPTIMIZATION,
    REGRESSION,
    UNSOUND_ELIMINATION,
    ConfigSurvival,
    MarkerBatch,
    MarkerBucket,
    MarkerCampaignConfig,
    MarkerCampaignResult,
    MarkerCampaignStats,
    MarkerEngine,
    MarkerFinding,
)
from repro.markers.instrument import (
    DEFAULT_MARKER_PREFIX,
    MarkedProgram,
    MarkerPlanter,
    MarkerSite,
    marker_calls,
)
from repro.markers.oracle import (
    EliminationOracle,
    MarkerConfig,
    MarkerOutcome,
)

__all__ = [
    "MISSED_OPTIMIZATION", "REGRESSION", "UNSOUND_ELIMINATION",
    "MISSED_OPT_LEVELS", "DEFAULT_MARKER_PREFIX",
    "MarkerPlanter", "MarkedProgram", "MarkerSite", "marker_calls",
    "EliminationOracle", "MarkerConfig", "MarkerOutcome",
    "MarkerEngine", "MarkerCampaignConfig", "MarkerCampaignResult",
    "MarkerCampaignStats", "MarkerBatch", "MarkerBucket", "MarkerFinding",
    "ConfigSurvival",
]
