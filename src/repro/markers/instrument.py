"""Marker-planting instrumentation (DEAD-style liveness markers).

The marker engine's ground instrumentation: every branch arm and loop body
of a program receives a call to a unique, declared-but-undefined function
(``__ubfm_<N>_()``).  Marker calls are externally-visible side effects, so a
*correct* optimizer may only remove one by proving its whole region dead —
which turns "which markers does each (compiler, version, opt-pipeline)
configuration eliminate?" into a direct probe of optimization quality:

* a marker the reference execution never reaches but ``-O2``/``-O3``
  retains is a **missed optimization**;
* a marker release N-1 eliminates but release N retains is an
  **optimizer regression**;
* a marker the reference execution *does* reach but some configuration
  eliminates would be a miscompilation (**unsound elimination**) — the
  semantic-equivalence property suite pins this to never happen.

Planting is deterministic: markers are numbered in preorder statement
order, so re-instrumenting the same source always yields the same names at
the same sites (the parallel campaign and the reduction predicate rely on
this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.parser import parse_program
from repro.cdsl.printer import print_program
from repro.cdsl.visitor import walk

#: Default marker-name prefix ("UBfuzz marker"); names are ``__ubfm_<N>_``.
DEFAULT_MARKER_PREFIX = "__ubfm_"

#: Context kinds a marker can be planted in.
CONTEXT_IF_THEN = "if-then"
CONTEXT_IF_ELSE = "if-else"
CONTEXT_LOOP_BODY = "loop-body"
#: Function-entry markers record which functions an execution enters; the
#: engine uses them to tell "dead because the function is never called"
#: (not eliminable — functions have external linkage) from a genuinely
#: missed optimization inside an executed function.
CONTEXT_FN_ENTRY = "fn-entry"


@dataclass(frozen=True)
class MarkerSite:
    """One planted marker: its name and the spot it instruments.

    ``line`` is the 1-based line of the marker call in the *instrumented*
    source; ``context`` is one of ``if-then`` / ``if-else`` / ``loop-body``.
    The triple ``(function, context, name)`` is the site signature used by
    finding dedup — stable under reduction, which never renames calls.
    """

    name: str
    function: str
    context: str
    line: int = 0

    @property
    def signature(self) -> str:
        return f"{self.function}:{self.context}:{self.name}"


@dataclass
class MarkedProgram:
    """An instrumented program: source text plus its marker sites."""

    source: str
    base_source: str
    sites: Tuple[MarkerSite, ...]
    prefix: str = DEFAULT_MARKER_PREFIX
    seed_index: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def marker_names(self) -> Tuple[str, ...]:
        return tuple(site.name for site in self.sites)

    def site_named(self, name: str) -> Optional[MarkerSite]:
        for site in self.sites:
            if site.name == name:
                return site
        return None


class MarkerPlanter:
    """Plants liveness markers into every branch arm and loop body."""

    def __init__(self, prefix: str = DEFAULT_MARKER_PREFIX) -> None:
        self.prefix = prefix

    def plant(self, source: Union[str, ast.TranslationUnit],
              seed_index: int = 0) -> MarkedProgram:
        """Instrument *source* and return the marked program.

        String input is parsed fresh; AST input is printed and re-parsed so
        the caller's tree is never mutated and line information is computed
        against the exact text the oracle will compile.
        """
        base_source = (source if isinstance(source, str)
                       else print_program(source))
        unit = parse_program(base_source)
        planted: List[_PlantedMarker] = []
        for fn in unit.functions:
            if fn.body is not None:
                name = f"{self.prefix}{len(planted)}_"
                planted.append(_PlantedMarker(name=name, function=fn.name,
                                              context=CONTEXT_FN_ENTRY))
                fn.body.stmts.insert(0, ast.ExprStmt(ast.Call(name, [])))
                self._plant_block(fn.body, fn.name, planted)
        # Prototypes first: markers must be declared before the first call.
        prototypes = [
            ast.FunctionDecl(p.name, ct.VOID, [], None) for p in planted
        ]
        unit.decls[0:0] = prototypes
        text = print_program(unit)
        sites = tuple(
            MarkerSite(name=p.name, function=p.function, context=p.context,
                       line=_line_of_call(text, p.name))
            for p in planted)
        return MarkedProgram(source=text, base_source=base_source,
                             sites=sites, prefix=self.prefix,
                             seed_index=seed_index)

    # -- internals --------------------------------------------------------------

    def _plant_block(self, block: ast.CompoundStmt, function: str,
                     planted: List["_PlantedMarker"]) -> None:
        for stmt in block.stmts:
            self._plant_stmt(stmt, function, planted)

    def _plant_stmt(self, stmt: ast.Stmt, function: str,
                    planted: List["_PlantedMarker"]) -> None:
        if isinstance(stmt, ast.IfStmt):
            stmt.then = self._with_marker(stmt.then, function,
                                          CONTEXT_IF_THEN, planted)
            stmt.otherwise = self._with_marker(stmt.otherwise, function,
                                               CONTEXT_IF_ELSE, planted)
        elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
            stmt.body = self._with_marker(stmt.body, function,
                                          CONTEXT_LOOP_BODY, planted)
        elif isinstance(stmt, ast.CompoundStmt):
            self._plant_block(stmt, function, planted)

    def _with_marker(self, stmt: Optional[ast.Stmt], function: str,
                     context: str,
                     planted: List["_PlantedMarker"]) -> ast.CompoundStmt:
        """Wrap *stmt* (possibly None: a missing else) in a compound whose
        first statement is a fresh marker call, then recurse into it."""
        name = f"{self.prefix}{len(planted)}_"
        planted.append(_PlantedMarker(name=name, function=function,
                                      context=context))
        call = ast.ExprStmt(ast.Call(name, []))
        if stmt is None:
            inner: List[ast.Stmt] = []
        elif isinstance(stmt, ast.CompoundStmt):
            inner = stmt.stmts
        else:
            inner = [stmt]
        block = ast.CompoundStmt([call] + inner,
                                 loc=stmt.loc if stmt is not None
                                 else ast.UNKNOWN_LOCATION)
        for child in inner:
            self._plant_stmt(child, function, planted)
        return block


@dataclass(frozen=True)
class _PlantedMarker:
    name: str
    function: str
    context: str


def marker_calls(root: ast.Node, prefix: str = DEFAULT_MARKER_PREFIX
                 ) -> List[str]:
    """Names of the marker calls below *root*, in order of appearance.

    Prototypes don't count — only :class:`~repro.cdsl.ast_nodes.Call`
    nodes, i.e. markers the optimizer actually kept in the emitted code.
    """
    return [node.name for node in walk(root)
            if isinstance(node, ast.Call) and node.name.startswith(prefix)]


def _line_of_call(text: str, name: str) -> int:
    needle = f"{name}();"
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return lineno
    return 0
