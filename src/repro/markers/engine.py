"""The marker differential engine: missed optimizations and regressions.

For each seed index the engine generates a UB-free seed program, plants
liveness markers (:mod:`repro.markers.instrument`), computes the reference
liveness and surveys the full (compiler, version, opt-pipeline) matrix
through the elimination oracle, then diffs the outcomes into findings:

* **missed-optimization** — a marker the reference execution never reaches,
  inside a function it *does* enter, retained by the newest surveyed
  release at ``-O2``/``-O3``: the optimizer had every right to delete it
  and didn't;
* **regression** — a marker eliminated by release N-1 but retained by
  release N of the same compiler at the same level: the pipeline got worse
  (our seeded :class:`~repro.optim.pipelines.OptimizerDefect` windows are
  rediscovered exactly this way);
* **unsound-elimination** — a marker the execution reaches but some
  configuration deleted: a miscompilation.  The semantic-equivalence
  property suite (``tests/properties``) pins this class to be empty for
  the shipped pipelines.

Findings deduplicate into buckets keyed by (kind, compiler, marker site,
responsible pass); the first finding per bucket (in seed order) is the
representative, so serial and sharded campaigns report identical buckets.

Every step of :meth:`MarkerEngine.run_seed` is a pure function of
``(config, seed_index)``, which is what lets the orchestrator's worker
pool shard seeds while staying bit-identical to a serial run.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.compilers.versions import all_versions
from repro.markers.instrument import (
    CONTEXT_FN_ENTRY,
    CONTEXT_IF_ELSE,
    CONTEXT_IF_THEN,
    CONTEXT_LOOP_BODY,
    DEFAULT_MARKER_PREFIX,
    MarkedProgram,
    MarkerPlanter,
    MarkerSite,
)
from repro.markers.oracle import (
    DEFAULT_MAX_STEPS,
    EliminationOracle,
    MarkerConfig,
    MarkerOutcome,
)
from repro.seedgen.config import GeneratorConfig
from repro.seedgen.csmith import CsmithGenerator
from repro.telemetry import runtime as telemetry
from repro.utils.errors import GenerationError

logger = logging.getLogger(__name__)

MISSED_OPTIMIZATION = "missed-optimization"
REGRESSION = "regression"
UNSOUND_ELIMINATION = "unsound-elimination"

#: The optimization levels where a retained dead marker counts as a missed
#: optimization (nobody expects -O0/-O1 to be thorough).
MISSED_OPT_LEVELS = ("-O2", "-O3")

#: Which pass *should* have eliminated a dead marker in each context, used
#: when no pipeline diff is available to attribute a missed optimization.
_CONTEXT_RESPONSIBLE = {
    CONTEXT_IF_THEN: "constant-fold",
    CONTEXT_IF_ELSE: "constant-fold",
    CONTEXT_LOOP_BODY: "loop-opts",
    CONTEXT_FN_ENTRY: "dce",
}


@dataclass
class MarkerCampaignConfig:
    """Scale and matrix knobs for one marker campaign.

    The campaign is a pure function of this config: ``num_seeds`` seeds are
    derived from ``rng_seed``, instrumented, and surveyed across
    ``compilers`` × ``versions`` × ``opt_levels`` with version-aware
    optimizer pipelines.
    """

    num_seeds: int = 10
    rng_seed: int = 0
    compilers: Sequence[str] = ("gcc", "llvm")
    opt_levels: Sequence[str] = MISSED_OPT_LEVELS
    #: Releases to survey per compiler; ``None`` = every simulated version
    #: (stable releases plus trunk).
    versions: Optional[Dict[str, Sequence[int]]] = None
    marker_prefix: str = DEFAULT_MARKER_PREFIX
    max_steps: int = DEFAULT_MAX_STEPS
    #: Liveness executor for the elimination oracle (``"compiled"`` closure
    #: bytecode — the default — or the ``"interp"`` AST walker).
    vm: str = "compiled"

    def versions_for(self, compiler: str) -> List[int]:
        if self.versions is not None and compiler in self.versions:
            return sorted(self.versions[compiler])
        return all_versions(compiler)

    def configs_for(self, compiler: str) -> List[MarkerConfig]:
        return [MarkerConfig(compiler, version, opt_level)
                for version in self.versions_for(compiler)
                for opt_level in self.opt_levels]


@dataclass(frozen=True)
class MarkerFinding:
    """One raw finding, before bucketing."""

    kind: str
    compiler: str
    opt_level: str
    version: int
    marker: MarkerSite
    responsible_pass: str
    seed_index: int
    source: str
    live: bool
    prev_version: Optional[int] = None
    prefix: str = DEFAULT_MARKER_PREFIX

    @property
    def bucket(self) -> tuple:
        """Dedup key: (kind, compiler, marker site, responsible pass)."""
        return (self.kind, self.compiler, self.marker.function,
                self.marker.context, self.marker.name, self.responsible_pass)

    @property
    def bucket_slug(self) -> str:
        parts = [self.kind, self.compiler, self.marker.function,
                 self.marker.context, self.marker.name.strip("_"),
                 self.responsible_pass]
        return "-".join(p.replace("_", "").replace(".", "") for p in parts)

    def describe(self) -> str:
        where = (f"{self.marker.name} ({self.marker.context} in "
                 f"{self.marker.function})")
        if self.kind == REGRESSION:
            return (f"{self.compiler}-{self.version} {self.opt_level} retains "
                    f"{where}, eliminated by {self.compiler}-"
                    f"{self.prev_version} — pass {self.responsible_pass}")
        if self.kind == MISSED_OPTIMIZATION:
            return (f"{self.compiler}-{self.version} {self.opt_level} retains "
                    f"dead {where} — expected {self.responsible_pass}")
        return (f"{self.compiler}-{self.version} {self.opt_level} eliminated "
                f"LIVE {where} — miscompilation")


@dataclass
class MarkerBucket:
    """One deduplicated finding bucket with its representative."""

    representative: MarkerFinding
    count: int = 1
    opt_levels: List[str] = field(default_factory=list)
    versions: List[int] = field(default_factory=list)


@dataclass
class ConfigSurvival:
    """Marker-survival counters for one configuration across a campaign."""

    planted: int = 0
    retained: int = 0
    dead_retained: int = 0
    pipeline: Tuple[str, ...] = ()

    @property
    def eliminated(self) -> int:
        return self.planted - self.retained

    @property
    def survival_rate(self) -> float:
        return self.retained / self.planted if self.planted else 0.0


@dataclass
class MarkerBatch:
    """Everything one seed work-item produced (the unit of sharding)."""

    seed_index: int
    generated: bool
    planted: int = 0
    live_markers: int = 0
    findings: List[MarkerFinding] = field(default_factory=list)
    survival: Dict[str, ConfigSurvival] = field(default_factory=dict)
    configs_surveyed: int = 0
    duration_seconds: float = 0.0
    #: Compatibility with the orchestrator's throughput monitor, which
    #: counts per-batch work items and FN candidates for its status line.
    diff_results: tuple = ()
    #: Telemetry captured while this seed ran (see
    #: :func:`repro.telemetry.seed_scope`); ``None`` when disabled.
    telemetry: Optional[dict] = None

    @property
    def programs_tested(self) -> int:
        return self.configs_surveyed


@dataclass
class MarkerCampaignStats:
    """Aggregate counters of one marker campaign."""

    seeds_used: int = 0
    markers_planted: int = 0
    live_markers: int = 0
    configs_surveyed: int = 0
    raw_findings: int = 0
    findings_by_kind: Dict[str, int] = field(default_factory=dict)
    duration_seconds: float = 0.0


@dataclass
class MarkerCampaignResult:
    """Merged output of a marker campaign: stats, buckets, survival."""

    config: MarkerCampaignConfig
    stats: MarkerCampaignStats
    buckets: Dict[tuple, MarkerBucket]
    survival: Dict[str, ConfigSurvival]

    @property
    def findings(self) -> List[MarkerFinding]:
        """One representative finding per bucket, in discovery order."""
        return [bucket.representative for bucket in self.buckets.values()]

    def findings_of_kind(self, kind: str) -> List[MarkerFinding]:
        return [f for f in self.findings if f.kind == kind]


class MarkerEngine:
    """Drives seeds → marked programs → config matrix → findings."""

    def __init__(self, config: Optional[MarkerCampaignConfig] = None) -> None:
        self.config = config or MarkerCampaignConfig()
        self.seed_generator = CsmithGenerator(
            GeneratorConfig(seed=self.config.rng_seed))
        self.planter = MarkerPlanter(prefix=self.config.marker_prefix)
        self.oracle = EliminationOracle(max_steps=self.config.max_steps,
                                        vm=self.config.vm)

    # -- public -----------------------------------------------------------------

    def run(self, executor=None) -> MarkerCampaignResult:
        """Run the campaign, optionally through an orchestrator executor."""
        seed_indices = range(self.config.num_seeds)
        if executor is None:
            batches: Iterable[MarkerBatch] = (
                self.run_seed(index) for index in seed_indices)
        else:
            batches = executor.map_seeds(self.config, seed_indices)
        return self.collect(batches)

    def analyze_source(self, source: str, seed_index: int = 0
                       ) -> Tuple[MarkedProgram, List[MarkerFinding]]:
        """Instrument and classify one externally-supplied program.

        The gallery tests and examples use this to run the engine over
        handcrafted sources instead of generated seeds; the classification
        is exactly the one :meth:`run_seed` applies.
        """
        marked = self.planter.plant(source, seed_index=seed_index)
        live = frozenset(self.oracle.liveness(marked))
        findings: List[MarkerFinding] = []
        for compiler in self.config.compilers:
            outcomes = self.oracle.survey(marked,
                                          self.config.configs_for(compiler))
            findings.extend(self._classify(marked, live, outcomes))
        return marked, findings

    def run_seed(self, seed_index: int) -> MarkerBatch:
        """Process one seed: generate, instrument, survey, classify."""
        with telemetry.seed_scope(seed_index) as scope:
            with telemetry.span("seed", seed=seed_index):
                batch = self._run_seed(seed_index)
            if scope is not None:
                # Liveness pulse (see repro.telemetry.runtime.heartbeat):
                # travels in the batch payload like the rest of the scope.
                telemetry.heartbeat(seed_index)
                batch.telemetry = scope.payload()
        return batch

    def _run_seed(self, seed_index: int) -> MarkerBatch:
        start = time.time()
        try:
            with telemetry.stage("generate", seed=seed_index):
                seed = self.seed_generator.generate(seed_index)
        except GenerationError:
            return MarkerBatch(seed_index=seed_index, generated=False,
                               duration_seconds=time.time() - start)
        with telemetry.stage("generate", seed=seed_index, kind="markers"):
            marked = self.planter.plant(seed.source, seed_index=seed_index)
        live = frozenset(self.oracle.liveness(marked))
        findings: List[MarkerFinding] = []
        survival: Dict[str, ConfigSurvival] = {}
        configs_surveyed = 0
        for compiler in self.config.compilers:
            configs = self.config.configs_for(compiler)
            outcomes = self.oracle.survey(marked, configs)
            configs_surveyed += len(configs)
            findings.extend(self._classify(marked, live, outcomes))
            for config, outcome in outcomes.items():
                survival[config.label] = ConfigSurvival(
                    planted=len(marked.sites),
                    retained=len(outcome.retained),
                    dead_retained=len(outcome.retained - live),
                    pipeline=outcome.pipeline)
        registry = telemetry.metrics()
        if registry is not None:
            registry.inc("marker.planted", len(marked.sites))
            registry.inc("marker.live", len(live))
            registry.inc("marker.configs", configs_surveyed)
            registry.inc("marker.retained",
                         sum(s.retained for s in survival.values()))
            registry.inc("marker.dead_retained",
                         sum(s.dead_retained for s in survival.values()))
            registry.inc("marker.findings", len(findings))
        logger.debug("seed %d: %d markers, %d findings in %.2fs", seed_index,
                     len(marked.sites), len(findings), time.time() - start)
        return MarkerBatch(seed_index=seed_index, generated=True,
                           planted=len(marked.sites),
                           live_markers=len(live),
                           findings=findings, survival=survival,
                           configs_surveyed=configs_surveyed,
                           duration_seconds=time.time() - start)

    def collect(self, batches: Iterable[MarkerBatch]) -> MarkerCampaignResult:
        """Merge per-seed batches (in seed order) into the campaign result."""
        start = time.time()
        stats = MarkerCampaignStats()
        buckets: Dict[tuple, MarkerBucket] = {}
        survival: Dict[str, ConfigSurvival] = {}
        for batch in batches:
            # The single telemetry merge point, in seed order (the marker
            # twin of FuzzingCampaign.collect).
            telemetry.merge_batch(batch.telemetry)
            if not batch.generated:
                continue
            stats.seeds_used += 1
            stats.markers_planted += batch.planted
            stats.live_markers += batch.live_markers
            stats.configs_surveyed += batch.configs_surveyed
            stats.raw_findings += len(batch.findings)
            for finding in batch.findings:
                stats.findings_by_kind[finding.kind] = (
                    stats.findings_by_kind.get(finding.kind, 0) + 1)
                bucket = buckets.get(finding.bucket)
                if bucket is None:
                    buckets[finding.bucket] = MarkerBucket(
                        representative=finding,
                        opt_levels=[finding.opt_level],
                        versions=[finding.version])
                else:
                    bucket.count += 1
                    if finding.opt_level not in bucket.opt_levels:
                        bucket.opt_levels.append(finding.opt_level)
                    if finding.version not in bucket.versions:
                        bucket.versions.append(finding.version)
            for label, per_config in batch.survival.items():
                merged = survival.setdefault(
                    label, ConfigSurvival(pipeline=per_config.pipeline))
                merged.planted += per_config.planted
                merged.retained += per_config.retained
                merged.dead_retained += per_config.dead_retained
        stats.duration_seconds = time.time() - start
        return MarkerCampaignResult(config=self.config, stats=stats,
                                    buckets=buckets, survival=survival)

    # -- classification ---------------------------------------------------------

    def _classify(self, marked: MarkedProgram, live: frozenset,
                  outcomes: Dict[MarkerConfig, MarkerOutcome]
                  ) -> List[MarkerFinding]:
        findings: List[MarkerFinding] = []
        entered = {site.function for site in marked.sites
                   if site.context == CONTEXT_FN_ENTRY and site.name in live}
        by_level: Dict[str, List[MarkerConfig]] = {}
        for config in outcomes:
            by_level.setdefault(config.opt_level, []).append(config)
        for opt_level, configs in by_level.items():
            configs = sorted(configs, key=lambda c: c.version)
            newest = outcomes[configs[-1]]
            # Missed optimizations: judged against the newest release only
            # (older releases retaining more is history, not news).
            if opt_level in MISSED_OPT_LEVELS:
                findings.extend(self._missed(marked, live, entered, newest))
            # Regressions: adjacent-release diffs.
            for previous, current in zip(configs, configs[1:]):
                findings.extend(self._regressions(
                    marked, live, outcomes[previous], outcomes[current]))
            # Unsound eliminations: any config deleting a live marker.
            for config in configs:
                for name in sorted(outcomes[config].eliminated(marked) & live):
                    findings.append(self._finding(
                        UNSOUND_ELIMINATION, marked, name, config,
                        responsible="unknown", live=True))
        return findings

    def _missed(self, marked: MarkedProgram, live: frozenset, entered: set,
                newest: MarkerOutcome) -> List[MarkerFinding]:
        findings = []
        for site in marked.sites:
            if site.name in live or site.name not in newest.retained:
                continue
            if site.context == CONTEXT_FN_ENTRY or site.function not in entered:
                continue  # unreached function: not the optimizer's to delete
            responsible = _CONTEXT_RESPONSIBLE.get(site.context, "dce")
            findings.append(self._finding(
                MISSED_OPTIMIZATION, marked, site.name, newest.config,
                responsible=responsible, live=False))
        return findings

    def _regressions(self, marked: MarkedProgram, live: frozenset,
                     previous: MarkerOutcome, current: MarkerOutcome
                     ) -> List[MarkerFinding]:
        regressed = sorted((previous.eliminated(marked) & current.retained)
                           - live)
        if not regressed:
            return []
        responsible = self._pipeline_diff(previous, current)
        return [self._finding(REGRESSION, marked, name, current.config,
                              responsible=responsible, live=False,
                              prev_version=previous.config.version)
                for name in regressed]

    @staticmethod
    def _pipeline_diff(previous: MarkerOutcome, current: MarkerOutcome) -> str:
        """The pass that stopped running between two adjacent releases."""
        dropped = [name for name in previous.pipeline
                   if name not in current.pipeline]
        if dropped:
            return dropped[0]
        ran_before = [name for name in previous.passes_run
                      if name not in current.passes_run]
        return ran_before[0] if ran_before else "unknown"

    def _finding(self, kind: str, marked: MarkedProgram, name: str,
                 config: MarkerConfig, responsible: str, live: bool,
                 prev_version: Optional[int] = None) -> MarkerFinding:
        site = marked.site_named(name) or MarkerSite(
            name=name, function="?", context="?")
        return MarkerFinding(kind=kind, compiler=config.compiler,
                             opt_level=config.opt_level,
                             version=config.version, marker=site,
                             responsible_pass=responsible,
                             seed_index=marked.seed_index,
                             source=marked.source, live=live,
                             prev_version=prev_version, prefix=marked.prefix)
