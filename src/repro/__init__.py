"""UBfuzz reproduction: finding false-negative bugs in sanitizer implementations.

This package reproduces, in pure Python, the system described in
"UBfuzz: Finding Bugs in Sanitizer Implementations" (ASPLOS 2024):

* :mod:`repro.cdsl`       — the C-subset frontend (lexer, parser, sema, printer);
* :mod:`repro.vm`         — the execution substrate (flat memory, interpreter,
                            tracing, profiling);
* :mod:`repro.optim`      — AST-level optimizer passes and per-compiler pipelines;
* :mod:`repro.sanitizers` — ASan / UBSan / MSan passes, runtimes and seeded
                            defect models;
* :mod:`repro.compilers`  — the simulated GCC and LLVM drivers;
* :mod:`repro.seedgen`    — Csmith-like seed generator plus MUSIC / Juliet baselines;
* :mod:`repro.core`       — the paper's contribution: shadow-statement-insertion
                            UB generation, crash-site mapping, differential
                            testing, the fuzzing campaign and triage;
* :mod:`repro.reduction`  — hierarchical parallel test-case reduction (the
                            paper's C-Reduce step);
* :mod:`repro.markers`    — marker-based missed-optimization and
                            optimizer-regression finding (the DEAD-style
                            workload on the same toolchain);
* :mod:`repro.triage`     — revision bisection over the simulated release
                            timeline and the known-bug patch database that
                            auto-suppresses already-attributed findings;
* :mod:`repro.coverage`   — coverage measurement (Table 5);
* :mod:`repro.analysis`   — experiment drivers and table/figure renderers;
* :mod:`repro.orchestrator` — sharded worker-pool campaign execution with
                            corpus storage, crash dedup and checkpoint/resume;
* :mod:`repro.telemetry`  — structured span tracing, cross-process metrics
                            and per-stage campaign profiling.

See ``docs/ARCHITECTURE.md`` for the full pipeline walk-through and
``docs/API.md`` for the public API conventions.
"""

from repro.cdsl import analyze, parse_program, print_program
from repro.compilers import (
    ALL_OPT_LEVELS,
    CompiledBinary,
    CompileOptions,
    GccCompiler,
    LlvmCompiler,
    make_compiler,
)
from repro.core import (
    ALL_UB_TYPES,
    BugReport,
    BugTriager,
    CampaignConfig,
    CampaignResult,
    DifferentialTester,
    FuzzingCampaign,
    ProgramReducer,
    TestConfig,
    UBGenerator,
    UBProgram,
    UBType,
    classify_discrepancy,
    is_sanitizer_bug,
    is_sanitizer_bug_from_results,
)
from repro.markers import (
    EliminationOracle,
    MarkedProgram,
    MarkerCampaignConfig,
    MarkerCampaignResult,
    MarkerConfig,
    MarkerEngine,
    MarkerFinding,
    MarkerPlanter,
    MarkerSite,
)
from repro.orchestrator import (
    CorpusStore,
    OrchestratedCampaign,
    PoolExecutor,
    SerialExecutor,
)
from repro.reduction import (
    HierarchicalReducer,
    ReductionResult,
    make_fn_bug_predicate,
    make_marker_predicate,
    reduce_fn_candidate,
    reduce_marker_finding,
)
from repro.telemetry import (
    CampaignProfile,
    HealthMonitor,
    MetricsRegistry,
    TelemetryStore,
    Tracer,
    WatchView,
    configure_logging,
    load_profile,
    write_chrome_trace,
    write_folded_stacks,
)
from repro.seedgen import (
    CsmithGenerator,
    CsmithNoSafeGenerator,
    GeneratorConfig,
    MusicMutator,
    SeedProgram,
    generate_juliet_suite,
)
from repro.triage import (
    Attribution,
    BisectionResult,
    CrashProbe,
    MarkerProbe,
    RevisionBisector,
    RevisionEvent,
    attribute_bucket,
    bisect_bucket,
    release_timeline,
)
from repro.vm import ExecutionResult, SanitizerReport

__version__ = "1.0.0"

__all__ = [
    "analyze", "parse_program", "print_program",
    "ALL_OPT_LEVELS", "CompiledBinary", "CompileOptions", "GccCompiler",
    "LlvmCompiler", "make_compiler",
    "ALL_UB_TYPES", "BugReport", "BugTriager", "CampaignConfig",
    "CampaignResult", "DifferentialTester", "FuzzingCampaign",
    "ProgramReducer", "TestConfig", "UBGenerator", "UBProgram", "UBType",
    "classify_discrepancy", "is_sanitizer_bug", "is_sanitizer_bug_from_results",
    "HierarchicalReducer", "ReductionResult", "make_fn_bug_predicate",
    "make_marker_predicate", "reduce_fn_candidate", "reduce_marker_finding",
    "EliminationOracle", "MarkedProgram", "MarkerCampaignConfig",
    "MarkerCampaignResult", "MarkerConfig", "MarkerEngine", "MarkerFinding",
    "MarkerPlanter", "MarkerSite",
    "CorpusStore", "OrchestratedCampaign", "PoolExecutor", "SerialExecutor",
    "CampaignProfile", "HealthMonitor", "MetricsRegistry", "TelemetryStore",
    "Tracer", "WatchView", "configure_logging", "load_profile",
    "write_chrome_trace", "write_folded_stacks",
    "CsmithGenerator", "CsmithNoSafeGenerator", "GeneratorConfig",
    "MusicMutator", "SeedProgram", "generate_juliet_suite",
    "Attribution", "BisectionResult", "CrashProbe", "MarkerProbe",
    "RevisionBisector", "RevisionEvent", "attribute_bucket", "bisect_bucket",
    "release_timeline",
    "ExecutionResult", "SanitizerReport",
    "__version__",
]
