"""Batched execution of compiled binaries — the ``run_many`` executor.

A differential matrix runs one program under many configurations, and a
reduction screen runs many candidate programs under the same few.  Executing
the batch together instead of one binary at a time buys two amortizations:

* **closure compilation** happens once per (program, effective pipeline
  signature) through the :class:`~repro.compilers.cache.CompilationCache`
  closure layer each binary carries (``CompiledBinary.compiled_program``);
* **identical executions collapse**: the VM is deterministic, so two
  configurations whose instrumented unit *content* and sanitizer runtime
  construction are identical must produce bit-identical
  :class:`~repro.vm.errors.ExecutionResult`\\ s.  ``run_binaries`` detects
  this with :func:`execution_signature` and runs each distinct execution
  once (``-O2`` and ``-O3`` pipelines frequently converge on the same
  optimized unit, which makes this the matrix's biggest win).

Deduplication is sound because the signature captures everything a run can
observe: the printed unit content (which fixes the compiled closures *and*
the semantic analysis, both deterministic functions of it), the sanitizer
runtime construction inputs (sanitizer, compiler, version and the active
defect identities — opt-level effects are already resolved into the
instrumented unit and the defect list), and the step budget.  Runs with
side-effecting observers (coverage-collecting contexts) never get a
signature and therefore always execute.

Results are shared objects; callers treat :class:`ExecutionResult` as
immutable (everything in the repo does).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cdsl.printer import print_program
from repro.cdsl.visitor import walk
from repro.telemetry import runtime as telemetry
from repro.vm.errors import ExecutionResult
from repro.vm.interpreter import DEFAULT_MAX_STEPS


@dataclass
class BatchStats:
    """Counters for one batched execution (merged in place by the helpers)."""

    executions: int = 0   #: VM runs actually performed
    reused: int = 0       #: results served by the batch's dedup memo

    @property
    def total(self) -> int:
        return self.executions + self.reused


def unit_digest(binary) -> str:
    """Content digest of a binary's instrumented unit (memoized on it).

    The digest covers the printed program *and* the pre-order sequence of
    node source locations: two pipelines can converge on textually identical
    trees whose nodes still carry different locations (synthesized during
    different rewrites), and locations are observable through the site
    trace, ``executed_sites`` and report/crash locations.
    """
    digest = binary.metadata.get("unit_digest")
    if digest is None:
        hasher = hashlib.sha256(print_program(binary.unit).encode("utf-8"))
        locs = ",".join(f"{node.loc.line}:{node.loc.col}"
                        for node in walk(binary.unit))
        hasher.update(locs.encode("ascii"))
        digest = hasher.hexdigest()
        binary.metadata["unit_digest"] = digest
    return digest


def execution_signature(binary, max_steps: int) -> Optional[tuple]:
    """A key equal for two binaries iff their runs are bit-identical.

    Returns None when the run is not safely memoizable (a coverage-collecting
    sanitizer context records branch hits as a side effect of running).

    Defects enter the signature only through their *runtime-observable*
    state.  Check suppression (``check_predicate``) and report-line skew
    both act at instrumentation time — their entire effect is baked into
    the printed unit and therefore into :func:`unit_digest` — while at run
    time the sanitizer runtimes consult the context solely through
    ``InstrumentationContext.runtime_overrides()`` (plus coverage hooks,
    excluded above).  Keying on the merged override dict instead of the
    raw defect-id list lets e.g. the ``-O2`` and ``-O3`` cells of a matrix
    share one execution whenever their optimized units converged, even
    though different check-suppressing defects were active while
    instrumenting them.
    """
    ctx = binary.sanitizer_context
    if ctx is None:
        runtime_sig = None
    else:
        if ctx.coverage is not None:
            return None
        overrides = ctx.runtime_overrides()
        runtime_sig = (ctx.sanitizer, ctx.compiler, ctx.version,
                       tuple(sorted((key, repr(value))
                                    for key, value in overrides.items())))
    return (unit_digest(binary), runtime_sig, max_steps)


def run_binaries(binaries: Sequence, *,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 vm: str = "compiled",
                 dedupe: bool = True,
                 stats: Optional[BatchStats] = None
                 ) -> List[Optional[ExecutionResult]]:
    """Execute a batch of :class:`~repro.compilers.binary.CompiledBinary`.

    ``None`` entries (failed compiles) map to ``None`` results.  With
    ``dedupe`` (the default), binaries with equal :func:`execution_signature`
    run once and share the result object.  ``vm`` selects the executor for
    the runs that do happen (``"compiled"`` or ``"interp"``).
    """
    stats = stats if stats is not None else BatchStats()
    memo: Dict[tuple, ExecutionResult] = {}
    results: List[Optional[ExecutionResult]] = []
    for binary in binaries:
        if binary is None:
            results.append(None)
            continue
        signature = execution_signature(binary, max_steps) if dedupe else None
        if signature is not None:
            cached = memo.get(signature)
            if cached is not None:
                stats.reused += 1
                telemetry.inc("vm.batch.reused")
                results.append(cached)
                continue
        with telemetry.stage("execute", config=binary.label, vm=vm):
            result = binary.run(max_steps=max_steps, vm=vm)
        stats.executions += 1
        if signature is not None:
            memo[signature] = result
        results.append(result)
    return results


def run_many(programs: Sequence, configs: Sequence,
             compile_fn: Callable,
             *,
             max_steps: int = DEFAULT_MAX_STEPS,
             vm: str = "compiled",
             dedupe: bool = True,
             stats: Optional[BatchStats] = None
             ) -> List[List[Optional[ExecutionResult]]]:
    """Compile and execute every (program, config) cell, program-major.

    ``compile_fn(program, config)`` returns a binary or ``None`` for a
    failed compile.  Program-major order keeps each program's artifacts
    (frontend, optimizer masters, compiled closures) hot in the shared
    caches while its configuration row executes.  Returns one result row
    per program, aligned with *configs*.
    """
    stats = stats if stats is not None else BatchStats()
    rows: List[List[Optional[ExecutionResult]]] = []
    for program in programs:
        binaries = [compile_fn(program, config) for config in configs]
        rows.append(run_binaries(binaries, max_steps=max_steps, vm=vm,
                                 dedupe=dedupe, stats=stats))
    return rows
