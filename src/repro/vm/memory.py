"""The flat memory model of the simulated machine.

Memory is a collection of :class:`MemoryObject` allocations placed in three
segments (globals, stack, heap) by bump allocation, with a fixed guard gap
between neighbouring objects.  Addresses are plain integers; pointer values
in the VM are addresses into this space.

Two shadow states are maintained per byte, mirroring what the real sanitizer
runtimes keep:

* *poison* (AddressSanitizer) — set on red zones around instrumented
  objects, on freed heap objects, and on out-of-scope stack objects;
* *initialized* (MemorySanitizer) — cleared on allocation of stack/heap
  objects, set by every store.

Reads and writes that hit no live object are deliberately benign: reads
return the deterministic :data:`~repro.vm.values.UNINIT_BYTE` pattern and
writes land in a spill map.  This models the fact that a missed UB usually
does *not* crash a real program, which is exactly the false-negative
situation the paper hunts for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdsl import ctypes_ as ct
from repro.vm.values import UNINIT_BYTE

#: Gap between neighbouring allocations.  ASan poisons (at most) this many
#: bytes on each side of an instrumented object, which reproduces the
#: paper's observation (§2.1) that ASan only detects overflows of up to 32
#: bytes past the object.
GUARD_GAP = 32

_GLOBAL_BASE = 0x0001_0000
_STACK_BASE = 0x0100_0000
_HEAP_BASE = 0x1000_0000

_object_counter = itertools.count(1)


@dataclass
class MemoryObject:
    """One allocation (a global, a stack variable or a heap block)."""

    oid: int
    name: str
    base: int
    size: int
    kind: str                      # "global", "stack" or "heap"
    ctype: Optional[ct.CType] = None
    scope_id: Optional[int] = None  # lexical scope for stack objects
    frame_id: Optional[int] = None
    freed: bool = False
    dead: bool = False              # stack object whose scope has exited
    data: bytearray = field(default_factory=bytearray)
    initialized: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        # Stored rather than a property: the VM hot path tests containment
        # on every memory access, and base/size never change once placed.
        self.end = self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    @property
    def is_live(self) -> bool:
        return not self.freed and not self.dead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MemoryObject {self.name!r} {self.kind} "
                f"base=0x{self.base:x} size={self.size}>")


class Memory:
    """The flat address space of one program execution."""

    def __init__(self, guard_gap: int = GUARD_GAP) -> None:
        self.guard_gap = guard_gap
        self.objects: List[MemoryObject] = []
        self._by_base: Dict[int, MemoryObject] = {}
        self._next_addr = {"global": _GLOBAL_BASE, "stack": _STACK_BASE,
                           "heap": _HEAP_BASE}
        self._spill: Dict[int, int] = {}
        self._poisoned: set[int] = set()
        self._block_cache: Dict[int, MemoryObject] = {}
        self.alloc_hooks = []   # callables(MemoryObject) -> None
        self.free_hooks = []    # callables(MemoryObject) -> None

    # -- allocation ----------------------------------------------------------

    def allocate(self, size: int, kind: str, name: str,
                 ctype: Optional[ct.CType] = None,
                 scope_id: Optional[int] = None,
                 frame_id: Optional[int] = None,
                 zero_init: bool = False) -> MemoryObject:
        """Allocate *size* bytes in the given segment and return the object."""
        if kind not in self._next_addr:
            raise ValueError(f"unknown segment {kind!r}")
        size = max(1, size)
        base = _align_up(self._next_addr[kind], 16)
        self._next_addr[kind] = base + size + self.guard_gap
        obj = MemoryObject(
            oid=next(_object_counter), name=name, base=base, size=size,
            kind=kind, ctype=ctype, scope_id=scope_id, frame_id=frame_id,
            data=bytearray(size),
            initialized=bytearray([1] * size if zero_init else [0] * size),
        )
        self.objects.append(obj)
        self._by_base[base] = obj
        for hook in self.alloc_hooks:
            hook(obj)
        return obj

    def free(self, addr: int) -> Optional[MemoryObject]:
        """Mark the heap object starting at *addr* as freed.

        Returns the object, or None for an invalid free (which the VM treats
        as a silent no-op, matching our "missed UB is benign" philosophy).
        """
        obj = self._by_base.get(addr)
        if obj is None or obj.kind != "heap" or obj.freed:
            return None
        obj.freed = True
        for hook in self.free_hooks:
            hook(obj)
        return obj

    def mark_scope_dead(self, obj: MemoryObject) -> None:
        obj.dead = True

    def revive_for_scope(self, obj: MemoryObject) -> None:
        """Reset a stack slot when its scope is re-entered (loop iteration)."""
        obj.dead = False
        obj.initialized = bytearray(len(obj.initialized))

    # -- lookup --------------------------------------------------------------

    def object_at(self, addr: int, include_dead: bool = True) -> Optional[MemoryObject]:
        """Return the object containing *addr*, if any.

        Freed and dead objects are still found (``include_dead=True``)
        because use-after-free / use-after-scope detection needs them.

        Containment is unique — bump allocation with guard gaps never
        overlaps objects and never reuses addresses — and the guard gap
        (32) exceeds the 16-byte base alignment, so each 16-byte block
        intersects at most one object.  That makes a block-keyed cache of
        scan results sound: a cached object is returned only after its own
        containment (and requested liveness) re-checks.
        """
        cached = self._block_cache.get(addr >> 4)
        if cached is not None and cached.base <= addr < cached.end \
                and (include_dead or cached.is_live):
            return cached
        for obj in reversed(self.objects):
            if obj.contains(addr) and (include_dead or obj.is_live):
                self._block_cache[addr >> 4] = obj
                return obj
        return None

    def object_by_base(self, addr: int) -> Optional[MemoryObject]:
        return self._by_base.get(addr)

    def live_objects(self) -> List[MemoryObject]:
        return [o for o in self.objects if o.is_live]

    def nearest_object(self, addr: int, max_distance: int) -> Optional[MemoryObject]:
        """Return the closest object whose end/start is within *max_distance*."""
        best: Optional[MemoryObject] = None
        best_dist = max_distance + 1
        for obj in self.objects:
            if obj.contains(addr):
                return obj
            dist = obj.base - addr if addr < obj.base else addr - obj.end + 1
            if 0 <= dist < best_dist:
                best, best_dist = obj, dist
        return best

    # -- poisoning (ASan shadow) ---------------------------------------------

    def poison(self, addr: int, size: int) -> None:
        self._poisoned.update(range(addr, addr + size))

    def unpoison(self, addr: int, size: int) -> None:
        self._poisoned.difference_update(range(addr, addr + size))

    def is_poisoned(self, addr: int, size: int = 1) -> bool:
        return any(a in self._poisoned for a in range(addr, addr + size))

    def poison_object(self, obj: MemoryObject, redzone: int = 0) -> None:
        """Poison an object body and optionally its surrounding red zones."""
        self.poison(obj.base - redzone, obj.size + 2 * redzone)

    def poison_redzones(self, obj: MemoryObject, redzone: int) -> None:
        """Poison only the red zones around *obj* (allocation-time ASan)."""
        redzone = min(redzone, self.guard_gap)
        self.poison(obj.base - redzone, redzone)
        self.poison(obj.end, redzone)

    def unpoison_object(self, obj: MemoryObject, redzone: int = 0) -> None:
        self.unpoison(obj.base - redzone, obj.size + 2 * redzone)

    # -- byte access ---------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> tuple[bytes, bool]:
        """Read raw bytes; returns (data, any_uninitialized).

        The common case — the whole range inside one object — is served by
        slice operations; only accesses that spill past an object (the UB
        substrate) fall back to the per-byte walk.  Both paths return
        identical bytes/taint because containment is unique (see
        :meth:`object_at`).
        """
        obj = self.object_at(addr)
        if obj is not None and addr + size <= obj.end:
            offset = addr - obj.base
            end = offset + size
            return bytes(obj.data[offset:end]), 0 in obj.initialized[offset:end]
        out = bytearray()
        tainted = False
        for a in range(addr, addr + size):
            obj = self.object_at(a)
            if obj is not None:
                offset = a - obj.base
                out.append(obj.data[offset])
                if not obj.initialized[offset]:
                    tainted = True
            elif a in self._spill:
                out.append(self._spill[a])
            else:
                out.append(UNINIT_BYTE)
                tainted = True
        return bytes(out), tainted

    def write_bytes(self, addr: int, data: bytes) -> None:
        size = len(data)
        obj = self.object_at(addr)
        if obj is not None and addr + size <= obj.end:
            offset = addr - obj.base
            end = offset + size
            obj.data[offset:end] = data
            obj.initialized[offset:end] = b"\x01" * size
            return
        for i, byte in enumerate(data):
            a = addr + i
            obj = self.object_at(a)
            if obj is not None:
                offset = a - obj.base
                obj.data[offset] = byte
                obj.initialized[offset] = 1
            else:
                self._spill[a] = byte

    def read_int(self, addr: int, size: int, signed: bool) -> tuple[int, bool]:
        obj = self.object_at(addr)
        if obj is not None and addr + size <= obj.end:
            offset = addr - obj.base
            end = offset + size
            return (int.from_bytes(obj.data[offset:end], "little",
                                   signed=signed),
                    0 in obj.initialized[offset:end])
        data, tainted = self.read_bytes(addr, size)
        return int.from_bytes(data, "little", signed=signed), tainted

    def write_int(self, addr: int, size: int, value: int) -> None:
        mask = (1 << (8 * size)) - 1
        self.write_bytes(addr, (value & mask).to_bytes(size, "little"))

    def mark_initialized(self, addr: int, size: int, initialized: bool = True) -> None:
        flag = 1 if initialized else 0
        obj = self.object_at(addr)
        if obj is not None and addr + size <= obj.end:
            offset = addr - obj.base
            obj.initialized[offset:offset + size] = bytes([flag]) * size
            return
        for a in range(addr, addr + size):
            obj = self.object_at(a)
            if obj is not None:
                obj.initialized[a - obj.base] = flag

    def is_initialized(self, addr: int, size: int) -> bool:
        for a in range(addr, addr + size):
            obj = self.object_at(a)
            if obj is None:
                if a not in self._spill:
                    return False
            elif not obj.initialized[a - obj.base]:
                return False
        return True


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align
