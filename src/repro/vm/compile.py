"""Closure-bytecode compilation of CDSL programs.

:func:`compile_program` lowers an analysed translation unit into per-function
flat lists of Python closures ("ops", with branch targets resolved to list
indices) plus nested closure trees for expressions.  Every per-node decision
the AST-walking interpreter makes on each visit — dispatch-table lookups,
type tests, operator selection, pointer-scaling factors, read/write widths —
is made once at compile time; what remains at run time is the minimal
sequence of state updates the interpreter would have performed, in exactly
the same order.

Equivalence contract (enforced by
``tests/properties/test_vm_compile_equivalence.py`` and the pinned parity
suites): for any program and any sanitizer runtime, the compiled executor
produces an :class:`~repro.vm.errors.ExecutionResult` bit-identical to
``Interpreter.run()`` — same status, exit code, stdout, report, crash site,
step count, site trace, truncation flag and executed-site set — and drives
the same hook sequences (``site_callback``, ``profile_collector``,
``call_hook``, sanitizer runtime callbacks) in the same order.  The step
counter is the load-bearing detail: timeouts must fire at the same tick so
partial traces and stdout match.

Instrumentation stays on nullable fast paths, mirroring the telemetry
layer's rule: ``site_callback``, ``profile_collector`` and ``call_hook``
cost one ``is not None`` test when disabled, and telemetry is touched once
per run, never per tick.

A compiled program holds no mutable run state (each :meth:`CompiledProgram.run`
builds a fresh ``_State``), so one program can be cached and shared across
every execution of the same instrumented unit — the closure layer of
:class:`~repro.compilers.cache.CompilationCache` does exactly that.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.sema import SemanticInfo
from repro.telemetry import runtime as telemetry
from repro.vm.errors import (
    BreakSignal,
    ContinueSignal,
    ExecutionResult,
    ExecutionTimeout,
    ExitSignal,
    SanitizerAbort,
    VMFault,
)
from repro.vm.interpreter import (
    DEFAULT_MAX_STEPS,
    Frame,
    Interpreter,
    NullRuntime,
    SanitizerRuntime,
    _COMPARE_OPS,
    _INT_BINOPS,
    _MAX_CALL_DEPTH,
    _MAX_TRACE_LEN,
    _bits_of,
    _format_printf,
    _operand_type,
    _pointee_size,
    _pointee_type,
)
from repro.vm.memory import Memory
from repro.vm.values import RuntimeValue

# Small untainted results are served from a shared pool: RuntimeValue is a
# frozen dataclass, and building one costs ~20x a dict hit.  Sharing is safe
# because instances are immutable and nothing compares them by identity.
_RV_POOL = {v: RuntimeValue(v) for v in range(-1024, 16385)}
_RV_GET = _RV_POOL.get
_ZERO = _RV_POOL[0]
_RV_FALSE = _RV_POOL[0]
_RV_TRUE = _RV_POOL[1]


def _site(loc) -> Optional[tuple[int, int]]:
    """Precompute the trace site of a node (None for unknown locations)."""
    return (loc.line, loc.col) if loc.line > 0 else None


class _State:
    """Mutable state of one compiled execution (the interpreter's fields)."""

    __slots__ = (
        "memory", "runtime", "globals", "frames", "scope_stack", "strings",
        "string_keys", "stdout", "steps", "max_steps", "executed_sites",
        "site_trace", "trace_truncated", "last_site", "site_callback",
        "profile_collector", "call_hook", "max_trace_len", "retval",
        "fuse_progress", "fused_seen",
    )

    def __init__(self, runtime, max_steps, profile_collector, site_callback,
                 max_trace_len, call_hook, n_fused=0):
        memory = Memory()
        self.memory = memory
        self.runtime = runtime
        # Same order as Interpreter.__init__: the sanitizer runtime attaches
        # (and registers its hooks) before any profile-collector hooks.
        runtime.attach(memory)
        self.globals = {}
        self.frames = []
        self.scope_stack = []
        self.strings = {}
        self.string_keys = {}
        self.stdout = []
        self.steps = 0
        self.max_steps = max_steps
        self.executed_sites = set()
        self.site_trace = []
        self.trace_truncated = False
        self.last_site = None
        self.site_callback = site_callback
        self.profile_collector = profile_collector
        self.call_hook = call_hook
        self.max_trace_len = max_trace_len
        self.retval = None
        self.fuse_progress = 0
        # One flag per fused op: set after its first complete execution, at
        # which point its sites are all in executed_sites (adds are
        # monotonic) and the per-op set.update can be skipped.
        self.fused_seen = bytearray(n_fused)
        if profile_collector is not None:
            memory.alloc_hooks.append(profile_collector.on_alloc)
            memory.free_hooks.append(profile_collector.on_free)


def _tick(st: _State, site: Optional[tuple[int, int]]) -> None:
    """One interpreter step: count, time out, trace.  Must stay bit-identical
    to ``Interpreter._tick`` — timeout parity decides where partial traces
    and stdout end."""
    steps = st.steps + 1
    st.steps = steps
    if steps > st.max_steps:
        raise ExecutionTimeout(st.max_steps)
    if site is not None:
        st.last_site = site
        st.executed_sites.add(site)
        trace = st.site_trace
        if len(trace) < st.max_trace_len:
            trace.append(site)
        else:
            st.trace_truncated = True
        if st.site_callback is not None:
            st.site_callback(site)


def _local_slot_addr(st: _State, uid: int, symbol) -> int:
    """Slow path of a local-identifier lvalue: references that resolve in an
    outer frame, and reads before the DeclStmt executed (code motion), which
    allocate the slot lazily exactly like the interpreter."""
    for frame in reversed(st.frames):
        obj = frame.slots.get(uid)
        if obj is not None:
            return obj.base
    frames = st.frames
    if not frames:
        raise VMFault("no active frame")
    frame = frames[-1]
    memory = st.memory
    obj = memory.allocate(symbol.ctype.sizeof(), "stack", symbol.name,
                          symbol.ctype, scope_id=symbol.scope.scope_id,
                          frame_id=frame.frame_id)
    st.runtime.on_alloc(memory, obj)
    frame.slots[uid] = obj
    return obj.base


def _exit_scope(st: _State) -> None:
    """Pop the innermost scope: mark its objects dead in declaration order."""
    memory = st.memory
    runtime = st.runtime
    for obj in st.scope_stack.pop():
        memory.mark_scope_dead(obj)
        runtime.on_scope_exit(memory, obj)


class _Label:
    """A forward branch target; ``pc`` is patched once emission reaches it."""

    __slots__ = ("pc",)

    def __init__(self):
        self.pc = -1


class _FunctionCode:
    """Compiled form of one function: a flat op list plus parameter setup."""

    __slots__ = ("decl", "ops", "n_ops", "param_setup")

    def __init__(self, decl: ast.FunctionDecl):
        self.decl = decl
        self.ops: tuple = ()
        self.n_ops = 0
        self.param_setup = None


def _call(st: _State, code: _FunctionCode, args: List[RuntimeValue]) -> RuntimeValue:
    """Invoke a compiled function (the interpreter's ``_call_function``)."""
    frames = st.frames
    if len(frames) >= _MAX_CALL_DEPTH:
        raise VMFault("call depth limit exceeded")
    frame = Frame(code.decl)
    frames.append(frame)
    try:
        setup = code.param_setup
        if setup is not None:
            setup(st, frame, args)
        ops = code.ops
        n = code.n_ops
        st.retval = None
        pc = 0
        while pc < n:
            pc = ops[pc](st)
        value = st.retval
        st.retval = None
        return value if value is not None else _ZERO
    finally:
        frames.pop()


# ---------------------------------------------------------------------------
# static helpers (read/write/coerce specialisation)
# ---------------------------------------------------------------------------


def _make_reader(ctype):
    """Specialised ``Interpreter._read_value`` for a compile-time ctype.

    The in-object fast path folds ``Memory.read_int``'s lookup, slice and
    taint test into the closure; any access not wholly inside one object
    (the UB substrate) falls back to the generic method, which produces
    identical bytes and taint.
    """
    if isinstance(ctype, (ct.ArrayType, ct.StructType)):
        # Arrays decay to their address; struct rvalues are their address.
        return lambda st, addr: RuntimeValue(addr, False)
    size = ctype.sizeof()
    signed = isinstance(ctype, ct.IntType) and ctype.signed
    def read(st, addr):
        memory = st.memory
        obj = memory.object_at(addr)
        if obj is not None and addr + size <= obj.end:
            offset = addr - obj.base
            end = offset + size
            raw = int.from_bytes(obj.data[offset:end], "little", signed=signed)
            if obj.initialized.count(0, offset, end):
                return RuntimeValue(raw, True)
        else:
            raw, tainted = memory.read_int(addr, size, signed)
            if tainted:
                return RuntimeValue(raw, True)
        value = _RV_GET(raw)
        return value if value is not None else RuntimeValue(raw)
    return read


def _make_writer(ctype):
    """Specialised ``Interpreter._write_value`` for a compile-time ctype.

    The fast path writes data and initialized-shadow slices directly — the
    net effect of ``write_int`` + ``mark_initialized`` with one object
    lookup instead of two; partial/spill writes take the generic methods.
    """
    size = 8 if isinstance(ctype, ct.ArrayType) else ctype.sizeof()
    mask = (1 << (8 * size)) - 1
    init_shadow = b"\x01" * size
    taint_shadow = b"\x00" * size
    def write(st, addr, value):
        memory = st.memory
        obj = memory.object_at(addr)
        if obj is not None and addr + size <= obj.end:
            offset = addr - obj.base
            end = offset + size
            obj.data[offset:end] = (value.value & mask).to_bytes(size, "little")
            obj.initialized[offset:end] = taint_shadow if value.tainted \
                else init_shadow
            return
        memory.write_int(addr, size, value.value)
        memory.mark_initialized(addr, size, initialized=not value.tainted)
    return write


def _make_zero_writer(ctype):
    writer = _make_writer(ctype)
    return lambda st, addr: writer(st, addr, _ZERO)


def _make_coercer(ctype):
    """Specialised ``values.coerce`` for a compile-time ctype.

    ``IntType.wrap`` is inlined (mask + signedness reinterpret) and clean
    results come from the small-int pool, mirroring :func:`_make_binary`.
    """
    if isinstance(ctype, ct.IntType):
        w_mask = (1 << ctype.bits) - 1
        w_half = 1 << (ctype.bits - 1) if ctype.signed else None
        w_full = 1 << ctype.bits
        def co(v):
            raw = v.value & w_mask
            if w_half is not None and raw >= w_half:
                raw -= w_full
            if v.tainted:
                return RuntimeValue(raw, True)
            value = _RV_GET(raw)
            return value if value is not None else RuntimeValue(raw)
        return co
    if isinstance(ctype, (ct.PointerType, ct.ArrayType, ct.FunctionType)):
        return lambda v: RuntimeValue(v.value & 0xFFFF_FFFF_FFFF_FFFF, v.tainted)
    return lambda v: v


def _make_binary(expr, op):
    """Specialised ``Interpreter._apply_binary`` as ``fn(lhs, rhs)``.

    All type tests (pointer-arith selection, scaling factors, result wrap)
    happen here, once; the returned closure is pure value arithmetic.
    *expr* may be a BinaryOp or — for compound assignment — the Assignment
    node itself, which has no ``lhs``/``rhs`` attributes, so both operand
    types resolve to None and no pointer scaling applies (the interpreter
    behaves identically; the property suite pins it).
    """
    lhs_type = _operand_type(expr, "lhs")
    rhs_type = _operand_type(expr, "rhs")
    result_type = expr.ctype if isinstance(expr.ctype, ct.IntType) else ct.INT

    if isinstance(lhs_type, (ct.PointerType, ct.ArrayType)) and op in ("+", "-"):
        elem = _pointee_size(lhs_type)
        if isinstance(rhs_type, (ct.PointerType, ct.ArrayType)) and op == "-":
            div = max(1, elem)
            return lambda l, r: RuntimeValue((l.value - r.value) // div,
                                             l.tainted or r.tainted)
        if op == "+":
            return lambda l, r: RuntimeValue(l.value + r.value * elem,
                                             l.tainted or r.tainted)
        return lambda l, r: RuntimeValue(l.value - r.value * elem,
                                         l.tainted or r.tainted)
    if isinstance(rhs_type, (ct.PointerType, ct.ArrayType)) and op == "+":
        elem = _pointee_size(rhs_type)
        return lambda l, r: RuntimeValue(r.value + l.value * elem,
                                         l.tainted or r.tainted)

    wrap = result_type.wrap
    # IntType.wrap inlined: mask to the type's bits, reinterpret signedness.
    w_mask = (1 << result_type.bits) - 1
    w_half = 1 << (result_type.bits - 1) if result_type.signed else None
    w_full = 1 << result_type.bits
    func = _INT_BINOPS.get(op)
    if func is not None:
        def apply(l, r):
            raw = func(l.value, r.value) & w_mask
            if w_half is not None and raw >= w_half:
                raw -= w_full
            if l.tainted or r.tainted:
                return RuntimeValue(raw, True)
            value = _RV_GET(raw)
            return value if value is not None else RuntimeValue(raw)
        return apply
    if op == "<<" or op == ">>":
        bits = max(1, _bits_of(result_type))
        left = op == "<<"
        def apply(l, r):
            a, b = l.value, r.value
            if b >= 0:
                raw = a << (b % bits) if left else a >> (b % bits)
            else:
                raw = a  # negative shift counts pass through (benign UB)
            return RuntimeValue(wrap(raw), l.tainted or r.tainted)
        return apply
    cmp = _COMPARE_OPS.get(op)
    if cmp is not None:
        def apply(l, r):
            if l.tainted or r.tainted:
                return RuntimeValue(int(cmp(l.value, r.value)), True)
            return _RV_TRUE if cmp(l.value, r.value) else _RV_FALSE
        return apply
    def bad(l, r):
        raise VMFault(f"unsupported binary operator {op!r}")
    return bad


# ---------------------------------------------------------------------------
# straight-line tick fusion
# ---------------------------------------------------------------------------
#
# A *fusable* subtree has a statically known tick sequence: no short-circuit
# operators, no conditionals, no calls, no profile hooks.  A statement op
# over such a subtree can then account ALL of its K ticks with three bulk
# operations — one steps addition, one ``list.extend`` of the trace, one
# ``set.update`` of the executed sites — and evaluate a tick-free "work"
# closure tree, instead of running one inlined tick per node.  Exactness is
# preserved by construction:
#
# * the fast path only runs when the whole op fits under the step budget and
#   either fits under the trace cap or the trace is already full, and no
#   ``site_callback`` is attached; every boundary case (a timeout or the
#   trace cap landing *inside* the op, or a per-site callback) falls back to
#   the unfused op, which performs the canonical per-tick sequence;
# * work closures store ``st.fuse_progress`` — the number of ticks
#   semantically fired so far, as a compile-time absolute constant — before
#   every operation that can raise, so a sanitizer abort or VM fault
#   escaping mid-statement repairs steps, trace, executed sites and
#   ``last_site`` to exactly the per-tick state before propagating.
#   Operations that cannot raise skip the store entirely (the constants are
#   absolute, not increments, so skipped stores never accumulate error).


def _no_work(st):
    """Placeholder work for buffered entries that only tick (loop entries)."""


def _fuse_repair(st, steps_before, ticks, room):
    """Rebuild the exact per-tick state after an exception escaped a fused
    op: ``st.fuse_progress`` ticks fired before the raising operation."""
    fired = st.fuse_progress
    st.steps = steps_before + fired
    sites = [s for s in ticks[:fired] if s is not None]
    if sites:
        if room:
            st.site_trace.extend(sites)
        else:
            st.trace_truncated = True
        st.executed_sites.update(sites)
        st.last_site = sites[-1]


def _make_fused_stmt_op(work, ticks, slow_op, nxt, idx):
    """A statement op executing *work* with bulk tick accounting; *slow_op*
    is the unfused op taking over at every semantic boundary.  *idx* is the
    op's slot in ``st.fused_seen``: after the op's first complete execution
    its sites are all in ``executed_sites`` (adds are monotonic), so loop
    iterations skip the set update and pay one bytearray probe instead."""
    ticks = tuple(ticks)
    k = len(ticks)
    sites = tuple(s for s in ticks if s is not None)
    f_sites = frozenset(sites)   # set-to-set union reuses stored hashes
    n_sites = len(sites)
    last = sites[-1] if sites else None
    def op(st):
        steps = st.steps
        nsteps = steps + k
        if nsteps > st.max_steps or st.site_callback is not None:
            return slow_op(st)
        trace = st.site_trace
        room = len(trace) + n_sites <= st.max_trace_len
        if not room and len(trace) < st.max_trace_len:
            return slow_op(st)      # the cap lands inside this op
        st.fuse_progress = 0
        try:
            work(st)
        except BaseException:
            _fuse_repair(st, steps, ticks, room)
            raise
        st.steps = nsteps
        if n_sites:
            if room:
                trace.extend(sites)
            else:
                st.trace_truncated = True
            seen = st.fused_seen
            if not seen[idx]:
                seen[idx] = 1
                st.executed_sites.update(f_sites)
            st.last_site = last
        return nxt
    return op


def _make_fused_branch_op(work, ticks, slow_op, then_pc, els, idx):
    """Like :func:`_make_fused_stmt_op` but *work* yields the condition
    value: returns *then_pc* when truthy, the *els* label's pc otherwise."""
    ticks = tuple(ticks)
    k = len(ticks)
    sites = tuple(s for s in ticks if s is not None)
    f_sites = frozenset(sites)
    n_sites = len(sites)
    last = sites[-1] if sites else None
    def op(st):
        steps = st.steps
        nsteps = steps + k
        if nsteps > st.max_steps or st.site_callback is not None:
            return slow_op(st)
        trace = st.site_trace
        room = len(trace) + n_sites <= st.max_trace_len
        if not room and len(trace) < st.max_trace_len:
            return slow_op(st)
        st.fuse_progress = 0
        try:
            value = work(st)
        except BaseException:
            _fuse_repair(st, steps, ticks, room)
            raise
        st.steps = nsteps
        if n_sites:
            if room:
                trace.extend(sites)
            else:
                st.trace_truncated = True
            seen = st.fused_seen
            if not seen[idx]:
                seen[idx] = 1
                st.executed_sites.update(f_sites)
            st.last_site = last
        return then_pc if value.value != 0 else els.pc
    return op


def _make_fused_label_op(work, ticks, slow_op, label, idx):
    """Like :func:`_make_fused_stmt_op` but the op jumps to *label* (a
    ``_Label`` patched after emission) — the shape of a fused region whose
    last statement is a ``return``/``break``/``continue``."""
    ticks = tuple(ticks)
    k = len(ticks)
    sites = tuple(s for s in ticks if s is not None)
    f_sites = frozenset(sites)
    n_sites = len(sites)
    last = sites[-1] if sites else None
    def op(st):
        steps = st.steps
        nsteps = steps + k
        if nsteps > st.max_steps or st.site_callback is not None:
            return slow_op(st)
        trace = st.site_trace
        room = len(trace) + n_sites <= st.max_trace_len
        if not room and len(trace) < st.max_trace_len:
            return slow_op(st)
        st.fuse_progress = 0
        try:
            work(st)
        except BaseException:
            _fuse_repair(st, steps, ticks, room)
            raise
        st.steps = nsteps
        if n_sites:
            if room:
                trace.extend(sites)
            else:
                st.trace_truncated = True
            seen = st.fused_seen
            if not seen[idx]:
                seen[idx] = 1
                st.executed_sites.update(f_sites)
            st.last_site = last
        return label.pc
    return op


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


class _Compiler:
    """Compiles one translation unit to a :class:`CompiledProgram`."""

    def __init__(self, unit: ast.TranslationUnit, sema: SemanticInfo):
        self.unit = unit
        self.sema = sema
        self._codes: Dict[int, _FunctionCode] = {}
        self._pending: List[tuple] = []
        self._n_fused = 0

    def _fused_index(self) -> int:
        """Allocate this fused op's slot in the per-run ``fused_seen`` map."""
        idx = self._n_fused
        self._n_fused = idx + 1
        return idx

    # -- top level -----------------------------------------------------------

    def compile(self) -> "CompiledProgram":
        global_setup = self._compile_globals()
        main = self.unit.function_named("main")
        main_code = None
        if main is not None and main.body is not None:
            main_code = self._code_for(main)
        # Functions compile lazily from call sites (reachability); drain
        # until no new call targets appear.
        while self._pending:
            fn, code = self._pending.pop()
            self._compile_function(fn, code)
        return CompiledProgram(self.unit, self.sema, global_setup, main_code,
                               self._n_fused)

    def _code_for(self, fn: ast.FunctionDecl) -> _FunctionCode:
        code = self._codes.get(fn.node_id)
        if code is None:
            code = _FunctionCode(fn)
            self._codes[fn.node_id] = code
            self._pending.append((fn, code))
        return code

    def _compile_globals(self):
        allocs = []
        inits = []
        broken = False
        for decl in self.unit.globals:
            symbol = decl.symbol
            if symbol is None:
                # The interpreter faults at the first unanalysed global,
                # mid-allocation phase; later declarations never run.
                allocs.append((None, decl.name, None, 0))
                broken = True
                break
            allocs.append((symbol.uid, decl.name, symbol.ctype,
                           symbol.ctype.sizeof()))
        if not broken:
            for decl in self.unit.globals:
                if decl.init is not None:
                    inits.append((decl.symbol.uid, self.compile_store_init(
                        decl.symbol.ctype, decl.init)))

        def global_setup(st):
            memory = st.memory
            runtime = st.runtime
            g = st.globals
            for uid, name, ctype, size in allocs:
                if uid is None:
                    raise VMFault(f"global {name!r} was not analysed")
                obj = memory.allocate(size, "global", name, ctype,
                                      zero_init=True)
                g[uid] = obj
                runtime.on_alloc(memory, obj)
            for uid, fn in inits:
                fn(st, g[uid].base)
        return global_setup

    def _compile_function(self, fn: ast.FunctionDecl, code: _FunctionCode) -> None:
        specs = []
        for param in fn.params:
            symbol = param.symbol
            specs.append((symbol.uid, param.name, symbol.ctype,
                          symbol.ctype.sizeof(), _make_writer(symbol.ctype)))
        if specs:
            def param_setup(st, frame, args):
                memory = st.memory
                runtime = st.runtime
                slots = frame.slots
                fid = frame.frame_id
                nargs = len(args)
                for i, (uid, name, ctype, size, writer) in enumerate(specs):
                    obj = memory.allocate(size, "stack", name, ctype,
                                          frame_id=fid)
                    runtime.on_alloc(memory, obj)
                    slots[uid] = obj
                    writer(st, obj.base, args[i] if i < nargs else _ZERO)
            code.param_setup = param_setup
        fc = _FnCompiler(self)
        fc.compile_stmt(fn.body)
        fc.flush()
        fc.end.pc = len(fc.ops)
        code.ops = tuple(fc.ops)
        code.n_ops = len(code.ops)

    # -- declarations / initializers ----------------------------------------

    def compile_decl(self, decl: ast.VarDecl):
        """Compile one local VarDecl to ``fn(st)`` (``_exec_decl``)."""
        symbol = decl.symbol
        if symbol is None:
            name = decl.name
            def run(st):
                raise VMFault(f"local {name!r} was not analysed")
            return run
        node_id = decl.node_id
        uid = symbol.uid
        name = decl.name
        sctype = symbol.ctype
        size = sctype.sizeof()
        scope_id = symbol.scope.scope_id
        init_fn = None
        if decl.init is not None:
            init_fn = self.compile_store_init(sctype, decl.init)

        def run(st):
            frames = st.frames
            if not frames:
                raise VMFault("no active frame")
            frame = frames[-1]
            memory = st.memory
            obj = frame.decl_slots.get(node_id)
            if obj is not None:
                # Loop re-entry reuses the slot (C's fixed stack layout).
                memory.revive_for_scope(obj)
                st.runtime.on_scope_enter(memory, obj)
            else:
                obj = memory.allocate(size, "stack", name, sctype,
                                      scope_id=scope_id,
                                      frame_id=frame.frame_id)
                st.runtime.on_alloc(memory, obj)
                frame.decl_slots[node_id] = obj
            frame.slots[uid] = obj
            scopes = st.scope_stack
            if scopes:
                scopes[-1].append(obj)
            if init_fn is not None:
                init_fn(st, obj.base)
        return run

    def compile_store_init(self, ctype, init):
        """Compile an initializer to ``fn(st, addr)`` (``_store_initializer``)."""
        if isinstance(init, ast.InitList):
            if isinstance(ctype, ct.ArrayType):
                elem = ctype.element
                elem_size = elem.sizeof()
                subs = []
                for i in range(ctype.length):
                    off = i * elem_size
                    if i < len(init.items):
                        subs.append((off, self.compile_store_init(
                            elem, init.items[i])))
                    else:
                        subs.append((off, _make_zero_writer(elem)))
                def fn(st, addr):
                    for off, sub in subs:
                        sub(st, addr + off)
                return fn
            if isinstance(ctype, ct.StructType):
                subs = []
                for i, field in enumerate(ctype.fields):
                    if i < len(init.items):
                        subs.append((field.offset, self.compile_store_init(
                            field.ctype, init.items[i])))
                    else:
                        subs.append((field.offset,
                                     _make_zero_writer(field.ctype)))
                def fn(st, addr):
                    for off, sub in subs:
                        sub(st, addr + off)
                return fn
            # Braced scalar: first item, stored *without* coercion (the
            # interpreter writes the raw evaluated value here).
            writer = _make_writer(ctype)
            if init.items:
                ev = self.compile_expr(init.items[0])
                def fn(st, addr):
                    writer(st, addr, ev(st))
            else:
                def fn(st, addr):
                    writer(st, addr, _ZERO)
            return fn
        ev = self.compile_expr(init)
        co = _make_coercer(ctype)
        writer = _make_writer(ctype)
        def fn(st, addr):
            writer(st, addr, co(ev(st)))
        return fn

    # -- expressions ---------------------------------------------------------

    def compile_expr(self, expr: ast.Expr):
        """Compile an expression to a closure ``ev(st) -> RuntimeValue``."""
        maker = _EXPR_MAKERS.get(expr.__class__)
        if maker is None:
            site = _site(expr.loc)
            name = type(expr).__name__
            def ev(st):
                _tick(st, site)
                raise VMFault(f"cannot evaluate {name}")
            return ev
        return maker(self, expr)

    def compile_lvalue(self, expr: ast.Expr):
        """Compile an lvalue to ``(lv(st) -> addr, static ctype)``.

        Every interpreter lvalue handler returns a compile-time-determined
        ctype (provable by induction over the handlers), so only the address
        is computed at run time.
        """
        maker = _LV_MAKERS.get(expr.__class__)
        if maker is None:
            site = _site(expr.loc)
            name = type(expr).__name__
            def lv(st):
                _tick(st, site)
                raise VMFault(f"expression {name} is not an lvalue")
            return lv, ct.INT
        return maker(self, expr)

    def _lvalue_read(self, expr):
        """eval-of-lvalue: the double tick (eval entry + lvalue entry) is
        intentional — the lvalue closure ticks again on the same node."""
        site = _site(expr.loc)
        symbol = getattr(expr, "symbol", None)
        if (expr.__class__ is ast.Identifier and site is not None
                and symbol is not None and not symbol.is_global
                and not isinstance(symbol.ctype, (ct.ArrayType, ct.StructType))):
            # The hottest expression by far: a local scalar read.  Both ticks,
            # the current-frame slot lookup and the in-object memory read are
            # inlined; every rare case falls back to the generic helpers.
            uid = symbol.uid
            ctype = symbol.ctype
            size = ctype.sizeof()
            signed = isinstance(ctype, ct.IntType) and ctype.signed
            def ev(st):
                # tick 1 (eval entry) — inlined _tick with a known site
                steps = st.steps + 1
                st.steps = steps
                if steps > st.max_steps:
                    raise ExecutionTimeout(st.max_steps)
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
                # tick 2 (lvalue entry, same node → same site)
                steps = st.steps + 1
                st.steps = steps
                if steps > st.max_steps:
                    raise ExecutionTimeout(st.max_steps)
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
                frames = st.frames
                obj = frames[-1].slots.get(uid) if frames else None
                if obj is not None:
                    # The slot IS the memory object, and the slot was sized
                    # from this very ctype, so the read is always in-bounds:
                    # no object_at lookup, no containment test.
                    raw = int.from_bytes(obj.data[:size], "little",
                                         signed=signed)
                    if obj.initialized.count(0, 0, size):
                        return RuntimeValue(raw, True)
                else:
                    addr = _local_slot_addr(st, uid, symbol)
                    raw, tainted = st.memory.read_int(addr, size, signed)
                    if tainted:
                        return RuntimeValue(raw, True)
                value = _RV_GET(raw)
                return value if value is not None else RuntimeValue(raw)
            return ev
        lv, ctype = self.compile_lvalue(expr)
        reader = _make_reader(ctype)
        def ev(st):
            _tick(st, site)
            addr = lv(st)
            return reader(st, addr)
        return ev

    def _expr_IntLiteral(self, expr):
        site = _site(expr.loc)
        cached = _RV_GET(expr.value)
        value = cached if cached is not None else RuntimeValue(expr.value)
        if site is None:
            def ev(st):
                _tick(st, site)
                return value
            return ev
        def ev(st):
            steps = st.steps + 1
            st.steps = steps
            if steps > st.max_steps:
                raise ExecutionTimeout(st.max_steps)
            st.last_site = site
            st.executed_sites.add(site)
            trace = st.site_trace
            if len(trace) < st.max_trace_len:
                trace.append(site)
            else:
                st.trace_truncated = True
            cb = st.site_callback
            if cb is not None:
                cb(site)
            return value
        return ev

    def _expr_StringLiteral(self, expr):
        site = _site(expr.loc)
        text = expr.value
        def ev(st):
            _tick(st, site)
            addr = st.string_keys.get(text)
            if addr is None:
                addr = 0x7000_0000 + len(st.strings) * 0x100
                st.strings[addr] = text
                st.string_keys[text] = addr
            return RuntimeValue(addr)
        return ev

    def _expr_Identifier(self, expr):
        return self._lvalue_read(expr)

    def _expr_ArraySubscript(self, expr):
        return self._lvalue_read(expr)

    def _expr_Deref(self, expr):
        return self._lvalue_read(expr)

    def _expr_MemberAccess(self, expr):
        return self._lvalue_read(expr)

    def _expr_BinaryOp(self, expr):
        site = _site(expr.loc)
        op = expr.op
        lhs_ev = self.compile_expr(expr.lhs)
        rhs_ev = self.compile_expr(expr.rhs)
        if op == "&&":
            def ev(st):
                _tick(st, site)
                lhs = lhs_ev(st)
                if lhs.value == 0:
                    return RuntimeValue(0, lhs.tainted)
                rhs = rhs_ev(st)
                return RuntimeValue(1 if rhs.value != 0 else 0,
                                    lhs.tainted or rhs.tainted)
            return ev
        if op == "||":
            def ev(st):
                _tick(st, site)
                lhs = lhs_ev(st)
                if lhs.value != 0:
                    return RuntimeValue(1, lhs.tainted)
                rhs = rhs_ev(st)
                return RuntimeValue(1 if rhs.value != 0 else 0,
                                    lhs.tainted or rhs.tainted)
            return ev
        lhs_type = _operand_type(expr, "lhs")
        rhs_type = _operand_type(expr, "rhs")
        func = _INT_BINOPS.get(op)
        if (func is not None and site is not None
                and not isinstance(lhs_type, (ct.PointerType, ct.ArrayType))
                and not isinstance(rhs_type, (ct.PointerType, ct.ArrayType))):
            # Integer arithmetic is the second-hottest expression: the tick,
            # the operator and the result wrap are all inlined.
            result_type = expr.ctype if isinstance(expr.ctype, ct.IntType) \
                else ct.INT
            w_mask = (1 << result_type.bits) - 1
            w_half = (1 << (result_type.bits - 1)) if result_type.signed \
                else None
            w_full = 1 << result_type.bits
            def ev(st):
                steps = st.steps + 1
                st.steps = steps
                if steps > st.max_steps:
                    raise ExecutionTimeout(st.max_steps)
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
                lhs = lhs_ev(st)
                rhs = rhs_ev(st)
                raw = func(lhs.value, rhs.value) & w_mask
                if w_half is not None and raw >= w_half:
                    raw -= w_full
                if lhs.tainted or rhs.tainted:
                    return RuntimeValue(raw, True)
                value = _RV_GET(raw)
                return value if value is not None else RuntimeValue(raw)
            return ev
        cmp = _COMPARE_OPS.get(op)
        if cmp is not None and site is not None:
            # Comparisons (loop conditions) are as hot as the arithmetic.
            def ev(st):
                steps = st.steps + 1
                st.steps = steps
                if steps > st.max_steps:
                    raise ExecutionTimeout(st.max_steps)
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
                lhs = lhs_ev(st)
                rhs = rhs_ev(st)
                if lhs.tainted or rhs.tainted:
                    return RuntimeValue(int(cmp(lhs.value, rhs.value)), True)
                return _RV_TRUE if cmp(lhs.value, rhs.value) else _RV_FALSE
            return ev
        apply = _make_binary(expr, op)
        def ev(st):
            _tick(st, site)
            lhs = lhs_ev(st)
            rhs = rhs_ev(st)
            return apply(lhs, rhs)
        return ev

    def _expr_UnaryOp(self, expr):
        site = _site(expr.loc)
        operand_ev = self.compile_expr(expr.operand)
        result_type = expr.ctype if isinstance(expr.ctype, ct.IntType) else ct.INT
        wrap = result_type.wrap
        op = expr.op
        if op == "-":
            def ev(st):
                _tick(st, site)
                v = operand_ev(st)
                return RuntimeValue(wrap(-v.value), v.tainted)
        elif op == "+":
            def ev(st):
                _tick(st, site)
                v = operand_ev(st)
                return RuntimeValue(wrap(v.value), v.tainted)
        elif op == "!":
            def ev(st):
                _tick(st, site)
                v = operand_ev(st)
                return RuntimeValue(0 if v.value != 0 else 1, v.tainted)
        elif op == "~":
            def ev(st):
                _tick(st, site)
                v = operand_ev(st)
                return RuntimeValue(wrap(~v.value), v.tainted)
        else:
            def ev(st):
                _tick(st, site)
                operand_ev(st)  # operand side effects happen first
                raise VMFault(f"unsupported unary operator {op!r}")
        return ev

    def _expr_IncDec(self, expr):
        site = _site(expr.loc)
        lv, ctype = self.compile_lvalue(expr.operand)
        reader = _make_reader(ctype)
        writer = _make_writer(ctype)
        co = _make_coercer(ctype)
        delta = 1
        if isinstance(ctype, ct.PointerType):
            delta = max(1, ctype.pointee.sizeof())
        if expr.op != "++":
            delta = -delta
        prefix = expr.is_prefix
        def ev(st):
            _tick(st, site)
            addr = lv(st)
            old = reader(st, addr)
            new = co(RuntimeValue(old.value + delta, old.tainted))
            writer(st, addr, new)
            return new if prefix else old
        return ev

    def _expr_Assignment(self, expr):
        site = _site(expr.loc)
        target_type = expr.target.ctype or ct.INT
        if isinstance(target_type, ct.StructType):
            dst_lv, dst_type = self.compile_lvalue(expr.target)
            src_lv, _src_type = self.compile_lvalue(expr.value)
            size = dst_type.sizeof()
            def ev(st):
                _tick(st, site)
                dst = dst_lv(st)
                src = src_lv(st)
                memory = st.memory
                data, tainted = memory.read_bytes(src, size)
                memory.write_bytes(dst, data)
                if tainted:
                    memory.mark_initialized(dst, size, initialized=False)
                return RuntimeValue(dst)
            return ev
        if expr.op == "=":
            value_ev = self.compile_expr(expr.value)
            target = expr.target
            tsym = getattr(target, "symbol", None)
            tsite = _site(target.loc)
            if (target.__class__ is ast.Identifier and tsym is not None
                    and not tsym.is_global and site is not None
                    and tsite is not None
                    and isinstance(tsym.ctype, ct.IntType)):
                # Store to a local integer slot: assignment tick, RHS, the
                # target's own lvalue tick, wrap and slot write — all inline.
                uid = tsym.uid
                t_ctype = tsym.ctype
                size = t_ctype.sizeof()
                w_mask = (1 << t_ctype.bits) - 1
                w_half = (1 << (t_ctype.bits - 1)) if t_ctype.signed else None
                w_full = 1 << t_ctype.bits
                b_mask = (1 << (8 * size)) - 1
                init_shadow = b"\x01" * size
                taint_shadow = b"\x00" * size
                writer = _make_writer(t_ctype)
                def ev(st):
                    steps = st.steps + 1       # the assignment's own tick
                    st.steps = steps
                    if steps > st.max_steps:
                        raise ExecutionTimeout(st.max_steps)
                    st.last_site = site
                    st.executed_sites.add(site)
                    trace = st.site_trace
                    if len(trace) < st.max_trace_len:
                        trace.append(site)
                    else:
                        st.trace_truncated = True
                    cb = st.site_callback
                    if cb is not None:
                        cb(site)
                    value = value_ev(st)  # RHS before the target lvalue
                    steps = st.steps + 1       # the target lvalue's tick
                    st.steps = steps
                    if steps > st.max_steps:
                        raise ExecutionTimeout(st.max_steps)
                    st.last_site = tsite
                    st.executed_sites.add(tsite)
                    trace = st.site_trace
                    if len(trace) < st.max_trace_len:
                        trace.append(tsite)
                    else:
                        st.trace_truncated = True
                    cb = st.site_callback
                    if cb is not None:
                        cb(tsite)
                    raw = value.value & w_mask
                    if w_half is not None and raw >= w_half:
                        raw -= w_full
                    tainted = value.tainted
                    if tainted:
                        value = RuntimeValue(raw, True)
                    else:
                        value = _RV_GET(raw)
                        if value is None:
                            value = RuntimeValue(raw)
                    frames = st.frames
                    obj = frames[-1].slots.get(uid) if frames else None
                    if obj is not None:
                        obj.data[:size] = (raw & b_mask).to_bytes(size,
                                                                  "little")
                        obj.initialized[:size] = taint_shadow if tainted \
                            else init_shadow
                    else:
                        addr = _local_slot_addr(st, uid, tsym)
                        writer(st, addr, value)
                    return value
                return ev
            target_lv, t_ctype = self.compile_lvalue(target)
            co = _make_coercer(t_ctype)
            writer = _make_writer(t_ctype)
            def ev(st):
                _tick(st, site)
                value = value_ev(st)  # RHS evaluates before the target lvalue
                addr = target_lv(st)
                value = co(value)
                writer(st, addr, value)
                return value
            return ev
        # Compound assignment: read-modify-write, target lvalue first.
        target_lv, t_ctype = self.compile_lvalue(expr.target)
        reader = _make_reader(t_ctype)
        apply = _make_binary(expr, expr.op[:-1])
        rhs_ev = self.compile_expr(expr.value)
        co = _make_coercer(t_ctype)
        writer = _make_writer(t_ctype)
        def ev(st):
            _tick(st, site)
            addr = target_lv(st)
            current = reader(st, addr)
            rhs = rhs_ev(st)
            value = co(apply(current, rhs))
            writer(st, addr, value)
            return value
        return ev

    def _expr_AddressOf(self, expr):
        site = _site(expr.loc)
        lv, _ctype = self.compile_lvalue(expr.operand)
        def ev(st):
            _tick(st, site)
            return RuntimeValue(lv(st))
        return ev

    def _expr_Cast(self, expr):
        site = _site(expr.loc)
        operand_ev = self.compile_expr(expr.operand)
        co = _make_coercer(expr.target_type)
        def ev(st):
            _tick(st, site)
            return co(operand_ev(st))
        return ev

    def _expr_Conditional(self, expr):
        site = _site(expr.loc)
        cond_ev = self.compile_expr(expr.cond)
        then_ev = self.compile_expr(expr.then)
        else_ev = self.compile_expr(expr.otherwise)
        def ev(st):
            _tick(st, site)
            if cond_ev(st).value != 0:
                return then_ev(st)
            return else_ev(st)
        return ev

    def _expr_CommaExpr(self, expr):
        site = _site(expr.loc)
        part_evs = [self.compile_expr(p) for p in expr.parts]
        def ev(st):
            _tick(st, site)
            value = _ZERO
            for part in part_evs:
                value = part(st)
            return value
        return ev

    def _expr_SizeofExpr(self, expr):
        site = _site(expr.loc)
        if expr.target_type is not None:
            n = expr.target_type.sizeof()
        else:
            ctype = expr.operand.ctype if expr.operand is not None else None
            n = ctype.sizeof() if ctype is not None else 1
        value = RuntimeValue(n)
        def ev(st):
            _tick(st, site)
            return value
        return ev

    def _expr_ProfileHook(self, expr):
        site = _site(expr.loc)
        key = expr.key
        inner_node = expr.inner
        inner_ev = self.compile_expr(expr.inner)
        def ev(st):
            _tick(st, site)
            value = inner_ev(st)
            collector = st.profile_collector
            if collector is not None:
                collector.record_value(key, inner_node, value, st.memory)
            return value
        return ev

    def _make_check(self, expr: ast.SanitizerCheck):
        """Compile the check-and-maybe-abort step (``_run_check``)."""
        kind = expr.kind
        detail = expr.detail
        loc = expr.loc if expr.loc.is_known else expr.inner.loc
        def run_check(st, operands):
            report = st.runtime.check(kind, detail, operands, st.memory, loc)
            if report is not None:
                raise SanitizerAbort(report)
        return run_check

    def _expr_SanitizerCheck(self, expr):
        site = _site(expr.loc)
        kind = expr.kind
        if kind.startswith("asan_access") or kind in ("ubsan_null",
                                                      "ubsan_bounds"):
            # The lvalue path runs the check, then the value is read.
            return self._lvalue_read(expr)
        if kind in ("ubsan_arith", "ubsan_shift", "ubsan_div"):
            inner = expr.inner
            if not isinstance(inner, ast.BinaryOp):
                inner_ev = self.compile_expr(inner)
                def ev(st):
                    _tick(st, site)
                    return inner_ev(st)
                return ev
            lhs_ev = self.compile_expr(inner.lhs)
            rhs_ev = self.compile_expr(inner.rhs)
            apply = _make_binary(inner, inner.op)
            run_check = self._make_check(expr)
            op = inner.op
            inner_ctype = inner.ctype
            def ev(st):
                _tick(st, site)
                lhs = lhs_ev(st)
                rhs = rhs_ev(st)
                run_check(st, {"lhs": lhs.value, "rhs": rhs.value, "op": op,
                               "ctype": inner_ctype})
                return apply(lhs, rhs)
            return ev
        if kind == "msan_use":
            inner_ev = self.compile_expr(expr.inner)
            run_check = self._make_check(expr)
            def ev(st):
                _tick(st, site)
                value = inner_ev(st)
                run_check(st, {"tainted": value.tainted, "value": value.value})
                return value
            return ev
        # Unknown check kinds are transparent.
        inner_ev = self.compile_expr(expr.inner)
        def ev(st):
            _tick(st, site)
            return inner_ev(st)
        return ev

    def _expr_Call(self, expr):
        site = _site(expr.loc)
        fn = self.unit.function_named(expr.name)
        if fn is not None and fn.body is not None:
            code = self._code_for(fn)
            arg_evs = [self.compile_expr(a) for a in expr.args]
            coercers = [_make_coercer(p.ctype) for p in fn.params]
            nparams = len(coercers)
            def ev(st):
                _tick(st, site)
                vals = [e(st) for e in arg_evs]
                n = len(vals)
                args = [coercers[i](vals[i] if i < n else _ZERO)
                        for i in range(nparams)]
                return _call(st, code, args)
            return ev
        return self._make_builtin(expr, site)

    # -- lvalues -------------------------------------------------------------

    def _lv_Identifier(self, expr):
        site = _site(expr.loc)
        symbol = expr.symbol
        if symbol is None:
            name = expr.name
            def lv(st):
                _tick(st, site)
                raise VMFault(f"unresolved identifier {name!r}")
            return lv, ct.INT
        uid = symbol.uid
        if symbol.is_global:
            name = symbol.name
            def lv(st):
                _tick(st, site)
                obj = st.globals.get(uid)
                if obj is None:
                    raise VMFault(f"global {name!r} has no storage")
                return obj.base
        elif site is None:
            def lv(st):
                _tick(st, site)
                frames = st.frames
                if frames:
                    obj = frames[-1].slots.get(uid)
                    if obj is not None:
                        return obj.base
                return _local_slot_addr(st, uid, symbol)
        else:
            def lv(st):
                steps = st.steps + 1
                st.steps = steps
                if steps > st.max_steps:
                    raise ExecutionTimeout(st.max_steps)
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
                frames = st.frames
                if frames:
                    # Most references resolve in the current frame, which is
                    # also the first frame the reversed scan would check.
                    obj = frames[-1].slots.get(uid)
                    if obj is not None:
                        return obj.base
                return _local_slot_addr(st, uid, symbol)
        return lv, symbol.ctype

    def _lv_Deref(self, expr):
        site = _site(expr.loc)
        pointer_ev = self.compile_expr(expr.pointer)
        ctype = expr.ctype or _pointee_type(expr.pointer) or ct.INT
        def lv(st):
            _tick(st, site)
            return pointer_ev(st).value
        return lv, ctype

    def _lv_ArraySubscript(self, expr):
        site = _site(expr.loc)
        base_type = ct.decay(expr.base.ctype) if expr.base.ctype else None
        base_ev = self.compile_expr(expr.base)
        index_ev = self.compile_expr(expr.index)
        if isinstance(base_type, ct.PointerType):
            elem = base_type.pointee
        else:
            elem = expr.ctype or ct.INT
        scale = max(1, elem.sizeof())
        def lv(st):
            _tick(st, site)
            base = base_ev(st)
            index = index_ev(st)
            return base.value + index.value * scale
        return lv, elem

    def _lv_MemberAccess(self, expr):
        site = _site(expr.loc)
        if expr.arrow:
            base_ev = self.compile_expr(expr.base)
            struct_type = None
            if expr.base.ctype:
                decayed = ct.decay(expr.base.ctype)
                if decayed.is_pointer:
                    struct_type = decayed.pointee
        else:
            base_lv, struct_type = self.compile_lvalue(expr.base)
        if not isinstance(struct_type, ct.StructType):
            struct_type = None
        field_type = expr.ctype or ct.INT
        offset = 0
        if isinstance(struct_type, ct.StructType):
            field = struct_type.field_named(expr.field)
            if field is not None:
                offset = field.offset
                field_type = field.ctype
        if expr.arrow:
            def lv(st):
                _tick(st, site)
                return base_ev(st).value + offset
        else:
            def lv(st):
                _tick(st, site)
                return base_lv(st) + offset
        return lv, field_type

    def _lv_SanitizerCheck(self, expr):
        site = _site(expr.loc)
        inner_lv, ctype = self.compile_lvalue(expr.inner)
        size = expr.detail.get("size") or (ctype.sizeof() if ctype else 1)
        is_write = expr.detail.get("is_write", False)
        run_check = self._make_check(expr)
        if expr.kind == "ubsan_bounds" and isinstance(expr.inner,
                                                      ast.ArraySubscript):
            # The bounds check re-evaluates the index expression — extra
            # ticks and side effects the interpreter also produces.
            index_ev = self.compile_expr(expr.inner.index)
            length = expr.detail.get("length")
            def lv(st):
                _tick(st, site)
                addr = inner_lv(st)
                operands = {"addr": addr, "size": size, "is_write": is_write,
                            "index": index_ev(st).value, "length": length}
                run_check(st, operands)
                return addr
        else:
            def lv(st):
                _tick(st, site)
                addr = inner_lv(st)
                run_check(st, {"addr": addr, "size": size,
                               "is_write": is_write})
                return addr
        return lv, ctype

    def _lv_ProfileHook(self, expr):
        site = _site(expr.loc)
        key = expr.key
        inner_node = expr.inner
        inner_lv, ctype = self.compile_lvalue(expr.inner)
        def lv(st):
            _tick(st, site)
            addr = inner_lv(st)
            collector = st.profile_collector
            if collector is not None:
                collector.record_lvalue(key, inner_node, addr, ctype,
                                        st.memory)
            return addr
        return lv, ctype

    def _lv_Cast(self, expr):
        site = _site(expr.loc)
        inner_lv, ctype = self.compile_lvalue(expr.operand)
        def lv(st):
            _tick(st, site)
            return inner_lv(st)
        return lv, ctype

    def _lv_CommaExpr(self, expr):
        site = _site(expr.loc)
        if not expr.parts:
            def lv(st):
                _tick(st, site)
                raise VMFault("expression CommaExpr is not an lvalue")
            return lv, ct.INT
        part_evs = [self.compile_expr(p) for p in expr.parts[:-1]]
        last_lv, ctype = self.compile_lvalue(expr.parts[-1])
        def lv(st):
            _tick(st, site)
            for part in part_evs:
                part(st)
            return last_lv(st)
        return lv, ctype

    # -- straight-line fusion ------------------------------------------------
    #
    # ``_fuse_expr``/``_fuse_lv`` compile a subtree to a tick-free work
    # closure plus the subtree's static tick sequence, or None when any node
    # is unfusable (calls, short-circuits, conditionals, profile hooks,
    # comma chains).  *base* is the number of ticks fired before this node's
    # first tick within the enclosing fused region; it anchors the absolute
    # ``st.fuse_progress`` constants stored before raising operations (the
    # repair protocol of ``_fuse_repair``).  Each maker mirrors its ticked
    # counterpart above with the tick blocks lifted out; the tick *order*
    # ([own ticks] + child ticks, in evaluation order) must stay identical.

    def _fuse_expr(self, expr, base):
        maker = _FX_MAKERS.get(expr.__class__)
        if maker is None:
            return None
        return maker(self, expr, base)

    def _fuse_lv(self, expr, base):
        maker = _FLV_MAKERS.get(expr.__class__)
        if maker is None:
            return None
        return maker(self, expr, base)

    def _fuse_lvalue_read(self, expr, base):
        site = _site(expr.loc)
        symbol = getattr(expr, "symbol", None)
        if (expr.__class__ is ast.Identifier and symbol is not None
                and not symbol.is_global
                and not isinstance(symbol.ctype, (ct.ArrayType, ct.StructType))):
            uid = symbol.uid
            ctype = symbol.ctype
            size = ctype.sizeof()
            signed = isinstance(ctype, ct.IntType) and ctype.signed
            progress = base + 2    # both ticks fire before the slot resolves
            def work(st):
                frames = st.frames
                obj = frames[-1].slots.get(uid) if frames else None
                if obj is not None:
                    raw = int.from_bytes(obj.data[:size], "little",
                                         signed=signed)
                    if obj.initialized.count(0, 0, size):
                        return RuntimeValue(raw, True)
                else:
                    st.fuse_progress = progress
                    addr = _local_slot_addr(st, uid, symbol)
                    raw, tainted = st.memory.read_int(addr, size, signed)
                    if tainted:
                        return RuntimeValue(raw, True)
                value = _RV_GET(raw)
                return value if value is not None else RuntimeValue(raw)
            return work, [site, site]
        fused = self._fuse_lv(expr, base + 1)
        if fused is None:
            return None
        lv_work, lv_ticks, ctype = fused
        reader = _make_reader(ctype)
        ticks = [site] + lv_ticks
        progress = base + len(ticks)
        def work(st):
            addr = lv_work(st)
            st.fuse_progress = progress
            return reader(st, addr)
        return work, ticks

    def _fx_IntLiteral(self, expr, base):
        cached = _RV_GET(expr.value)
        value = cached if cached is not None else RuntimeValue(expr.value)
        return (lambda st: value), [_site(expr.loc)]

    def _fx_SizeofExpr(self, expr, base):
        if expr.target_type is not None:
            n = expr.target_type.sizeof()
        else:
            ctype = expr.operand.ctype if expr.operand is not None else None
            n = ctype.sizeof() if ctype is not None else 1
        value = RuntimeValue(n)
        return (lambda st: value), [_site(expr.loc)]

    def _fx_StringLiteral(self, expr, base):
        text = expr.value
        def work(st):
            addr = st.string_keys.get(text)
            if addr is None:
                addr = 0x7000_0000 + len(st.strings) * 0x100
                st.strings[addr] = text
                st.string_keys[text] = addr
            return RuntimeValue(addr)
        return work, [_site(expr.loc)]

    def _fx_Identifier(self, expr, base):
        return self._fuse_lvalue_read(expr, base)

    def _fx_ArraySubscript(self, expr, base):
        return self._fuse_lvalue_read(expr, base)

    def _fx_Deref(self, expr, base):
        return self._fuse_lvalue_read(expr, base)

    def _fx_MemberAccess(self, expr, base):
        return self._fuse_lvalue_read(expr, base)

    def _fx_BinaryOp(self, expr, base):
        op = expr.op
        if op == "&&" or op == "||":
            return None
        fl = self._fuse_expr(expr.lhs, base + 1)
        if fl is None:
            return None
        lhs_work, lhs_ticks = fl
        fr = self._fuse_expr(expr.rhs, base + 1 + len(lhs_ticks))
        if fr is None:
            return None
        rhs_work, rhs_ticks = fr
        apply = _make_binary(expr, op)
        def work(st):
            return apply(lhs_work(st), rhs_work(st))
        return work, [_site(expr.loc)] + lhs_ticks + rhs_ticks

    def _fx_UnaryOp(self, expr, base):
        op = expr.op
        if op not in ("-", "+", "!", "~"):
            return None
        f = self._fuse_expr(expr.operand, base + 1)
        if f is None:
            return None
        operand_work, operand_ticks = f
        result_type = expr.ctype if isinstance(expr.ctype, ct.IntType) else ct.INT
        wrap = result_type.wrap
        if op == "-":
            def work(st):
                v = operand_work(st)
                return RuntimeValue(wrap(-v.value), v.tainted)
        elif op == "+":
            def work(st):
                v = operand_work(st)
                return RuntimeValue(wrap(v.value), v.tainted)
        elif op == "!":
            def work(st):
                v = operand_work(st)
                return RuntimeValue(0 if v.value != 0 else 1, v.tainted)
        else:
            def work(st):
                v = operand_work(st)
                return RuntimeValue(wrap(~v.value), v.tainted)
        return work, [_site(expr.loc)] + operand_ticks

    def _fx_Cast(self, expr, base):
        f = self._fuse_expr(expr.operand, base + 1)
        if f is None:
            return None
        operand_work, operand_ticks = f
        co = _make_coercer(expr.target_type)
        def work(st):
            return co(operand_work(st))
        return work, [_site(expr.loc)] + operand_ticks

    def _fx_AddressOf(self, expr, base):
        f = self._fuse_lv(expr.operand, base + 1)
        if f is None:
            return None
        lv_work, lv_ticks, _ctype = f
        def work(st):
            return RuntimeValue(lv_work(st))
        return work, [_site(expr.loc)] + lv_ticks

    def _fx_IncDec(self, expr, base):
        f = self._fuse_lv(expr.operand, base + 1)
        if f is None:
            return None
        lv_work, lv_ticks, ctype = f
        reader = _make_reader(ctype)
        writer = _make_writer(ctype)
        co = _make_coercer(ctype)
        delta = 1
        if isinstance(ctype, ct.PointerType):
            delta = max(1, ctype.pointee.sizeof())
        if expr.op != "++":
            delta = -delta
        prefix = expr.is_prefix
        ticks = [_site(expr.loc)] + lv_ticks
        progress = base + len(ticks)
        def work(st):
            addr = lv_work(st)
            st.fuse_progress = progress
            old = reader(st, addr)
            new = co(RuntimeValue(old.value + delta, old.tainted))
            writer(st, addr, new)
            return new if prefix else old
        return work, ticks

    def _fx_Assignment(self, expr, base):
        site = _site(expr.loc)
        target_type = expr.target.ctype or ct.INT
        if isinstance(target_type, ct.StructType):
            fd = self._fuse_lv(expr.target, base + 1)
            if fd is None:
                return None
            dst_work, dst_ticks, dst_type = fd
            fs = self._fuse_lv(expr.value, base + 1 + len(dst_ticks))
            if fs is None:
                return None
            src_work, src_ticks, _src_type = fs
            size = dst_type.sizeof()
            ticks = [site] + dst_ticks + src_ticks
            progress = base + len(ticks)
            def work(st):
                dst = dst_work(st)
                src = src_work(st)
                st.fuse_progress = progress
                memory = st.memory
                data, tainted = memory.read_bytes(src, size)
                memory.write_bytes(dst, data)
                if tainted:
                    memory.mark_initialized(dst, size, initialized=False)
                return RuntimeValue(dst)
            return work, ticks
        if expr.op == "=":
            fv = self._fuse_expr(expr.value, base + 1)
            if fv is None:
                return None
            value_work, value_ticks = fv
            target = expr.target
            tsym = getattr(target, "symbol", None)
            if (target.__class__ is ast.Identifier and tsym is not None
                    and not tsym.is_global
                    and isinstance(tsym.ctype, ct.IntType)):
                uid = tsym.uid
                t_ctype = tsym.ctype
                size = t_ctype.sizeof()
                w_mask = (1 << t_ctype.bits) - 1
                w_half = (1 << (t_ctype.bits - 1)) if t_ctype.signed else None
                w_full = 1 << t_ctype.bits
                b_mask = (1 << (8 * size)) - 1
                init_shadow = b"\x01" * size
                taint_shadow = b"\x00" * size
                writer = _make_writer(t_ctype)
                ticks = [site] + value_ticks + [_site(target.loc)]
                progress = base + len(ticks)
                def work(st):
                    value = value_work(st)  # RHS before the target lvalue
                    raw = value.value & w_mask
                    if w_half is not None and raw >= w_half:
                        raw -= w_full
                    tainted = value.tainted
                    if tainted:
                        value = RuntimeValue(raw, True)
                    else:
                        value = _RV_GET(raw)
                        if value is None:
                            value = RuntimeValue(raw)
                    frames = st.frames
                    obj = frames[-1].slots.get(uid) if frames else None
                    if obj is not None:
                        obj.data[:size] = (raw & b_mask).to_bytes(size,
                                                                  "little")
                        obj.initialized[:size] = taint_shadow if tainted \
                            else init_shadow
                    else:
                        st.fuse_progress = progress
                        addr = _local_slot_addr(st, uid, tsym)
                        writer(st, addr, value)
                    return value
                return work, ticks
            ft = self._fuse_lv(target, base + 1 + len(value_ticks))
            if ft is None:
                return None
            target_work, target_ticks, t_ctype = ft
            co = _make_coercer(t_ctype)
            writer = _make_writer(t_ctype)
            ticks = [site] + value_ticks + target_ticks
            progress = base + len(ticks)
            def work(st):
                value = value_work(st)  # RHS before the target lvalue
                addr = target_work(st)
                value = co(value)
                st.fuse_progress = progress
                writer(st, addr, value)
                return value
            return work, ticks
        # Compound assignment: read-modify-write, target lvalue first.
        ft = self._fuse_lv(expr.target, base + 1)
        if ft is None:
            return None
        target_work, target_ticks, t_ctype = ft
        fv = self._fuse_expr(expr.value, base + 1 + len(target_ticks))
        if fv is None:
            return None
        rhs_work, rhs_ticks = fv
        reader = _make_reader(t_ctype)
        apply = _make_binary(expr, expr.op[:-1])
        co = _make_coercer(t_ctype)
        writer = _make_writer(t_ctype)
        ticks = [site] + target_ticks + rhs_ticks
        p_read = base + 1 + len(target_ticks)
        progress = base + len(ticks)
        def work(st):
            addr = target_work(st)
            st.fuse_progress = p_read
            current = reader(st, addr)
            rhs = rhs_work(st)
            value = co(apply(current, rhs))
            st.fuse_progress = progress
            writer(st, addr, value)
            return value
        return work, ticks

    def _fx_SanitizerCheck(self, expr, base):
        kind = expr.kind
        site = _site(expr.loc)
        if kind.startswith("asan_access") or kind in ("ubsan_null",
                                                      "ubsan_bounds"):
            return self._fuse_lvalue_read(expr, base)
        if kind in ("ubsan_arith", "ubsan_shift", "ubsan_div"):
            inner = expr.inner
            if not isinstance(inner, ast.BinaryOp):
                f = self._fuse_expr(inner, base + 1)
                if f is None:
                    return None
                inner_work, inner_ticks = f
                return (lambda st: inner_work(st)), [site] + inner_ticks
            fl = self._fuse_expr(inner.lhs, base + 1)
            if fl is None:
                return None
            lhs_work, lhs_ticks = fl
            fr = self._fuse_expr(inner.rhs, base + 1 + len(lhs_ticks))
            if fr is None:
                return None
            rhs_work, rhs_ticks = fr
            apply = _make_binary(inner, inner.op)
            run_check = self._make_check(expr)
            op = inner.op
            inner_ctype = inner.ctype
            ticks = [site] + lhs_ticks + rhs_ticks
            progress = base + len(ticks)
            def work(st):
                lhs = lhs_work(st)
                rhs = rhs_work(st)
                st.fuse_progress = progress
                run_check(st, {"lhs": lhs.value, "rhs": rhs.value, "op": op,
                               "ctype": inner_ctype})
                return apply(lhs, rhs)
            return work, ticks
        if kind == "msan_use":
            f = self._fuse_expr(expr.inner, base + 1)
            if f is None:
                return None
            inner_work, inner_ticks = f
            run_check = self._make_check(expr)
            ticks = [site] + inner_ticks
            progress = base + len(ticks)
            def work(st):
                value = inner_work(st)
                st.fuse_progress = progress
                run_check(st, {"tainted": value.tainted, "value": value.value})
                return value
            return work, ticks
        # Unknown check kinds are transparent.
        f = self._fuse_expr(expr.inner, base + 1)
        if f is None:
            return None
        inner_work, inner_ticks = f
        return (lambda st: inner_work(st)), [site] + inner_ticks

    def _flv_Identifier(self, expr, base):
        symbol = expr.symbol
        if symbol is None:
            return None
        site = _site(expr.loc)
        uid = symbol.uid
        progress = base + 1
        if symbol.is_global:
            name = symbol.name
            def lv_work(st):
                obj = st.globals.get(uid)
                if obj is None:
                    st.fuse_progress = progress
                    raise VMFault(f"global {name!r} has no storage")
                return obj.base
        else:
            def lv_work(st):
                frames = st.frames
                if frames:
                    obj = frames[-1].slots.get(uid)
                    if obj is not None:
                        return obj.base
                st.fuse_progress = progress
                return _local_slot_addr(st, uid, symbol)
        return lv_work, [site], symbol.ctype

    def _flv_Deref(self, expr, base):
        f = self._fuse_expr(expr.pointer, base + 1)
        if f is None:
            return None
        pointer_work, pointer_ticks = f
        ctype = expr.ctype or _pointee_type(expr.pointer) or ct.INT
        def lv_work(st):
            return pointer_work(st).value
        return lv_work, [_site(expr.loc)] + pointer_ticks, ctype

    def _flv_ArraySubscript(self, expr, base):
        base_type = ct.decay(expr.base.ctype) if expr.base.ctype else None
        fb = self._fuse_expr(expr.base, base + 1)
        if fb is None:
            return None
        base_work, base_ticks = fb
        fi = self._fuse_expr(expr.index, base + 1 + len(base_ticks))
        if fi is None:
            return None
        index_work, index_ticks = fi
        if isinstance(base_type, ct.PointerType):
            elem = base_type.pointee
        else:
            elem = expr.ctype or ct.INT
        scale = max(1, elem.sizeof())
        def lv_work(st):
            b = base_work(st)
            i = index_work(st)
            return b.value + i.value * scale
        return lv_work, [_site(expr.loc)] + base_ticks + index_ticks, elem

    def _flv_MemberAccess(self, expr, base):
        if expr.arrow:
            fb = self._fuse_expr(expr.base, base + 1)
            if fb is None:
                return None
            base_work, base_ticks = fb
            struct_type = None
            if expr.base.ctype:
                decayed = ct.decay(expr.base.ctype)
                if decayed.is_pointer:
                    struct_type = decayed.pointee
        else:
            fb = self._fuse_lv(expr.base, base + 1)
            if fb is None:
                return None
            base_work, base_ticks, struct_type = fb
        if not isinstance(struct_type, ct.StructType):
            struct_type = None
        field_type = expr.ctype or ct.INT
        offset = 0
        if isinstance(struct_type, ct.StructType):
            field = struct_type.field_named(expr.field)
            if field is not None:
                offset = field.offset
                field_type = field.ctype
        if expr.arrow:
            def lv_work(st):
                return base_work(st).value + offset
        else:
            def lv_work(st):
                return base_work(st) + offset
        return lv_work, [_site(expr.loc)] + base_ticks, field_type

    def _flv_SanitizerCheck(self, expr, base):
        site = _site(expr.loc)
        f = self._fuse_lv(expr.inner, base + 1)
        if f is None:
            return None
        inner_work, inner_ticks, ctype = f
        size = expr.detail.get("size") or (ctype.sizeof() if ctype else 1)
        is_write = expr.detail.get("is_write", False)
        run_check = self._make_check(expr)
        if expr.kind == "ubsan_bounds" and isinstance(expr.inner,
                                                      ast.ArraySubscript):
            # The bounds check re-evaluates the index (extra ticks).
            fi = self._fuse_expr(expr.inner.index,
                                 base + 1 + len(inner_ticks))
            if fi is None:
                return None
            index_work, index_ticks = fi
            length = expr.detail.get("length")
            ticks = [site] + inner_ticks + index_ticks
            progress = base + len(ticks)
            def lv_work(st):
                addr = inner_work(st)
                index = index_work(st).value
                st.fuse_progress = progress
                run_check(st, {"addr": addr, "size": size,
                               "is_write": is_write, "index": index,
                               "length": length})
                return addr
        else:
            ticks = [site] + inner_ticks
            progress = base + len(ticks)
            def lv_work(st):
                addr = inner_work(st)
                st.fuse_progress = progress
                run_check(st, {"addr": addr, "size": size,
                               "is_write": is_write})
                return addr
        return lv_work, ticks, ctype

    def _flv_Cast(self, expr, base):
        f = self._fuse_lv(expr.operand, base + 1)
        if f is None:
            return None
        inner_work, inner_ticks, ctype = f
        def lv_work(st):
            return inner_work(st)
        return lv_work, [_site(expr.loc)] + inner_ticks, ctype

    def _fuse_decl(self, decl, base):
        """Fused ``compile_decl`` for a single analysed scalar declaration
        with a plain (non-InitList) initializer.  Returns ticks for the
        *initializer only* — the declaration itself does not tick; *base*
        counts the enclosing DeclStmt's statement tick."""
        symbol = decl.symbol
        if symbol is None or decl.init is None \
                or isinstance(decl.init, ast.InitList):
            return None
        f = self._fuse_expr(decl.init, base)
        if f is None:
            return None
        init_work, init_ticks = f
        node_id = decl.node_id
        uid = symbol.uid
        name = decl.name
        sctype = symbol.ctype
        size = sctype.sizeof()
        scope_id = symbol.scope.scope_id
        co = _make_coercer(sctype)
        writer = _make_writer(sctype)
        entry = base
        progress = base + len(init_ticks)
        def work(st):
            st.fuse_progress = entry
            frames = st.frames
            if not frames:
                raise VMFault("no active frame")
            frame = frames[-1]
            memory = st.memory
            obj = frame.decl_slots.get(node_id)
            if obj is not None:
                # Loop re-entry reuses the slot (C's fixed stack layout).
                memory.revive_for_scope(obj)
                st.runtime.on_scope_enter(memory, obj)
            else:
                obj = memory.allocate(size, "stack", name, sctype,
                                      scope_id=scope_id,
                                      frame_id=frame.frame_id)
                st.runtime.on_alloc(memory, obj)
                frame.decl_slots[node_id] = obj
            frame.slots[uid] = obj
            scopes = st.scope_stack
            if scopes:
                scopes[-1].append(obj)
            value = co(init_work(st))
            st.fuse_progress = progress
            writer(st, obj.base, value)
        return work, init_ticks

    # -- builtins ------------------------------------------------------------

    def _make_builtin(self, expr: ast.Call, site):
        name = expr.name
        args = expr.args
        if name in ("printf", "__builtin_printf"):
            if not args:
                def ev(st):
                    _tick(st, site)
                    return _ZERO
                return ev
            fmt_ev = self.compile_expr(args[0])
            rest_evs = [self.compile_expr(a) for a in args[1:]]
            def ev(st):
                _tick(st, site)
                fmt_value = fmt_ev(st)
                fmt = st.strings.get(fmt_value.value, "")
                values = [e(st).value for e in rest_evs]
                text = _format_printf(fmt, values)
                st.stdout.append(text)
                return RuntimeValue(len(text))
            return ev
        if name == "malloc":
            size_ev = self.compile_expr(args[0]) if args else None
            def ev(st):
                _tick(st, site)
                size = size_ev(st).value if size_ev is not None else 0
                obj = st.memory.allocate(max(1, size), "heap", "malloc", None)
                st.runtime.on_alloc(st.memory, obj)
                return RuntimeValue(obj.base)
            return ev
        if name == "calloc":
            count_ev = self.compile_expr(args[0]) if args else None
            size_ev = self.compile_expr(args[1]) if len(args) > 1 else None
            def ev(st):
                _tick(st, site)
                count = count_ev(st).value if count_ev is not None else 0
                size = size_ev(st).value if size_ev is not None else 1
                obj = st.memory.allocate(max(1, count * size), "heap",
                                         "calloc", None, zero_init=True)
                st.runtime.on_alloc(st.memory, obj)
                return RuntimeValue(obj.base)
            return ev
        if name == "free":
            addr_ev = self.compile_expr(args[0]) if args else None
            def ev(st):
                _tick(st, site)
                addr = addr_ev(st).value if addr_ev is not None else 0
                obj = st.memory.free(addr)
                if obj is not None:
                    st.runtime.on_free(st.memory, obj)
                return _ZERO
            return ev
        if name == "memset":
            if len(args) >= 3:
                addr_ev = self.compile_expr(args[0])
                byte_ev = self.compile_expr(args[1])
                count_ev = self.compile_expr(args[2])
                def ev(st):
                    _tick(st, site)
                    addr = addr_ev(st).value
                    byte = byte_ev(st).value & 0xFF
                    count = count_ev(st).value
                    st.memory.write_bytes(addr, bytes([byte]) * max(0, count))
                    return RuntimeValue(addr)
            else:
                def ev(st):
                    _tick(st, site)
                    return _ZERO
            return ev
        if name == "abort":
            def ev(st):
                _tick(st, site)
                raise ExitSignal(134)
            return ev
        if name == "exit":
            code_ev = self.compile_expr(args[0]) if args else None
            def ev(st):
                _tick(st, site)
                code = code_ev(st).value if code_ev is not None else 0
                raise ExitSignal(code)
            return ev
        # Unknown external: evaluate arguments for side effects, notify the
        # call hook (marker liveness rides on this), return 0.
        arg_evs = [self.compile_expr(a) for a in args]
        def ev(st):
            _tick(st, site)
            for e in arg_evs:
                e(st)
            hook = st.call_hook
            if hook is not None:
                hook(name)
            return _ZERO
        return ev


class _FnCompiler:
    """Emits the flat op list of one function body.

    Every op is ``op(st) -> next_pc``.  Branch targets are ``_Label``s whose
    ``pc`` is patched once emission reaches them; ``break``/``continue``/
    ``return`` pop their statically known number of open scopes before
    jumping, which reproduces the interpreter's try/finally unwinding.
    """

    #: Flush the statement-fusion buffer once a merged region reaches this
    #: many ticks: bounds the slow-path window around the trace cap and the
    #: step budget (the whole region falls back when either lands inside it).
    MAX_REGION_TICKS = 64

    def __init__(self, compiler: _Compiler):
        self.c = compiler
        self.ops: List[Callable] = []
        self.depth = 0          # scopes currently open in this function
        self.loops: List[tuple] = []   # (break_label, continue_label, depth)
        self.end = _Label()     # function epilogue (pc == len(ops))
        # Basic-block fusion buffer: consecutive fusable ExprStmt/DeclStmt
        # merge into ONE op (one guard, one bulk tick accounting for the
        # whole run of statements).  Entries are (work, ticks, slow_body)
        # where slow_body(st) performs the statement's canonical per-tick
        # sequence.  fbuf_ticks is the region's running tick count — the
        # base for the next statement's absolute fuse_progress constants.
        self.fbuf: List[tuple] = []
        self.fbuf_ticks = 0

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        maker = _STMT_MAKERS.get(stmt.__class__)
        if maker is None:
            self.flush()
            site = _site(stmt.loc)
            name = type(stmt).__name__
            def op(st):
                _tick(st, site)
                raise VMFault(f"cannot execute statement {name}")
            self.ops.append(op)
            return
        cls = stmt.__class__
        if cls not in _BUFFER_AWARE_STMTS:
            # Statements outside the set emit ops (and may patch labels)
            # without managing the fusion buffer, so the pending region must
            # land first.  Buffer-aware makers flush (or merge) themselves.
            self.flush()
        maker(self, stmt)

    def flush(self, jump_to: Optional[int] = None,
              jump_label: Optional[_Label] = None) -> None:
        """Emit the pending fused region as one op (no-op when empty).

        The merged op's successor is the following op, or *jump_to* when the
        region absorbs a trailing back-jump (``emit_jump_pc``), or the
        runtime pc of *jump_label* when it absorbs a ``return``/``break``/
        ``continue`` (the label is patched after emission)."""
        buf = self.fbuf
        if not buf:
            return
        self.fbuf = []
        self.fbuf_ticks = 0
        ticks = [t for _, ts, _ in buf for t in ts]
        if jump_label is not None:
            def slow_op(st):
                for _, _, s in buf:
                    s(st)
                return jump_label.pc
            works = tuple(w for w, _, _ in buf if w is not None)
            if len(works) == 1:
                work = works[0]
            else:
                def work(st):
                    for w in works:
                        w(st)
            self.ops.append(_make_fused_label_op(work, ticks, slow_op,
                                                 jump_label,
                                                 self.c._fused_index()))
            return
        nxt = len(self.ops) + 1 if jump_to is None else jump_to
        if len(buf) == 1:
            work = buf[0][0] or _no_work
            slow_body = buf[0][2]
            def slow_op(st):
                slow_body(st)
                return nxt
        else:
            works = tuple(w for w, _, _ in buf if w is not None)
            slows = tuple(s for _, _, s in buf)
            if len(works) == 1:
                work = works[0]
            elif len(works) == 2:
                w0, w1 = works
                def work(st):
                    w0(st)
                    w1(st)
            elif len(works) == 3:
                w0, w1, w2 = works
                def work(st):
                    w0(st)
                    w1(st)
                    w2(st)
            else:
                def work(st):
                    for w in works:
                        w(st)
            def slow_op(st):
                for s in slows:
                    s(st)
                return nxt
        self.ops.append(_make_fused_stmt_op(work, ticks, slow_op, nxt,
                                            self.c._fused_index()))

    def buffer_fused(self, work, ticks, slow_body) -> None:
        self.fbuf.append((work, ticks, slow_body))
        self.fbuf_ticks += len(ticks)

    def emit_jump(self, label: _Label) -> None:
        self.flush()
        def op(st):
            return label.pc
        self.ops.append(op)

    def emit_jump_pc(self, pc: int) -> None:
        if self.fbuf:
            self.flush(jump_to=pc)   # the region absorbs the back-jump
            return
        def op(st):
            return pc
        self.ops.append(op)

    # -- statement makers ----------------------------------------------------

    def _st_CompoundStmt(self, stmt):
        site = _site(stmt.loc)
        if self.fbuf_ticks >= self.MAX_REGION_TICKS:
            self.flush()
        def enter_work(st):
            st.scope_stack.append([])
        def enter_slow(st):
            _tick(st, site)
            st.scope_stack.append([])
        self.buffer_fused(enter_work, [site], enter_slow)
        self.depth += 1
        for inner in stmt.stmts:
            self.compile_stmt(inner)
        if self.fbuf:
            # The scope exit rides along in the pending region (zero ticks).
            self.buffer_fused(_exit_scope, [], _exit_scope)
        else:
            nxt2 = len(self.ops) + 1
            def leave(st):
                _exit_scope(st)
                return nxt2
            self.ops.append(leave)
        self.depth -= 1

    def _st_DeclStmt(self, stmt):
        site = _site(stmt.loc)
        decl_fns = [self.c.compile_decl(d) for d in stmt.decls]
        if len(decl_fns) == 1:
            decl_fn = decl_fns[0]
            if self.fbuf_ticks >= self.MAX_REGION_TICKS:
                self.flush()
            fused = self.c._fuse_decl(stmt.decls[0], self.fbuf_ticks + 1)
            if fused is not None:
                work, init_ticks = fused
                def slow_body(st):
                    _tick(st, site)
                    decl_fn(st)
                self.buffer_fused(work, [site] + init_ticks, slow_body)
                return
            self.flush()
            nxt = len(self.ops) + 1
            def op(st):
                steps = st.steps + 1           # inlined _tick
                st.steps = steps
                if steps > st.max_steps:
                    raise ExecutionTimeout(st.max_steps)
                if site is not None:
                    st.last_site = site
                    st.executed_sites.add(site)
                    trace = st.site_trace
                    if len(trace) < st.max_trace_len:
                        trace.append(site)
                    else:
                        st.trace_truncated = True
                    cb = st.site_callback
                    if cb is not None:
                        cb(site)
                decl_fn(st)
                return nxt
        else:
            self.flush()
            nxt = len(self.ops) + 1
            def op(st):
                _tick(st, site)
                for fn in decl_fns:
                    fn(st)
                return nxt
        self.ops.append(op)

    def _st_ExprStmt(self, stmt):
        site = _site(stmt.loc)
        if self.fbuf_ticks >= self.MAX_REGION_TICKS:
            self.flush()
        fused = self.c._fuse_expr(stmt.expr, self.fbuf_ticks + 1)
        ev = self.c.compile_expr(stmt.expr)
        if fused is not None:
            work, ticks = fused
            def slow_body(st):
                _tick(st, site)
                ev(st)
            self.buffer_fused(work, [site] + ticks, slow_body)
            return
        self.flush()
        nxt = len(self.ops) + 1
        def op(st):
            steps = st.steps + 1               # inlined _tick
            st.steps = steps
            if steps > st.max_steps:
                raise ExecutionTimeout(st.max_steps)
            if site is not None:
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
            ev(st)
            return nxt
        self.ops.append(op)

    def _st_IfStmt(self, stmt):
        site = _site(stmt.loc)
        cond_ev = self.c.compile_expr(stmt.cond)
        els = _Label()
        nxt = len(self.ops) + 1
        def branch(st):
            steps = st.steps + 1               # inlined _tick
            st.steps = steps
            if steps > st.max_steps:
                raise ExecutionTimeout(st.max_steps)
            if site is not None:
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
            if cond_ev(st).value != 0:
                return nxt
            return els.pc
        fused = self.c._fuse_expr(stmt.cond, 1)
        if fused is not None:
            work, ticks = fused
            branch = _make_fused_branch_op(work, [site] + ticks, branch,
                                           nxt, els, self.c._fused_index())
        self.ops.append(branch)
        self.compile_stmt(stmt.then)
        if stmt.otherwise is not None:
            end = _Label()
            self.emit_jump(end)
            els.pc = len(self.ops)
            self.compile_stmt(stmt.otherwise)
            self.flush()
            end.pc = len(self.ops)
        else:
            self.flush()
            els.pc = len(self.ops)

    def _st_WhileStmt(self, stmt):
        site = _site(stmt.loc)
        cond_ev = self.c.compile_expr(stmt.cond)
        def entry_slow(st):     # the _exec_stmt tick for the while itself
            _tick(st, site)
        self.buffer_fused(None, [site], entry_slow)
        self.flush()            # the loop head label must land next
        top = len(self.ops)
        brk = _Label()
        cont = _Label()
        cont.pc = top
        nxt2 = len(self.ops) + 1
        def head(st):           # per-iteration tick + condition, tick inlined
            steps = st.steps + 1
            st.steps = steps
            if steps > st.max_steps:
                raise ExecutionTimeout(st.max_steps)
            if site is not None:
                st.last_site = site
                st.executed_sites.add(site)
                trace = st.site_trace
                if len(trace) < st.max_trace_len:
                    trace.append(site)
                else:
                    st.trace_truncated = True
                cb = st.site_callback
                if cb is not None:
                    cb(site)
            if cond_ev(st).value != 0:
                return nxt2
            return brk.pc
        fused = self.c._fuse_expr(stmt.cond, 1)
        if fused is not None:
            work, ticks = fused
            head = _make_fused_branch_op(work, [site] + ticks, head,
                                         nxt2, brk, self.c._fused_index())
        self.ops.append(head)
        self.loops.append((brk, cont, self.depth))
        self.compile_stmt(stmt.body)
        self.emit_jump_pc(top)
        self.loops.pop()
        brk.pc = len(self.ops)

    def _st_ForStmt(self, stmt):
        site = _site(stmt.loc)
        if self.fbuf_ticks >= self.MAX_REGION_TICKS:
            self.flush()
        def enter_work(st):     # the for-init scope
            st.scope_stack.append([])
        def enter_slow(st):     # stmt tick + the for-init scope
            _tick(st, site)
            st.scope_stack.append([])
        self.buffer_fused(enter_work, [site], enter_slow)
        self.depth += 1
        init = stmt.init
        if isinstance(init, ast.Stmt):
            self.compile_stmt(init)
        elif isinstance(init, ast.Expr):
            init_ev = self.c.compile_expr(init)
            fused = self.c._fuse_expr(init, self.fbuf_ticks)
            if fused is not None:
                # Expression init: no statement tick; rides the region.
                work, ticks = fused
                self.buffer_fused(work, ticks, init_ev)
            else:
                self.flush()
                nxt2 = len(self.ops) + 1
                def init_op(st):
                    init_ev(st)
                    return nxt2
                self.ops.append(init_op)
        self.flush()
        cond_ev = self.c.compile_expr(stmt.cond) if stmt.cond is not None else None
        top = len(self.ops)
        brk = _Label()
        cont = _Label()
        nxt3 = len(self.ops) + 1
        if cond_ev is not None:
            def head(st):       # per-iteration tick + condition, tick inlined
                steps = st.steps + 1
                st.steps = steps
                if steps > st.max_steps:
                    raise ExecutionTimeout(st.max_steps)
                if site is not None:
                    st.last_site = site
                    st.executed_sites.add(site)
                    trace = st.site_trace
                    if len(trace) < st.max_trace_len:
                        trace.append(site)
                    else:
                        st.trace_truncated = True
                    cb = st.site_callback
                    if cb is not None:
                        cb(site)
                if cond_ev(st).value != 0:
                    return nxt3
                return brk.pc
            fused = self.c._fuse_expr(stmt.cond, 1)
            if fused is not None:
                work, ticks = fused
                head = _make_fused_branch_op(work, [site] + ticks, head,
                                             nxt3, brk,
                                             self.c._fused_index())
        else:
            def head(st):
                _tick(st, site)
                return nxt3
        self.ops.append(head)
        self.loops.append((brk, cont, self.depth))
        self.compile_stmt(stmt.body)
        self.flush()
        cont.pc = len(self.ops)
        if stmt.step is not None:
            step_ev = self.c.compile_expr(stmt.step)
            fused = self.c._fuse_expr(stmt.step, 0)
            if fused is not None:
                # Buffer the step so the back-jump is absorbed into it.
                work, ticks = fused
                self.buffer_fused(work, ticks, step_ev)
            else:
                nxt4 = len(self.ops) + 1
                def step_op(st):
                    step_ev(st)
                    return nxt4
                self.ops.append(step_op)
        self.emit_jump_pc(top)
        self.loops.pop()
        brk.pc = len(self.ops)
        # break and the cond-false exit both land on the pending region,
        # which starts with the for-init scope exit (zero ticks).
        self.buffer_fused(_exit_scope, [], _exit_scope)
        self.depth -= 1

    def _st_ReturnStmt(self, stmt):
        site = _site(stmt.loc)
        k = self.depth
        end = self.end
        if stmt.value is not None:
            ev = self.c.compile_expr(stmt.value)
            if self.fbuf_ticks >= self.MAX_REGION_TICKS:
                self.flush()
            fused = self.c._fuse_expr(stmt.value, self.fbuf_ticks + 1)
            if fused is not None:
                vwork, ticks = fused
                def work(st):
                    value = vwork(st)
                    for _ in range(k):
                        _exit_scope(st)
                    st.retval = value
                def slow_body(st):
                    _tick(st, site)
                    value = ev(st)
                    for _ in range(k):
                        _exit_scope(st)
                    st.retval = value
                self.buffer_fused(work, [site] + ticks, slow_body)
                self.flush(jump_label=end)
                return
            self.flush()
            def op(st):
                _tick(st, site)
                value = ev(st)
                for _ in range(k):
                    _exit_scope(st)
                st.retval = value
                return end.pc
        else:
            def work(st):
                for _ in range(k):
                    _exit_scope(st)
                st.retval = None
            def slow_body(st):
                _tick(st, site)
                for _ in range(k):
                    _exit_scope(st)
                st.retval = None
            self.buffer_fused(work, [site], slow_body)
            self.flush(jump_label=end)
            return
        self.ops.append(op)

    def _st_BreakStmt(self, stmt):
        site = _site(stmt.loc)
        if not self.loops:
            # Outside any loop: the interpreter lets the signal escape.
            self.flush()
            def op(st):
                _tick(st, site)
                raise BreakSignal()
            self.ops.append(op)
            return
        brk, _cont, loop_depth = self.loops[-1]
        self._buffer_scoped_jump(site, self.depth - loop_depth, brk)

    def _st_ContinueStmt(self, stmt):
        site = _site(stmt.loc)
        if not self.loops:
            self.flush()
            def op(st):
                _tick(st, site)
                raise ContinueSignal()
            self.ops.append(op)
            return
        _brk, cont, loop_depth = self.loops[-1]
        self._buffer_scoped_jump(site, self.depth - loop_depth, cont)

    def _buffer_scoped_jump(self, site, k: int, label: _Label) -> None:
        """break/continue: tick, pop *k* scopes, jump — as a region tail."""
        if k:
            def work(st):
                for _ in range(k):
                    _exit_scope(st)
            def slow_body(st):
                _tick(st, site)
                for _ in range(k):
                    _exit_scope(st)
        else:
            work = None
            def slow_body(st):
                _tick(st, site)
        self.buffer_fused(work, [site], slow_body)
        self.flush(jump_label=label)

    def _st_EmptyStmt(self, stmt):
        site = _site(stmt.loc)
        nxt = len(self.ops) + 1
        def op(st):
            _tick(st, site)
            return nxt
        self.ops.append(op)


_EXPR_MAKERS: Dict[type, Callable] = {
    getattr(ast, name[len("_expr_"):]): fn
    for name, fn in vars(_Compiler).items()
    if name.startswith("_expr_") and hasattr(ast, name[len("_expr_"):])
}

_LV_MAKERS: Dict[type, Callable] = {
    getattr(ast, name[len("_lv_"):]): fn
    for name, fn in vars(_Compiler).items()
    if name.startswith("_lv_") and hasattr(ast, name[len("_lv_"):])
}

_FX_MAKERS: Dict[type, Callable] = {
    getattr(ast, name[len("_fx_"):]): fn
    for name, fn in vars(_Compiler).items()
    if name.startswith("_fx_") and hasattr(ast, name[len("_fx_"):])
}

_FLV_MAKERS: Dict[type, Callable] = {
    getattr(ast, name[len("_flv_"):]): fn
    for name, fn in vars(_Compiler).items()
    if name.startswith("_flv_") and hasattr(ast, name[len("_flv_"):])
}

_STMT_MAKERS: Dict[type, Callable] = {
    getattr(ast, name[len("_st_"):]): fn
    for name, fn in vars(_FnCompiler).items()
    if name.startswith("_st_") and hasattr(ast, name[len("_st_"):])
}

#: Statement makers that manage the fusion buffer themselves — they may
#: merge into a pending region (or flush it at the right label boundary).
#: ``compile_stmt`` flushes before every other statement class.
_BUFFER_AWARE_STMTS = frozenset(
    cls for cls in (
        getattr(ast, name, None)
        for name in ("ExprStmt", "DeclStmt", "CompoundStmt", "WhileStmt",
                     "ForStmt", "ReturnStmt", "BreakStmt", "ContinueStmt")
    ) if cls is not None
)


# ---------------------------------------------------------------------------
# compiled program
# ---------------------------------------------------------------------------


def _finish(st: _State, status: str, exit_code=None, report=None,
            crash_site=None, error=None) -> ExecutionResult:
    # One telemetry touch per run, never per tick (same as Interpreter).
    registry = telemetry.metrics()
    if registry is not None:
        registry.inc("vm.runs")
        registry.inc("vm.steps", st.steps)
    return ExecutionResult(
        status=status, exit_code=exit_code, report=report,
        crash_site=crash_site,
        executed_sites=frozenset(st.executed_sites),
        site_trace=tuple(st.site_trace),
        trace_truncated=st.trace_truncated,
        stdout="".join(st.stdout), steps=st.steps, error=error)


class CompiledProgram:
    """An executable closure-bytecode program.

    Immutable after compilation: each :meth:`run` builds fresh run state, so
    one instance can be cached and shared across clones of the same unit
    (results are process-history independent — addresses come from per-run
    bump allocation, never from Python object identity).
    """

    __slots__ = ("unit", "sema", "_global_setup", "_main", "_n_fused")

    def __init__(self, unit, sema, global_setup, main_code, n_fused=0):
        self.unit = unit
        self.sema = sema
        self._global_setup = global_setup
        self._main = main_code
        self._n_fused = n_fused

    def run(self, runtime: Optional[SanitizerRuntime] = None,
            max_steps: int = DEFAULT_MAX_STEPS,
            profile_collector=None,
            site_callback: Optional[Callable[[tuple[int, int]], None]] = None,
            max_trace_len: int = _MAX_TRACE_LEN,
            call_hook: Optional[Callable[[str], None]] = None) -> ExecutionResult:
        """Execute the program; mirrors ``Interpreter.run`` bit for bit."""
        st = _State(runtime or NullRuntime(), max_steps, profile_collector,
                    site_callback, max_trace_len, call_hook, self._n_fused)
        try:
            self._global_setup(st)
            if self._main is None:
                raise VMFault("program has no main function")
            value = _call(st, self._main, [])
            return _finish(st, "ok", exit_code=value.value & 0xFFFFFFFF)
        except SanitizerAbort as abort:
            site = abort.report.location.site() \
                if abort.report.location.is_known else st.last_site
            return _finish(st, "sanitizer_report", report=abort.report,
                           crash_site=site)
        except ExitSignal as sig:
            return _finish(st, "ok", exit_code=sig.code)
        except ExecutionTimeout:
            return _finish(st, "timeout")
        except (VMFault, RecursionError) as fault:
            return _finish(st, "vm_error", error=str(fault))


class _InterpreterFallback:
    """Degenerate CompiledProgram: delegates to the AST interpreter.

    Used when closure compilation itself overflows the Python stack
    (pathologically nested expressions); results are identical by
    construction, just not faster.
    """

    __slots__ = ("unit", "sema")

    def __init__(self, unit, sema):
        self.unit = unit
        self.sema = sema

    def run(self, runtime=None, max_steps=DEFAULT_MAX_STEPS,
            profile_collector=None, site_callback=None,
            max_trace_len=_MAX_TRACE_LEN, call_hook=None) -> ExecutionResult:
        interp = Interpreter(self.unit, self.sema, runtime=runtime,
                             max_steps=max_steps,
                             profile_collector=profile_collector,
                             site_callback=site_callback,
                             max_trace_len=max_trace_len,
                             call_hook=call_hook)
        return interp.run()


def compile_program(unit: ast.TranslationUnit, sema: SemanticInfo) -> CompiledProgram:
    """Compile *unit* to closure bytecode (one-time cost, reusable runs)."""
    try:
        return _Compiler(unit, sema).compile()
    except RecursionError:
        return _InterpreterFallback(unit, sema)


def run_compiled(unit: ast.TranslationUnit, sema: SemanticInfo,
                 runtime: Optional[SanitizerRuntime] = None,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 profile_collector=None,
                 call_hook: Optional[Callable[[str], None]] = None
                 ) -> ExecutionResult:
    """Convenience wrapper mirroring ``run_program``: compile then run."""
    return compile_program(unit, sema).run(
        runtime=runtime, max_steps=max_steps,
        profile_collector=profile_collector, call_hook=call_hook)
