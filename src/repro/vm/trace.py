"""Execution tracing and the debugger used by crash-site mapping.

The paper uses LLDB's Python API to single-step compiled binaries and record
the source ``(line, offset)`` of every executed instruction (Algorithm 2,
``GetExecutedSites``).  Our VM records the same information natively while
interpreting; the :class:`Debugger` class exposes it through an LLDB-like
stepping interface so the oracle code mirrors the paper's algorithm.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.vm.errors import ExecutionResult


class Debugger:
    """An LLDB-flavoured wrapper over a completed execution trace.

    The debugger "runs" the target binary when :meth:`init` is called (the
    VM interprets the whole program and records the site trace), then
    exposes the recorded instruction stream through ``is_alive`` /
    ``next_instruction`` / ``curr_line`` / ``curr_offset``, mirroring the
    paper's Algorithm 2.
    """

    def __init__(self) -> None:
        self._trace: List[tuple[int, int]] = []
        self._index = 0
        self._result: Optional[ExecutionResult] = None

    def init(self, binary) -> None:
        """Launch *binary* (anything with a ``run()`` returning ExecutionResult)."""
        self._result = binary.run()
        self._trace = list(self._result.site_trace)
        self._index = 0

    @property
    def result(self) -> ExecutionResult:
        if self._result is None:
            raise RuntimeError("Debugger.init() has not been called")
        return self._result

    def is_alive(self) -> bool:
        return self._index < len(self._trace)

    @property
    def curr_line(self) -> int:
        return self._trace[self._index][0]

    @property
    def curr_offset(self) -> int:
        return self._trace[self._index][1]

    def next_instruction(self) -> None:
        self._index += 1


def get_executed_sites(binary) -> List[tuple[int, int]]:
    """Algorithm 2's ``GetExecutedSites``: all executed (line, offset) pairs.

    Uses the :class:`Debugger` stepping interface; the returned list is in
    execution order and may contain duplicates (loops).
    """
    debugger = Debugger()
    debugger.init(binary)
    sites: List[tuple[int, int]] = []
    while debugger.is_alive():
        sites.append((debugger.curr_line, debugger.curr_offset))
        debugger.next_instruction()
    return sites


def crash_site_of(result: ExecutionResult) -> Optional[tuple[int, int]]:
    """The crash site of a run, or None if the run did not crash."""
    if not result.crashed:
        return None
    if result.crash_site is not None:
        return result.crash_site
    if result.site_trace:
        return result.site_trace[-1]
    return None


def sites_cover(result: ExecutionResult, site: tuple[int, int]) -> bool:
    """True if *site* was executed during *result*'s run."""
    return site in result.executed_sites


def format_trace(sites: Sequence[tuple[int, int]], limit: int = 20) -> str:
    """Human-readable rendering of the tail of a site trace."""
    tail = list(sites)[-limit:]
    return " -> ".join(f"{line}:{col}" for line, col in tail)
