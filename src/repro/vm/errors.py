"""Runtime artifacts of program execution: sanitizer reports and signals.

The :class:`SanitizerReport` lives here (rather than in
:mod:`repro.sanitizers`) because it is produced *at run time* by the VM when
an inserted check fires; the sanitizer passes and runtimes depend on the VM,
not the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cdsl.source import SourceLocation


@dataclass
class SanitizerReport:
    """What a sanitizer prints when a check fires (and aborts the process).

    ``sanitizer`` is one of ``"asan"``, ``"ubsan"``, ``"msan"``;
    ``kind`` is the report headline, e.g. ``"stack-buffer-overflow"``,
    ``"signed-integer-overflow"``, ``"use-of-uninitialized-value"``.
    """

    sanitizer: str
    kind: str
    location: SourceLocation
    message: str = ""
    details: dict = field(default_factory=dict)

    def summary(self) -> str:
        return (f"=={self.sanitizer.upper()}== ERROR: {self.kind} "
                f"at {self.location} {self.message}".rstrip())


class ControlFlowSignal(Exception):
    """Base class for interpreter-internal non-error control flow."""


class BreakSignal(ControlFlowSignal):
    pass


class ContinueSignal(ControlFlowSignal):
    pass


class ReturnSignal(ControlFlowSignal):
    def __init__(self, value) -> None:
        super().__init__()
        self.value = value


class ExitSignal(ControlFlowSignal):
    """Raised by the ``exit()`` builtin."""

    def __init__(self, code: int) -> None:
        super().__init__()
        self.code = code


class SanitizerAbort(Exception):
    """Raised when a sanitizer check fires; carries the report."""

    def __init__(self, report: SanitizerReport) -> None:
        super().__init__(report.summary())
        self.report = report


class ExecutionTimeout(Exception):
    """Raised when the step budget of an execution is exhausted."""

    def __init__(self, steps: int) -> None:
        super().__init__(f"execution exceeded {steps} steps")
        self.steps = steps


class VMFault(Exception):
    """An internal VM error (a bug in the toolchain, not in the program)."""


@dataclass
class ExecutionResult:
    """Outcome of running a compiled binary on the VM.

    ``status`` is one of ``"ok"``, ``"sanitizer_report"``, ``"timeout"`` or
    ``"vm_error"``.  ``crash_site`` is the ``(line, offset)`` of the last
    executed source site when the run aborted with a sanitizer report.
    ``trace_truncated`` is set when ``site_trace`` hit the recording cap, in
    which case its tail is *not* the last executed site (``executed_sites``
    and ``crash_site`` stay complete); the crash-site oracle treats such
    traces conservatively.
    """

    status: str
    exit_code: Optional[int] = None
    report: Optional[SanitizerReport] = None
    crash_site: Optional[tuple[int, int]] = None
    executed_sites: frozenset = frozenset()
    site_trace: tuple = ()
    trace_truncated: bool = False
    stdout: str = ""
    steps: int = 0
    error: Optional[str] = None

    @property
    def crashed(self) -> bool:
        return self.status == "sanitizer_report"

    @property
    def exited_normally(self) -> bool:
        return self.status == "ok"
