"""The execution substrate: flat memory, interpreter, tracing, profiling,
closure-bytecode compilation and batched execution."""

from repro.vm.batch import BatchStats, run_binaries, run_many
from repro.vm.compile import CompiledProgram, compile_program, run_compiled
from repro.vm.errors import (
    ExecutionResult,
    ExecutionTimeout,
    SanitizerAbort,
    SanitizerReport,
    VMFault,
)
from repro.vm.interpreter import (
    DEFAULT_MAX_STEPS,
    Interpreter,
    NullRuntime,
    SanitizerRuntime,
    run_program,
)
from repro.vm.memory import GUARD_GAP, Memory, MemoryObject
from repro.vm.profiler import ObservedBuffer, ProfileCollector, ValueObservation
from repro.vm.trace import Debugger, crash_site_of, get_executed_sites, sites_cover
from repro.vm.values import RuntimeValue, coerce, make_value

__all__ = [
    "BatchStats",
    "run_binaries",
    "run_many",
    "CompiledProgram",
    "compile_program",
    "run_compiled",
    "ExecutionResult",
    "ExecutionTimeout",
    "SanitizerAbort",
    "SanitizerReport",
    "VMFault",
    "DEFAULT_MAX_STEPS",
    "Interpreter",
    "NullRuntime",
    "SanitizerRuntime",
    "run_program",
    "GUARD_GAP",
    "Memory",
    "MemoryObject",
    "ObservedBuffer",
    "ProfileCollector",
    "ValueObservation",
    "Debugger",
    "crash_site_of",
    "get_executed_sites",
    "sites_cover",
    "RuntimeValue",
    "coerce",
    "make_value",
]
