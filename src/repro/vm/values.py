"""Runtime values.

Scalars (integers and pointers) are represented as a small
:class:`RuntimeValue` carrying the integer payload and an *uninitialized*
taint bit.  The taint bit is the VM-level substrate that MemorySanitizer
builds on: reads of never-written memory produce tainted values, arithmetic
propagates taint, and the MSan check inserted at branches reports when a
tainted value influences control flow (paper Table 1, "Use of Uninit.
Memory").
"""

from __future__ import annotations

from repro.cdsl import ctypes_ as ct

#: The deterministic byte pattern returned when reading memory that was
#: never written.  Using a non-zero pattern mimics real stack garbage and
#: keeps uninitialised branches observable.
UNINIT_BYTE = 0xAA


class RuntimeValue:
    """An integer or pointer value plus its uninitialized-taint bit.

    Immutable by convention (nothing in the VM writes to an existing
    instance, which lets hot paths share pooled instances).  A hand-written
    ``__slots__`` class rather than a frozen dataclass: the VM constructs
    one of these for every non-pooled intermediate value, and the frozen
    ``object.__setattr__`` path costs ~2x a plain slot store per field.
    """

    __slots__ = ("value", "tainted")

    def __init__(self, value: int, tainted: bool = False):
        self.value = value
        self.tainted = tainted

    def with_value(self, value: int) -> "RuntimeValue":
        return RuntimeValue(value, self.tainted)

    def __int__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        if other.__class__ is RuntimeValue:
            return self.value == other.value and self.tainted == other.tainted
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.tainted))

    def __repr__(self) -> str:
        return f"RuntimeValue(value={self.value!r}, tainted={self.tainted!r})"

    @property
    def is_true(self) -> bool:
        return self.value != 0


ZERO = RuntimeValue(0)
ONE = RuntimeValue(1)


def make_value(value: int, tainted: bool = False) -> RuntimeValue:
    return RuntimeValue(value, tainted)


def coerce(value: RuntimeValue, ctype: ct.CType) -> RuntimeValue:
    """Convert *value* to *ctype* the way a store/cast would (wrapping)."""
    if isinstance(ctype, ct.IntType):
        return RuntimeValue(ctype.wrap(value.value), value.tainted)
    if isinstance(ctype, (ct.PointerType, ct.ArrayType, ct.FunctionType)):
        return RuntimeValue(value.value & ((1 << 64) - 1), value.tainted)
    return value


def combine_taint(*values: RuntimeValue) -> bool:
    return any(v.tainted for v in values)


def int_from_bytes(data: bytes, signed: bool) -> int:
    return int.from_bytes(data, "little", signed=signed)


def int_to_bytes(value: int, size: int) -> bytes:
    mask = (1 << (8 * size)) - 1
    return (value & mask).to_bytes(size, "little")
