"""The execution engine (VM) for compiled programs.

The interpreter executes the (possibly optimized and sanitizer-instrumented)
AST directly.  It provides everything the paper's testing loop needs from a
real machine:

* a flat memory model with globals, stack frames and a heap
  (:mod:`repro.vm.memory`),
* benign-by-default undefined behaviour — a missed UB does **not** crash the
  simulated process, it silently reads garbage / wraps / writes into a spill
  area, which is exactly the false-negative situation UBfuzz detects,
* sanitizer checks: :class:`~repro.cdsl.ast_nodes.SanitizerCheck` nodes are
  evaluated by collecting their operands and asking the attached
  :class:`SanitizerRuntime` whether to abort with a report,
* an execution trace of ``(line, offset)`` sites consumed by the crash-site
  mapping oracle, and
* profiling hooks used by the UB program generator (paper §3.2.2).
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional, Protocol

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.sema import SemanticInfo, VarSymbol
from repro.cdsl.source import SourceLocation
from repro.vm.errors import (
    BreakSignal,
    ContinueSignal,
    ExecutionResult,
    ExecutionTimeout,
    ExitSignal,
    ReturnSignal,
    SanitizerAbort,
    SanitizerReport,
    VMFault,
)
from repro.telemetry import runtime as telemetry
from repro.vm.memory import Memory, MemoryObject
from repro.vm.values import RuntimeValue, coerce, make_value

DEFAULT_MAX_STEPS = 200_000
_MAX_CALL_DEPTH = 64
_MAX_TRACE_LEN = 20_000


class SanitizerRuntime(Protocol):
    """The runtime side of a sanitizer, attached to a compiled binary.

    The concrete implementations live in :mod:`repro.sanitizers`; the VM only
    relies on this protocol so the dependency points from sanitizers to the
    VM and not the other way around.
    """

    def attach(self, memory: Memory) -> None: ...

    def on_alloc(self, memory: Memory, obj: MemoryObject) -> None: ...

    def on_free(self, memory: Memory, obj: MemoryObject) -> None: ...

    def on_scope_enter(self, memory: Memory, obj: MemoryObject) -> None: ...

    def on_scope_exit(self, memory: Memory, obj: MemoryObject) -> None: ...

    def check(self, kind: str, detail: dict, operands: dict,
              memory: Memory, loc: SourceLocation) -> Optional[SanitizerReport]: ...


class NullRuntime:
    """A no-op sanitizer runtime used for binaries built without -fsanitize."""

    def attach(self, memory: Memory) -> None:
        return None

    def on_alloc(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_free(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_scope_enter(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_scope_exit(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def check(self, kind: str, detail: dict, operands: dict,
              memory: Memory, loc: SourceLocation) -> Optional[SanitizerReport]:
        return None


class Frame:
    """One function activation: maps symbol uid -> MemoryObject."""

    _counter = 0

    def __init__(self, function: ast.FunctionDecl) -> None:
        Frame._counter += 1
        self.frame_id = Frame._counter
        self.function = function
        self.slots: Dict[int, MemoryObject] = {}
        self.decl_slots: Dict[int, MemoryObject] = {}


class Interpreter:
    """Executes one program.  Create a fresh instance per run."""

    def __init__(self, unit: ast.TranslationUnit, sema: SemanticInfo,
                 runtime: Optional[SanitizerRuntime] = None,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 profile_collector=None,
                 site_callback: Optional[Callable[[tuple[int, int]], None]] = None,
                 max_trace_len: int = _MAX_TRACE_LEN,
                 call_hook: Optional[Callable[[str], None]] = None) -> None:
        self.unit = unit
        self.sema = sema
        self.runtime = runtime or NullRuntime()
        self.max_steps = max_steps
        self.profile_collector = profile_collector
        self.site_callback = site_callback
        self.max_trace_len = max_trace_len
        self.call_hook = call_hook

        self.memory = Memory()
        self.runtime.attach(self.memory)
        self.globals: Dict[int, MemoryObject] = {}
        self.frames: List[Frame] = []
        self._scope_stack: List[List[MemoryObject]] = []
        self._strings: Dict[int, str] = {}
        self._string_keys: Dict[str, int] = {}
        self.stdout: List[str] = []
        self.steps = 0
        self.executed_sites: set[tuple[int, int]] = set()
        self.site_trace: List[tuple[int, int]] = []
        self.trace_truncated = False
        self.last_site: Optional[tuple[int, int]] = None
        # Per-run evaluator caches (precomputed values keyed by node id;
        # node ids are unique within one translation unit and the annotated
        # types never change during a run).
        self._const_cache: Dict[int, RuntimeValue] = {}
        self._binop_type_cache: Dict[int, tuple] = {}

        if profile_collector is not None:
            self.memory.alloc_hooks.append(profile_collector.on_alloc)
            self.memory.free_hooks.append(profile_collector.on_free)

    # ------------------------------------------------------------------ run

    def run(self) -> ExecutionResult:
        """Execute the program's ``main`` and return the outcome."""
        try:
            self._setup_globals()
            main = self.unit.function_named("main")
            if main is None or main.body is None:
                raise VMFault("program has no main function")
            value = self._call_function(main, [])
            return self._result("ok", exit_code=int(value) & 0xFFFFFFFF)
        except SanitizerAbort as abort:
            site = abort.report.location.site() if abort.report.location.is_known \
                else self.last_site
            return self._result("sanitizer_report", report=abort.report,
                                crash_site=site)
        except ExitSignal as sig:
            return self._result("ok", exit_code=sig.code)
        except ExecutionTimeout:
            return self._result("timeout")
        except (VMFault, RecursionError) as fault:
            return self._result("vm_error", error=str(fault))

    def _result(self, status: str, exit_code: Optional[int] = None,
                report: Optional[SanitizerReport] = None,
                crash_site: Optional[tuple[int, int]] = None,
                error: Optional[str] = None) -> ExecutionResult:
        # One telemetry touch per run, never per tick: the VM hot loop must
        # stay instrumentation-free (the nullable fast-path rule).
        registry = telemetry.metrics()
        if registry is not None:
            registry.inc("vm.runs")
            registry.inc("vm.steps", self.steps)
        return ExecutionResult(
            status=status, exit_code=exit_code, report=report,
            crash_site=crash_site,
            executed_sites=frozenset(self.executed_sites),
            site_trace=tuple(self.site_trace),
            trace_truncated=self.trace_truncated,
            stdout="".join(self.stdout), steps=self.steps, error=error)

    # --------------------------------------------------------------- setup

    def _setup_globals(self) -> None:
        # Two phases: allocate all globals first (so initializers may take
        # the address of globals declared later), then run initializers in
        # declaration order.
        pending: List[ast.VarDecl] = []
        for decl in self.unit.globals:
            symbol = decl.symbol
            if symbol is None:
                raise VMFault(f"global {decl.name!r} was not analysed")
            obj = self.memory.allocate(
                symbol.ctype.sizeof(), "global", decl.name, symbol.ctype,
                zero_init=True)
            self.globals[symbol.uid] = obj
            self.runtime.on_alloc(self.memory, obj)
            pending.append(decl)
        for decl in pending:
            if decl.init is not None:
                obj = self.globals[decl.symbol.uid]
                self._store_initializer(obj.base, decl.symbol.ctype, decl.init)

    # --------------------------------------------------------------- frames

    @property
    def frame(self) -> Frame:
        if not self.frames:
            raise VMFault("no active frame")
        return self.frames[-1]

    def _call_function(self, fn: ast.FunctionDecl, args: List[RuntimeValue]) -> RuntimeValue:
        if len(self.frames) >= _MAX_CALL_DEPTH:
            raise VMFault("call depth limit exceeded")
        frame = Frame(fn)
        self.frames.append(frame)
        try:
            for i, param in enumerate(fn.params):
                symbol = param.symbol
                obj = self.memory.allocate(symbol.ctype.sizeof(), "stack",
                                           param.name, symbol.ctype,
                                           frame_id=frame.frame_id)
                self.runtime.on_alloc(self.memory, obj)
                frame.slots[symbol.uid] = obj
                value = args[i] if i < len(args) else make_value(0)
                self._write_value(obj.base, symbol.ctype, value)
            try:
                self._exec_stmt(fn.body)
            except ReturnSignal as ret:
                return ret.value if ret.value is not None else make_value(0)
            return make_value(0)
        finally:
            self.frames.pop()

    # ----------------------------------------------------------- statements

    def _tick(self, loc: SourceLocation) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ExecutionTimeout(self.max_steps)
        if loc.line > 0:
            site = (loc.line, loc.col)
            self.last_site = site
            self.executed_sites.add(site)
            trace = self.site_trace
            if len(trace) < self.max_trace_len:
                trace.append(site)
            else:
                self.trace_truncated = True
            if self.site_callback is not None:
                self.site_callback(site)

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        self._tick(stmt.loc)
        handler = _STMT_DISPATCH.get(stmt.__class__)
        if handler is None:
            raise VMFault(f"cannot execute statement {type(stmt).__name__}")
        handler(self, stmt)

    def _exec_DeclStmt(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            self._exec_decl(decl)

    def _exec_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self._eval(stmt.expr)

    def _exec_IfStmt(self, stmt: ast.IfStmt) -> None:
        cond = self._eval(stmt.cond)
        if cond.is_true:
            self._exec_stmt(stmt.then)
        elif stmt.otherwise is not None:
            self._exec_stmt(stmt.otherwise)

    def _exec_WhileStmt(self, stmt: ast.WhileStmt) -> None:
        while True:
            self._tick(stmt.loc)
            if not self._eval(stmt.cond).is_true:
                break
            try:
                self._exec_stmt(stmt.body)
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def _exec_ReturnStmt(self, stmt: ast.ReturnStmt) -> None:
        value = self._eval(stmt.value) if stmt.value is not None else None
        raise ReturnSignal(value)

    def _exec_BreakStmt(self, stmt: ast.BreakStmt) -> None:
        raise BreakSignal()

    def _exec_ContinueStmt(self, stmt: ast.ContinueStmt) -> None:
        raise ContinueSignal()

    def _exec_EmptyStmt(self, stmt: ast.EmptyStmt) -> None:
        return None

    def _exec_compound(self, block: ast.CompoundStmt) -> None:
        self._scope_stack.append([])
        try:
            for stmt in block.stmts:
                self._exec_stmt(stmt)
        finally:
            self._exit_scope()

    def _exec_for(self, stmt: ast.ForStmt) -> None:
        # The for-init declaration lives in its own scope enclosing the body.
        self._scope_stack.append([])
        try:
            if isinstance(stmt.init, ast.Stmt):
                self._exec_stmt(stmt.init)
            elif isinstance(stmt.init, ast.Expr):
                self._eval(stmt.init)
            while True:
                self._tick(stmt.loc)
                if stmt.cond is not None and not self._eval(stmt.cond).is_true:
                    break
                try:
                    self._exec_stmt(stmt.body)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step)
        finally:
            self._exit_scope()

    def _exit_scope(self) -> None:
        for obj in self._scope_stack.pop():
            self.memory.mark_scope_dead(obj)
            self.runtime.on_scope_exit(self.memory, obj)

    def _exec_decl(self, decl: ast.VarDecl) -> None:
        symbol = decl.symbol
        if symbol is None:
            raise VMFault(f"local {decl.name!r} was not analysed")
        frame = self.frame
        existing = frame.decl_slots.get(decl.node_id)
        if existing is not None:
            # Re-execution of the same declaration (a loop iteration):
            # reuse the slot, which models C's fixed stack layout.
            obj = existing
            self.memory.revive_for_scope(obj)
            self.runtime.on_scope_enter(self.memory, obj)
        else:
            obj = self.memory.allocate(symbol.ctype.sizeof(), "stack",
                                       decl.name, symbol.ctype,
                                       scope_id=symbol.scope.scope_id,
                                       frame_id=frame.frame_id)
            self.runtime.on_alloc(self.memory, obj)
            frame.decl_slots[decl.node_id] = obj
        frame.slots[symbol.uid] = obj
        self._register_scope_object(decl, obj)
        if decl.init is not None:
            self._store_initializer(obj.base, symbol.ctype, decl.init)

    def _register_scope_object(self, decl: ast.VarDecl, obj: MemoryObject) -> None:
        # Attach the object to the innermost executing block, whose exit
        # marks it dead (use-after-scope substrate).
        if self._scope_stack:
            self._scope_stack[-1].append(obj)

    # -- initializers --------------------------------------------------------

    def _store_initializer(self, addr: int, ctype: ct.CType, init: ast.Node) -> None:
        if isinstance(init, ast.InitList):
            if isinstance(ctype, ct.ArrayType):
                elem_size = ctype.element.sizeof()
                for i in range(ctype.length):
                    if i < len(init.items):
                        self._store_initializer(addr + i * elem_size,
                                                ctype.element, init.items[i])
                    else:
                        self._write_value(addr + i * elem_size, ctype.element,
                                          make_value(0))
            elif isinstance(ctype, ct.StructType):
                for i, field in enumerate(ctype.fields):
                    if i < len(init.items):
                        self._store_initializer(addr + field.offset,
                                                field.ctype, init.items[i])
                    else:
                        self._write_value(addr + field.offset, field.ctype,
                                          make_value(0))
            else:
                value = self._eval(init.items[0]) if init.items else make_value(0)
                self._write_value(addr, ctype, value)
        else:
            value = self._eval(init)
            self._write_value(addr, ctype, coerce(value, ctype))

    # --------------------------------------------------------------- memory

    def _write_value(self, addr: int, ctype: ct.CType, value: RuntimeValue) -> None:
        size = ctype.sizeof() if not isinstance(ctype, ct.ArrayType) else 8
        if isinstance(ctype, ct.ArrayType):
            # Storing "an array" only happens for pointer-decayed contexts.
            size = 8
        self.memory.write_int(addr, size, value.value)
        self.memory.mark_initialized(addr, size, initialized=not value.tainted)

    def _read_value(self, addr: int, ctype: ct.CType) -> RuntimeValue:
        if isinstance(ctype, ct.ArrayType):
            # Reading an array lvalue yields its address (decay).
            return make_value(addr)
        if isinstance(ctype, ct.StructType):
            # Struct rvalues are represented by their address; struct
            # assignment is handled as a byte copy in _assign.
            return make_value(addr)
        size = ctype.sizeof()
        signed = isinstance(ctype, ct.IntType) and ctype.signed
        raw, tainted = self.memory.read_int(addr, size, signed)
        return RuntimeValue(raw, tainted)

    # ---------------------------------------------------------- expressions

    def _eval(self, expr: ast.Expr) -> RuntimeValue:
        self._tick(expr.loc)
        handler = _EXPR_DISPATCH.get(expr.__class__)
        if handler is None:
            raise VMFault(f"cannot evaluate {type(expr).__name__}")
        return handler(self, expr)

    def _eval_IntLiteral(self, expr: ast.IntLiteral) -> RuntimeValue:
        # RuntimeValue is immutable, so the same literal node can hand out
        # one precomputed value for every evaluation of this run.
        value = self._const_cache.get(expr.node_id)
        if value is None:
            value = make_value(expr.value)
            self._const_cache[expr.node_id] = value
        return value

    def _eval_StringLiteral(self, expr: ast.StringLiteral) -> RuntimeValue:
        # String literals are only used as printf formats; intern them as
        # pseudo-addresses the printf builtin can map back to text.
        key = self._intern_string(expr.value)
        return make_value(key)

    def _intern_string(self, text: str) -> int:
        addr = self._string_keys.get(text)
        if addr is None:
            addr = 0x7000_0000 + len(self._strings) * 0x100
            self._strings[addr] = text
            self._string_keys[text] = addr
        return addr

    def _eval_Identifier(self, expr: ast.Identifier) -> RuntimeValue:
        addr, ctype = self._lvalue(expr)
        return self._read_value(addr, ctype)

    def _eval_BinaryOp(self, expr: ast.BinaryOp) -> RuntimeValue:
        op = expr.op
        if op == "&&":
            lhs = self._eval(expr.lhs)
            if not lhs.is_true:
                return RuntimeValue(0, lhs.tainted)
            rhs = self._eval(expr.rhs)
            return RuntimeValue(1 if rhs.is_true else 0, lhs.tainted or rhs.tainted)
        if op == "||":
            lhs = self._eval(expr.lhs)
            if lhs.is_true:
                return RuntimeValue(1, lhs.tainted)
            rhs = self._eval(expr.rhs)
            return RuntimeValue(1 if rhs.is_true else 0, lhs.tainted or rhs.tainted)
        lhs = self._eval(expr.lhs)
        rhs = self._eval(expr.rhs)
        return self._apply_binary(expr, op, lhs, rhs)

    def _binop_types(self, expr: ast.Expr):
        """(lhs type, rhs type, result type) of a binary node, memoized: the
        annotated types are fixed for the duration of one run."""
        cached = self._binop_type_cache.get(expr.node_id)
        if cached is None:
            cached = (_operand_type(expr, "lhs"), _operand_type(expr, "rhs"),
                      expr.ctype if isinstance(expr.ctype, ct.IntType) else ct.INT)
            self._binop_type_cache[expr.node_id] = cached
        return cached

    def _apply_binary(self, expr: ast.Expr, op: str, lhs: RuntimeValue,
                      rhs: RuntimeValue) -> RuntimeValue:
        tainted = lhs.tainted or rhs.tainted
        lhs_type, rhs_type, result_type = self._binop_types(expr)

        # Pointer arithmetic.
        if isinstance(lhs_type, (ct.PointerType, ct.ArrayType)) and op in ("+", "-"):
            elem = _pointee_size(lhs_type)
            if isinstance(rhs_type, (ct.PointerType, ct.ArrayType)) and op == "-":
                return RuntimeValue((lhs.value - rhs.value) // max(1, elem), tainted)
            offset = rhs.value * elem
            value = lhs.value + offset if op == "+" else lhs.value - offset
            return RuntimeValue(value, tainted)
        if isinstance(rhs_type, (ct.PointerType, ct.ArrayType)) and op == "+":
            elem = _pointee_size(rhs_type)
            return RuntimeValue(rhs.value + lhs.value * elem, tainted)

        a, b = lhs.value, rhs.value
        func = _INT_BINOPS.get(op)
        if func is not None:
            raw = func(a, b)
        elif op == "<<" or op == ">>":
            if b >= 0:
                bits = max(1, _bits_of(result_type))
                raw = a << (b % bits) if op == "<<" else a >> (b % bits)
            else:
                raw = a
        elif op in _COMPARE_OPS:
            return RuntimeValue(int(_COMPARE_OPS[op](a, b)), tainted)
        else:
            raise VMFault(f"unsupported binary operator {op!r}")
        wrapped = result_type.wrap(raw) if isinstance(result_type, ct.IntType) else raw
        return RuntimeValue(wrapped, tainted)

    def _eval_UnaryOp(self, expr: ast.UnaryOp) -> RuntimeValue:
        operand = self._eval(expr.operand)
        result_type = expr.ctype if isinstance(expr.ctype, ct.IntType) else ct.INT
        if expr.op == "-":
            return RuntimeValue(result_type.wrap(-operand.value), operand.tainted)
        if expr.op == "+":
            return RuntimeValue(result_type.wrap(operand.value), operand.tainted)
        if expr.op == "!":
            return RuntimeValue(0 if operand.is_true else 1, operand.tainted)
        if expr.op == "~":
            return RuntimeValue(result_type.wrap(~operand.value), operand.tainted)
        raise VMFault(f"unsupported unary operator {expr.op!r}")

    def _eval_IncDec(self, expr: ast.IncDec) -> RuntimeValue:
        addr, ctype = self._lvalue(expr.operand)
        old = self._read_value(addr, ctype)
        delta = 1
        if isinstance(ctype, ct.PointerType):
            delta = max(1, ctype.pointee.sizeof())
        new_raw = old.value + delta if expr.op == "++" else old.value - delta
        new = coerce(RuntimeValue(new_raw, old.tainted), ctype)
        self._write_value(addr, ctype, new)
        return new if expr.is_prefix else old

    def _eval_Assignment(self, expr: ast.Assignment) -> RuntimeValue:
        target_type = expr.target.ctype or ct.INT
        if isinstance(target_type, ct.StructType):
            return self._assign_struct(expr)
        if expr.op == "=":
            value = self._eval(expr.value)
        else:
            # Compound assignment: read-modify-write.
            current_addr, current_type = self._lvalue(expr.target)
            current = self._read_value(current_addr, current_type)
            rhs = self._eval(expr.value)
            op = expr.op[:-1]
            value = self._apply_binary(expr, op, current, rhs)
            value = coerce(value, current_type)
            self._write_value(current_addr, current_type, value)
            return value
        addr, ctype = self._lvalue(expr.target)
        value = coerce(value, ctype)
        self._write_value(addr, ctype, value)
        return value

    def _assign_struct(self, expr: ast.Assignment) -> RuntimeValue:
        dst_addr, dst_type = self._lvalue(expr.target)
        src_addr, _src_type = self._lvalue(expr.value)
        size = dst_type.sizeof()
        data, tainted = self.memory.read_bytes(src_addr, size)
        self.memory.write_bytes(dst_addr, data)
        if tainted:
            self.memory.mark_initialized(dst_addr, size, initialized=False)
        return make_value(dst_addr)

    def _eval_ArraySubscript(self, expr: ast.ArraySubscript) -> RuntimeValue:
        addr, ctype = self._lvalue(expr)
        return self._read_value(addr, ctype)

    def _eval_Deref(self, expr: ast.Deref) -> RuntimeValue:
        addr, ctype = self._lvalue(expr)
        return self._read_value(addr, ctype)

    def _eval_MemberAccess(self, expr: ast.MemberAccess) -> RuntimeValue:
        addr, ctype = self._lvalue(expr)
        return self._read_value(addr, ctype)

    def _eval_AddressOf(self, expr: ast.AddressOf) -> RuntimeValue:
        addr, _ctype = self._lvalue(expr.operand)
        return make_value(addr)

    def _eval_Cast(self, expr: ast.Cast) -> RuntimeValue:
        value = self._eval(expr.operand)
        return coerce(value, expr.target_type)

    def _eval_Conditional(self, expr: ast.Conditional) -> RuntimeValue:
        cond = self._eval(expr.cond)
        if cond.is_true:
            return self._eval(expr.then)
        return self._eval(expr.otherwise)

    def _eval_CommaExpr(self, expr: ast.CommaExpr) -> RuntimeValue:
        value = make_value(0)
        for part in expr.parts:
            value = self._eval(part)
        return value

    def _eval_SizeofExpr(self, expr: ast.SizeofExpr) -> RuntimeValue:
        if expr.target_type is not None:
            return make_value(expr.target_type.sizeof())
        ctype = expr.operand.ctype if expr.operand is not None else None
        return make_value(ctype.sizeof() if ctype is not None else 1)

    def _eval_Call(self, expr: ast.Call) -> RuntimeValue:
        fn = self.unit.function_named(expr.name)
        if fn is not None and fn.body is not None:
            args = [self._eval(a) for a in expr.args]
            coerced = []
            for i, param in enumerate(fn.params):
                value = args[i] if i < len(args) else make_value(0)
                coerced.append(coerce(value, param.ctype))
            return self._call_function(fn, coerced)
        return self._call_builtin(expr)

    # -- compiler-inserted nodes ----------------------------------------------

    def _eval_ProfileHook(self, expr: ast.ProfileHook) -> RuntimeValue:
        value = self._eval(expr.inner)
        if self.profile_collector is not None:
            self.profile_collector.record_value(expr.key, expr.inner, value,
                                                self.memory)
        return value

    def _eval_SanitizerCheck(self, expr: ast.SanitizerCheck) -> RuntimeValue:
        kind = expr.kind
        if kind.startswith("asan_access"):
            addr, ctype = self._lvalue(expr)  # lvalue path runs the check
            return self._read_value(addr, ctype)
        if kind in ("ubsan_arith", "ubsan_shift", "ubsan_div"):
            inner = expr.inner
            if not isinstance(inner, ast.BinaryOp):
                return self._eval(inner)
            lhs = self._eval(inner.lhs)
            rhs = self._eval(inner.rhs)
            operands = {"lhs": lhs.value, "rhs": rhs.value, "op": inner.op,
                        "ctype": inner.ctype}
            self._run_check(expr, operands)
            return self._apply_binary(inner, inner.op, lhs, rhs)
        if kind == "ubsan_null":
            # Inner is a memory access through a pointer.
            addr, ctype = self._lvalue(expr)
            return self._read_value(addr, ctype)
        if kind == "ubsan_bounds":
            addr, ctype = self._lvalue(expr)
            return self._read_value(addr, ctype)
        if kind == "msan_use":
            value = self._eval(expr.inner)
            self._run_check(expr, {"tainted": value.tainted, "value": value.value})
            return value
        # Unknown check kinds are transparent.
        return self._eval(expr.inner)

    def _run_check(self, check: ast.SanitizerCheck, operands: dict) -> None:
        loc = check.loc if check.loc.is_known else check.inner.loc
        report = self.runtime.check(check.kind, check.detail, operands,
                                    self.memory, loc)
        if report is not None:
            raise SanitizerAbort(report)

    # --------------------------------------------------------------- lvalues

    def _lvalue(self, expr: ast.Expr) -> tuple[int, ct.CType]:
        """Evaluate *expr* as an lvalue: return (address, object type)."""
        self._tick(expr.loc)
        handler = _LVALUE_DISPATCH.get(expr.__class__)
        if handler is None:
            raise VMFault(f"expression {type(expr).__name__} is not an lvalue")
        return handler(self, expr)

    def _lvalue_Identifier(self, expr: ast.Identifier) -> tuple[int, ct.CType]:
        symbol = expr.symbol
        if symbol is None:
            raise VMFault(f"unresolved identifier {expr.name!r}")
        obj = self._object_for(symbol)
        return obj.base, symbol.ctype

    def _lvalue_Deref(self, expr: ast.Deref) -> tuple[int, ct.CType]:
        pointer = self._eval(expr.pointer)
        ctype = expr.ctype or _pointee_type(expr.pointer) or ct.INT
        return pointer.value, ctype

    def _lvalue_ArraySubscript(self, expr: ast.ArraySubscript) -> tuple[int, ct.CType]:
        base_type = ct.decay(expr.base.ctype) if expr.base.ctype else None
        base = self._eval(expr.base)
        index = self._eval(expr.index)
        elem = base_type.pointee if isinstance(base_type, ct.PointerType) else (expr.ctype or ct.INT)
        return base.value + index.value * max(1, elem.sizeof()), elem

    def _lvalue_MemberAccess(self, expr: ast.MemberAccess) -> tuple[int, ct.CType]:
        if expr.arrow:
            base = self._eval(expr.base)
            base_addr = base.value
            struct_type = ct.decay(expr.base.ctype).pointee \
                if expr.base.ctype and ct.decay(expr.base.ctype).is_pointer else None
        else:
            base_addr, struct_type = self._lvalue(expr.base)
        if not isinstance(struct_type, ct.StructType):
            # Fall back to the annotated type of the member itself.
            struct_type = None
        field_type = expr.ctype or ct.INT
        offset = 0
        if isinstance(struct_type, ct.StructType):
            field = struct_type.field_named(expr.field)
            if field is not None:
                offset = field.offset
                field_type = field.ctype
        return base_addr + offset, field_type

    def _lvalue_SanitizerCheck(self, expr: ast.SanitizerCheck) -> tuple[int, ct.CType]:
        # Run the access check, then produce the inner lvalue.
        addr, ctype = self._lvalue(expr.inner)
        size = expr.detail.get("size") or (ctype.sizeof() if ctype else 1)
        operands = {"addr": addr, "size": size,
                    "is_write": expr.detail.get("is_write", False)}
        if expr.kind == "ubsan_bounds":
            operands.update(self._bounds_operands(expr))
        self._run_check(expr, operands)
        return addr, ctype

    def _lvalue_ProfileHook(self, expr: ast.ProfileHook) -> tuple[int, ct.CType]:
        addr, ctype = self._lvalue(expr.inner)
        if self.profile_collector is not None:
            self.profile_collector.record_lvalue(expr.key, expr.inner, addr,
                                                 ctype, self.memory)
        return addr, ctype

    def _lvalue_Cast(self, expr: ast.Cast) -> tuple[int, ct.CType]:
        return self._lvalue(expr.operand)

    def _lvalue_CommaExpr(self, expr: ast.CommaExpr) -> tuple[int, ct.CType]:
        if not expr.parts:
            raise VMFault("expression CommaExpr is not an lvalue")
        for part in expr.parts[:-1]:
            self._eval(part)
        return self._lvalue(expr.parts[-1])

    def _bounds_operands(self, check: ast.SanitizerCheck) -> dict:
        inner = check.inner
        operands: dict = {}
        if isinstance(inner, ast.ArraySubscript):
            index = self._eval(inner.index)
            operands["index"] = index.value
            operands["length"] = check.detail.get("length")
        return operands

    def _object_for(self, symbol: VarSymbol) -> MemoryObject:
        if symbol.is_global:
            obj = self.globals.get(symbol.uid)
            if obj is None:
                raise VMFault(f"global {symbol.name!r} has no storage")
            return obj
        for frame in reversed(self.frames):
            if symbol.uid in frame.slots:
                return frame.slots[symbol.uid]
        # A local declared later in the function but referenced before its
        # DeclStmt executed (possible after aggressive code motion): allocate
        # its slot lazily so execution can continue.
        frame = self.frame
        obj = self.memory.allocate(symbol.ctype.sizeof(), "stack", symbol.name,
                                   symbol.ctype, scope_id=symbol.scope.scope_id,
                                   frame_id=frame.frame_id)
        self.runtime.on_alloc(self.memory, obj)
        frame.slots[symbol.uid] = obj
        return obj

    # -------------------------------------------------------------- builtins

    def _call_builtin(self, expr: ast.Call) -> RuntimeValue:
        name = expr.name
        if name in ("printf", "__builtin_printf"):
            return self._builtin_printf(expr)
        if name == "malloc":
            size = self._eval(expr.args[0]).value if expr.args else 0
            obj = self.memory.allocate(max(1, size), "heap", "malloc", None)
            self.runtime.on_alloc(self.memory, obj)
            return make_value(obj.base)
        if name == "calloc":
            count = self._eval(expr.args[0]).value if expr.args else 0
            size = self._eval(expr.args[1]).value if len(expr.args) > 1 else 1
            obj = self.memory.allocate(max(1, count * size), "heap", "calloc",
                                       None, zero_init=True)
            self.runtime.on_alloc(self.memory, obj)
            return make_value(obj.base)
        if name == "free":
            addr = self._eval(expr.args[0]).value if expr.args else 0
            obj = self.memory.free(addr)
            if obj is not None:
                self.runtime.on_free(self.memory, obj)
            return make_value(0)
        if name == "memset":
            if len(expr.args) >= 3:
                addr = self._eval(expr.args[0]).value
                byte = self._eval(expr.args[1]).value & 0xFF
                count = self._eval(expr.args[2]).value
                self.memory.write_bytes(addr, bytes([byte]) * max(0, count))
                return make_value(addr)
            return make_value(0)
        if name == "abort":
            raise ExitSignal(134)
        if name == "exit":
            code = self._eval(expr.args[0]).value if expr.args else 0
            raise ExitSignal(code)
        # Unknown external function: evaluate arguments for their side
        # effects and return 0, like a stub library call.  The call hook
        # observes these by name — the marker-liveness oracle counts every
        # planted marker call the execution actually reaches.
        for arg in expr.args:
            self._eval(arg)
        if self.call_hook is not None:
            self.call_hook(name)
        return make_value(0)

    def _builtin_printf(self, expr: ast.Call) -> RuntimeValue:
        if not expr.args:
            return make_value(0)
        fmt_value = self._eval(expr.args[0])
        fmt = getattr(self, "_strings", {}).get(fmt_value.value, "")
        args = [self._eval(a) for a in expr.args[1:]]
        text = _format_printf(fmt, [a.value for a in args])
        self.stdout.append(text)
        return make_value(len(text))


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------


def _operand_type(expr: ast.Expr, side: str) -> Optional[ct.CType]:
    child = getattr(expr, side, None)
    if isinstance(child, ast.Expr) and child.ctype is not None:
        return ct.decay(child.ctype)
    return None


def _pointee_size(ctype: ct.CType) -> int:
    if isinstance(ctype, ct.PointerType):
        return max(1, ctype.pointee.sizeof())
    if isinstance(ctype, ct.ArrayType):
        return max(1, ctype.element.sizeof())
    return 1


def _pointee_type(pointer_expr: ast.Expr) -> Optional[ct.CType]:
    if pointer_expr.ctype is None:
        return None
    decayed = ct.decay(pointer_expr.ctype)
    if isinstance(decayed, ct.PointerType):
        return decayed.pointee
    return None


def _bits_of(ctype: ct.CType) -> int:
    return ctype.bits if isinstance(ctype, ct.IntType) else 32


def _c_div(a: int, b: int) -> int:
    if b == 0:
        return 0  # benign VM behaviour for the undefined case
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _c_div(a, b) * b


def _compare(op: str, a: int, b: int) -> bool:
    return bool(_COMPARE_OPS[op](a, b))


def _format_printf(fmt: str, args: List[int]) -> str:
    out: List[str] = []
    arg_index = 0
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            if ch == "\\" and i + 1 < len(fmt) and fmt[i + 1] == "n":
                out.append("\n")
                i += 2
                continue
            out.append(ch)
            i += 1
            continue
        # A conversion specification: skip flags/width/length, use the letter.
        j = i + 1
        while j < len(fmt) and fmt[j] in "0123456789.-+ lhz":
            j += 1
        conv = fmt[j] if j < len(fmt) else "%"
        value = args[arg_index] if arg_index < len(args) else 0
        arg_index += 1
        if conv in ("d", "i", "u", "c"):
            out.append(str(value) if conv != "c" else chr(value & 0x7F))
        elif conv == "x":
            out.append(format(value & 0xFFFFFFFFFFFFFFFF, "x"))
        elif conv == "s":
            out.append("")
        elif conv == "%":
            out.append("%")
            arg_index -= 1
        else:
            out.append(str(value))
        i = j + 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Dispatch tables (the VM fast path)
# ---------------------------------------------------------------------------
#
# Statement/expression/lvalue handlers are resolved through per-node-type
# tables built once at import time instead of isinstance chains or getattr
# lookups per node visit.  The handlers themselves are the methods above, so
# trace and sanitizer-hook semantics are bit-identical to the chained form
# (guarded by the determinism tests).

_INT_BINOPS: Dict[str, Callable[[int, int], int]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _c_div,
    "%": _c_mod,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
}

_COMPARE_OPS: Dict[str, Callable[[int, int], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

_STMT_DISPATCH: Dict[type, Callable] = {
    ast.CompoundStmt: Interpreter._exec_compound,
    ast.DeclStmt: Interpreter._exec_DeclStmt,
    ast.ExprStmt: Interpreter._exec_ExprStmt,
    ast.IfStmt: Interpreter._exec_IfStmt,
    ast.WhileStmt: Interpreter._exec_WhileStmt,
    ast.ForStmt: Interpreter._exec_for,
    ast.ReturnStmt: Interpreter._exec_ReturnStmt,
    ast.BreakStmt: Interpreter._exec_BreakStmt,
    ast.ContinueStmt: Interpreter._exec_ContinueStmt,
    ast.EmptyStmt: Interpreter._exec_EmptyStmt,
}

_EXPR_DISPATCH: Dict[type, Callable] = {
    getattr(ast, name[len("_eval_"):]): handler
    for name, handler in vars(Interpreter).items()
    if name.startswith("_eval_") and hasattr(ast, name[len("_eval_"):])
}

_LVALUE_DISPATCH: Dict[type, Callable] = {
    getattr(ast, name[len("_lvalue_"):]): handler
    for name, handler in vars(Interpreter).items()
    if name.startswith("_lvalue_") and hasattr(ast, name[len("_lvalue_"):])
}


def run_program(unit: ast.TranslationUnit, sema: SemanticInfo,
                runtime: Optional[SanitizerRuntime] = None,
                max_steps: int = DEFAULT_MAX_STEPS,
                profile_collector=None,
                call_hook: Optional[Callable[[str], None]] = None
                ) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run the program."""
    interp = Interpreter(unit, sema, runtime=runtime, max_steps=max_steps,
                         profile_collector=profile_collector,
                         call_hook=call_hook)
    return interp.run()
