"""Runtime profile collection (the VM side of paper §3.2.2).

The UB program generator instruments the seed program with
:class:`~repro.cdsl.ast_nodes.ProfileHook` wrappers around every matched
expression and runs it once.  During that run the collector records

* every observed value of each hooked expression (``Q_val``),
* for hooked pointers/arrays, the memory object the value points into
  (``Q_mem``), and
* every allocation and free, giving the buffer ranges and heap state the
  shadow statement synthesiser queries.

The collector is deliberately VM-level (not source-level) so that a single
profiling run serves all UB types, matching the paper's "the profiling
overhead for all UB types is identical" implementation note.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.vm.memory import Memory, MemoryObject
from repro.vm.values import RuntimeValue


@dataclass
class ObservedBuffer:
    """A memory object observation: its range and liveness at access time."""

    name: str
    base: int
    size: int
    kind: str
    freed: bool
    dead: bool
    scope_id: Optional[int]

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class ValueObservation:
    """One dynamic observation of a hooked expression."""

    value: int
    tainted: bool
    address: Optional[int] = None          # lvalue address, when applicable
    buffer: Optional[ObservedBuffer] = None  # object the value points into


@dataclass
class ProfileCollector:
    """Accumulates runtime observations during one profiling run."""

    values: Dict[str, List[ValueObservation]] = field(default_factory=dict)
    allocations: List[ObservedBuffer] = field(default_factory=list)
    freed_addresses: List[int] = field(default_factory=list)

    # -- memory hooks (installed by the interpreter) --------------------------

    def on_alloc(self, obj: MemoryObject) -> None:
        self.allocations.append(_snapshot(obj))

    def on_free(self, obj: MemoryObject) -> None:
        self.freed_addresses.append(obj.base)

    # -- expression hooks ------------------------------------------------------

    def record_value(self, key: str, expr: ast.Expr, value: RuntimeValue,
                     memory: Memory) -> None:
        buffer = None
        if expr.ctype is not None and ct.decay(expr.ctype).is_pointer:
            target = memory.object_at(value.value)
            if target is not None:
                buffer = _snapshot(target)
        self.values.setdefault(key, []).append(
            ValueObservation(value.value, value.tainted, buffer=buffer))

    def record_lvalue(self, key: str, expr: ast.Expr, addr: int,
                      ctype: Optional[ct.CType], memory: Memory) -> None:
        target = memory.object_at(addr)
        buffer = _snapshot(target) if target is not None else None
        self.values.setdefault(key, []).append(
            ValueObservation(addr, False, address=addr, buffer=buffer))

    # -- queries ---------------------------------------------------------------

    def observations(self, key: str) -> List[ValueObservation]:
        return self.values.get(key, [])

    def first_observation(self, key: str) -> Optional[ValueObservation]:
        obs = self.values.get(key)
        return obs[0] if obs else None

    def was_executed(self, key: str) -> bool:
        return key in self.values


def _snapshot(obj: MemoryObject) -> ObservedBuffer:
    return ObservedBuffer(name=obj.name, base=obj.base, size=obj.size,
                          kind=obj.kind, freed=obj.freed, dead=obj.dead,
                          scope_id=obj.scope_id)
