"""The simulated release timeline, as a list of attributable events.

Every behaviour change a bisection can land on corresponds to one *event*
in a compiler's release history:

* a pass starts running (:data:`~repro.optim.pipelines.PASS_INTRODUCED`) —
  code the optimizer used to retain is now eliminated;
* an :class:`~repro.optim.pipelines.OptimizerDefect` window opens or
  closes — a pass stops (and later resumes) running at some levels;
* a seeded sanitizer :class:`~repro.sanitizers.defects.Defect` is
  introduced or fixed — a sanitizer check disappears (and later returns).

:func:`release_timeline` flattens all three sources into a sorted list of
:class:`RevisionEvent`; the bisector looks up the events at the boundary
versions it converges on to name the responsible change, the same way
diopter-style bisection maps a culprit revision back to the commit that
landed there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.compilers.versions import version_label
from repro.optim.pipelines import (DEFAULT_OPTIMIZER_DEFECTS, PASS_INTRODUCED,
                                   OptimizerDefect)
from repro.sanitizers.defects import Defect, default_defects

#: Event kinds.  ``*-introduced`` events make a behaviour appear (a finding
#: becomes reproducible); ``*-fixed`` and ``pass-introduced`` events make it
#: disappear (a pass landing eliminates code / a defect fix restores checks).
PASS_INTRODUCED_EVENT = "pass-introduced"
OPTIMIZER_DEFECT_INTRODUCED = "optimizer-defect-introduced"
OPTIMIZER_DEFECT_FIXED = "optimizer-defect-fixed"
SANITIZER_DEFECT_INTRODUCED = "sanitizer-defect-introduced"
SANITIZER_DEFECT_FIXED = "sanitizer-defect-fixed"

#: Kinds that can explain a behaviour *starting* at a version.
INTRODUCING_KINDS = (OPTIMIZER_DEFECT_INTRODUCED, SANITIZER_DEFECT_INTRODUCED)

#: Kinds that can explain a behaviour *stopping* at a version.
FIXING_KINDS = (OPTIMIZER_DEFECT_FIXED, SANITIZER_DEFECT_FIXED,
                PASS_INTRODUCED_EVENT)


@dataclass(frozen=True)
class RevisionEvent:
    """One attributable change in a compiler's simulated release history.

    ``subject`` names what changed (a pass name or a defect id);
    ``payload`` carries the originating registry object (an
    :class:`~repro.optim.pipelines.OptimizerDefect` or a sanitizer
    :class:`~repro.sanitizers.defects.Defect`, ``None`` for pass
    introductions) so probes can test relevance without re-resolving ids.
    """

    kind: str
    compiler: str
    version: int
    subject: str
    detail: str = ""
    payload: object = field(default=None, compare=False, repr=False)

    @property
    def event_id(self) -> str:
        """Stable content key, e.g. ``sanitizer-defect-fixed:gcc-14:gcc-asan-global-ptr-store``."""
        return f"{self.kind}:{self.compiler}-{self.version}:{self.subject}"

    @property
    def label(self) -> str:
        return f"{self.kind} {self.subject} @ {version_label(self.compiler, self.version)}"


def release_timeline(compiler: str,
                     registry: Optional[Sequence[Defect]] = None,
                     optimizer_defects: Sequence[OptimizerDefect] = DEFAULT_OPTIMIZER_DEFECTS
                     ) -> List[RevisionEvent]:
    """All attributable events of one compiler, sorted by version.

    ``registry`` defaults to the full seeded sanitizer-defect registry;
    pass a custom one to bisect against a reduced ground truth (tests do).
    """
    events: List[RevisionEvent] = []
    for pass_name, version in PASS_INTRODUCED.get(compiler, {}).items():
        events.append(RevisionEvent(
            PASS_INTRODUCED_EVENT, compiler, version, pass_name,
            detail=f"pass {pass_name} first runs in {version_label(compiler, version)}"))
    for defect in optimizer_defects:
        if defect.compiler != compiler:
            continue
        levels = ",".join(defect.opt_levels)
        events.append(RevisionEvent(
            OPTIMIZER_DEFECT_INTRODUCED, compiler, defect.introduced,
            defect.pass_name,
            detail=f"pass {defect.pass_name} stops running at {levels}",
            payload=defect))
        events.append(RevisionEvent(
            OPTIMIZER_DEFECT_FIXED, compiler, defect.fixed, defect.pass_name,
            detail=f"pass {defect.pass_name} resumes at {levels}",
            payload=defect))
    sanitizer_registry = registry if registry is not None else default_defects()
    for defect in sanitizer_registry:
        if defect.compiler != compiler:
            continue
        events.append(RevisionEvent(
            SANITIZER_DEFECT_INTRODUCED, compiler, defect.introduced_version,
            defect.defect_id,
            detail=f"{defect.sanitizer} defect {defect.defect_id} introduced",
            payload=defect))
        if defect.fixed_version is not None:
            events.append(RevisionEvent(
                SANITIZER_DEFECT_FIXED, compiler, defect.fixed_version,
                defect.defect_id,
                detail=f"{defect.sanitizer} defect {defect.defect_id} fixed",
                payload=defect))
    events.sort(key=lambda e: (e.version, e.kind, e.subject))
    return events


def events_at(timeline: Sequence[RevisionEvent], version: int,
              kinds: Optional[Sequence[str]] = None) -> List[RevisionEvent]:
    """The timeline events landing exactly at *version* (optionally by kind)."""
    return [e for e in timeline
            if e.version == version and (kinds is None or e.kind in kinds)]
