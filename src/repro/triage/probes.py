"""Probes: "is the finding's behaviour present at this release?"

A probe is the predicate a :class:`~repro.triage.bisector.RevisionBisector`
drives.  Both kinds compile through the shared
:class:`~repro.compilers.cache.CompilationCache`, so the frontend runs once
per program and each optimizer pipeline once per (version, level) — the
bisection's ``O(log versions)`` probes are each a cheap overlay on cached
phases:

* :class:`CrashProbe` — "bad" means the sanitizer stays *silent* on a UB
  program (the campaign's false-negative signal).  The probe recompiles
  the program for one release with the full defect registry and runs it
  on the compiled VM; the window it bisects is the responsible sanitizer
  defect's active range.
* :class:`MarkerProbe` — "bad" means a semantically dead marker call is
  *retained* by one release's version-aware pipeline (the marker engine's
  missed-optimization / regression signal).  The window is an optimizer
  defect window, or everything before a pass introduction.

Each probe also supplies ``relevant(event)``, the filter the bisector uses
to decide which timeline events may explain that probe's edges.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.compilers.cache import CompilationCache
from repro.compilers.compiler import make_compiler
from repro.compilers.options import CompileOptions
from repro.core.ub_types import UBType, detects
from repro.markers.instrument import MarkedProgram
from repro.markers.oracle import EliminationOracle, MarkerConfig
from repro.optim.pipelines import OptimizerDefect, effective_pass_names
from repro.sanitizers.defects import Defect, default_defects
from repro.triage.events import PASS_INTRODUCED_EVENT, RevisionEvent
from repro.utils.errors import CompilationError

DEFAULT_MAX_STEPS = 200_000


class CrashProbe:
    """Bad ⇔ the sanitizer misses *ub_type* in *source* at a release."""

    def __init__(self, source: str, ub_type: UBType, compiler: str,
                 sanitizer: str, opt_level: str,
                 registry: Optional[Sequence[Defect]] = None,
                 cache: Optional[CompilationCache] = None,
                 vm: str = "compiled",
                 max_steps: int = DEFAULT_MAX_STEPS) -> None:
        self.source = source
        self.ub_type = ub_type
        self.compiler = compiler
        self.sanitizer = sanitizer
        self.opt_level = opt_level
        self.registry = list(registry) if registry is not None else default_defects()
        self.cache = cache if cache is not None else CompilationCache()
        self.vm = vm
        self.max_steps = max_steps

    def __call__(self, version: int) -> bool:
        compiler = make_compiler(self.compiler, version=version,
                                 defect_registry=self.registry,
                                 cache=self.cache)
        try:
            binary = compiler.compile(self.source,
                                      CompileOptions(opt_level=self.opt_level,
                                                     sanitizer=self.sanitizer))
        except CompilationError:
            return False
        result = binary.run(max_steps=self.max_steps, vm=self.vm)
        detected = (result.crashed and result.report is not None
                    and detects(self.ub_type, result.report.kind))
        return not detected

    def relevant(self, event: RevisionEvent) -> bool:
        """Only sanitizer defects matching this probe's sanitizer, level
        and UB type can explain a silent-sanitizer window."""
        defect = event.payload
        if not isinstance(defect, Defect):
            return False
        if defect.sanitizer != self.sanitizer:
            return False
        if defect.opt_levels and self.opt_level not in defect.opt_levels:
            return False
        return any(detects(self.ub_type, kind) for kind in defect.ub_kinds)


class MarkerProbe:
    """Bad ⇔ *marker_name* survives a release's version-aware pipeline."""

    def __init__(self, source: str, marker_name: str, compiler: str,
                 opt_level: str,
                 oracle: Optional[EliminationOracle] = None,
                 cache: Optional[CompilationCache] = None) -> None:
        self.marker_name = marker_name
        self.compiler = compiler
        self.opt_level = opt_level
        self.oracle = oracle if oracle is not None \
            else EliminationOracle(cache=cache)
        # Scanning with the marker's own name as prefix finds exactly it,
        # whatever prefix the original instrumentation used.
        self._marked = MarkedProgram(source=source, base_source=source,
                                     sites=(), prefix=marker_name)

    def __call__(self, version: int) -> bool:
        outcome = self.oracle.compile_one(
            self._marked, MarkerConfig(compiler=self.compiler,
                                       version=version,
                                       opt_level=self.opt_level))
        return self.marker_name in outcome.retained

    def relevant(self, event: RevisionEvent) -> bool:
        """Optimizer-defect windows at this level, and introductions of
        passes that run in this level's pipeline, explain retention."""
        if isinstance(event.payload, OptimizerDefect):
            return self.opt_level in event.payload.opt_levels
        if event.kind == PASS_INTRODUCED_EVENT:
            return event.subject in effective_pass_names(self.compiler,
                                                         self.opt_level)
        return False
