"""Binary search over the simulated release timeline.

Given a *probe* — a predicate ``probe(version) -> bool`` that is ``True``
when the finding's behaviour is present ("bad") at a release — and one
version where the behaviour was observed, :class:`RevisionBisector`
locates the contiguous bad window around the observation with two binary
searches (diopter's ``bisector.py`` does the same over real git revisions):

* the **introducing** edge: the oldest release of the window, reached by
  bisecting between the oldest release (known good, or the window start)
  and the observation;
* the **fixing** edge: the first release after the window, reached by
  bisecting between the observation and the newest release — ``None``
  when the behaviour still reproduces on trunk.

Probe results are memoized per version and counted, so a bisection costs
``O(log |versions|)`` *distinct* probes — the property suite pins both the
probe bound and parity with :func:`exhaustive_edges`, the obviously-correct
linear reference.  Each edge is then mapped onto the release timeline
(:func:`~repro.triage.events.release_timeline`) to name the responsible
event.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compilers.versions import all_versions, version_label
from repro.triage.events import (FIXING_KINDS, INTRODUCING_KINDS,
                                 RevisionEvent, events_at, release_timeline)

Probe = Callable[[int], bool]


class BisectionError(ValueError):
    """The probe contradicts the observation (not bad at the anchor)."""


def probe_budget(version_count: int) -> int:
    """Worst-case distinct probes for one bisection over *version_count*
    releases: both endpoint checks, the anchor, and two binary searches."""
    if version_count <= 1:
        return 3
    return 2 * math.ceil(math.log2(version_count)) + 3


@dataclass
class BisectionResult:
    """Where a finding's behaviour lives on the release timeline.

    ``introduced`` is the oldest release of the contiguous bad window
    containing the observation (the oldest simulated release when the
    behaviour predates the timeline); ``fixed`` is the first release where
    it disappears again, ``None`` while it still reproduces on the newest.
    ``introduced_event`` / ``fixed_event`` are the timeline events the
    edges land on (``None`` when no known event explains an edge).
    """

    compiler: str
    observed: int
    introduced: int
    fixed: Optional[int]
    probes: int
    versions: List[int] = field(default_factory=list)
    introduced_event: Optional[RevisionEvent] = None
    fixed_event: Optional[RevisionEvent] = None

    @property
    def affected_versions(self) -> List[int]:
        """Every bisected release inside the bad window."""
        last = self.fixed if self.fixed is not None else self.versions[-1] + 1
        return [v for v in self.versions if self.introduced <= v < last]

    @property
    def responsible(self) -> str:
        """The event id credited with the window (``unknown`` if no event
        matched either edge)."""
        if self.introduced_event is not None:
            return self.introduced_event.event_id
        if self.fixed_event is not None:
            return self.fixed_event.event_id
        return "unknown"

    @property
    def window_label(self) -> str:
        first = version_label(self.compiler, self.introduced)
        if self.fixed is None:
            return f"[{first}, trunk]"
        return f"[{first}, {version_label(self.compiler, self.fixed)})"

    def to_json(self) -> dict:
        return {"compiler": self.compiler, "observed": self.observed,
                "introduced": self.introduced, "fixed": self.fixed,
                "probes": self.probes, "window": self.window_label,
                "responsible": self.responsible,
                "introduced_event": (self.introduced_event.event_id
                                     if self.introduced_event else None),
                "fixed_event": (self.fixed_event.event_id
                                if self.fixed_event else None)}


class RevisionBisector:
    """Bisects probes over one compiler's simulated releases.

    Args:
        compiler: ``"gcc"`` or ``"llvm"``.
        versions: release range to search (default: every simulated
            release including trunk).  Narrow it when the probe is only
            monotone on a sub-range — e.g. a marker probe whose pass did
            not exist in the earliest releases.
        events: release timeline to attribute edges against (default:
            :func:`~repro.triage.events.release_timeline` of *compiler*).
    """

    def __init__(self, compiler: str,
                 versions: Optional[Sequence[int]] = None,
                 events: Optional[Sequence[RevisionEvent]] = None) -> None:
        self.compiler = compiler
        self.versions = sorted(versions) if versions is not None \
            else all_versions(compiler)
        if not self.versions:
            raise ValueError("empty version range")
        self.events = list(events) if events is not None \
            else release_timeline(compiler)

    def bisect(self, probe: Probe, observed: int,
               relevant: Optional[Callable[[RevisionEvent], bool]] = None
               ) -> BisectionResult:
        """Locate the bad window around *observed* and name its edges.

        *relevant* filters candidate edge events (probes supply it to rule
        out, say, a ubsan defect explaining an asan finding).  Raises
        :class:`BisectionError` when the probe is good at *observed* —
        the caller should re-anchor (see :meth:`find_anchor`).
        """
        versions = self.versions
        if observed not in versions:
            raise ValueError(f"version {observed} outside bisected range "
                             f"{versions[0]}..{versions[-1]}")
        memo: Dict[int, bool] = {}

        def check(version: int) -> bool:
            if version not in memo:
                memo[version] = bool(probe(version))
            return memo[version]

        if not check(observed):
            raise BisectionError(
                f"behaviour not reproducible at {version_label(self.compiler, observed)}")
        anchor = versions.index(observed)

        # Introducing edge: leftmost bad release of the contiguous window.
        if check(versions[0]):
            introduced = versions[0]
        else:
            lo, hi = 0, anchor  # invariant: lo good, hi bad
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if check(versions[mid]):
                    hi = mid
                else:
                    lo = mid
            introduced = versions[hi]

        # Fixing edge: first good release after the window (None if never).
        if check(versions[-1]):
            fixed = None
        else:
            lo, hi = anchor, len(versions) - 1  # invariant: lo bad, hi good
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if check(versions[mid]):
                    lo = mid
                else:
                    hi = mid
            fixed = versions[hi]

        return BisectionResult(
            compiler=self.compiler, observed=observed, introduced=introduced,
            fixed=fixed, probes=len(memo), versions=list(versions),
            introduced_event=self._edge_event(introduced, INTRODUCING_KINDS,
                                              relevant),
            fixed_event=(self._edge_event(fixed, FIXING_KINDS, relevant)
                         if fixed is not None else None))

    def find_anchor(self, probe: Probe, preferred: Optional[int] = None
                    ) -> Optional[int]:
        """A version where the probe is bad, or ``None`` if there is none.

        Tries *preferred* first, then sweeps newest-to-oldest — the linear
        fallback for findings filed against releases where they no longer
        reproduce (the probe budget only applies once anchored).
        """
        if preferred is not None and preferred in self.versions and probe(preferred):
            return preferred
        for version in reversed(self.versions):
            if version != preferred and probe(version):
                return version
        return None

    # -- internals ---------------------------------------------------------------

    def _edge_event(self, version: int, kinds: Tuple[str, ...],
                    relevant: Optional[Callable[[RevisionEvent], bool]]
                    ) -> Optional[RevisionEvent]:
        candidates = events_at(self.events, version, kinds)
        if relevant is not None:
            candidates = [e for e in candidates if relevant(e)]
        return candidates[0] if candidates else None


def exhaustive_edges(probe: Probe, versions: Sequence[int],
                     observed: int) -> Tuple[int, Optional[int]]:
    """Reference implementation: probe *every* release linearly and return
    the ``(introduced, fixed)`` edges of the bad window containing
    *observed*.  The property suite pins :meth:`RevisionBisector.bisect`
    against this, which costs ``O(|versions|)`` probes instead of
    ``O(log |versions|)``."""
    versions = sorted(versions)
    verdicts = {v: bool(probe(v)) for v in versions}
    if not verdicts[observed]:
        raise BisectionError(f"behaviour not reproducible at {observed}")
    index = versions.index(observed)
    start = index
    while start > 0 and verdicts[versions[start - 1]]:
        start -= 1
    end = index
    while end + 1 < len(versions) and verdicts[versions[end + 1]]:
        end += 1
    fixed = versions[end + 1] if end + 1 < len(versions) else None
    return versions[start], fixed
