"""From a findings-database bucket to a recorded known bug.

:func:`attribute_bucket` is the glue the ``bisect`` CLI drives: it loads a
bucket's representative program out of the
:class:`~repro.corpusdb.FindingsDB`, rebuilds the probe the finding came
from (a :class:`~repro.triage.probes.CrashProbe` for crash buckets, a
:class:`~repro.triage.probes.MarkerProbe` for marker buckets), bisects the
release timeline, and persists the result as a row in the known-bug patch
database — after which campaigns sharing the database auto-suppress the
bucket instead of re-filing it (DEAD's ``patchdatabase`` workflow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.compilers.cache import CompilationCache
from repro.compilers.versions import trunk_version
from repro.core.ub_types import UBType
from repro.corpusdb import CRASH_KIND, FindingsDB
from repro.markers.engine import UNSOUND_ELIMINATION
from repro.optim.pipelines import PASS_INTRODUCED
from repro.sanitizers.defects import Defect
from repro.triage.bisector import (BisectionError, BisectionResult,
                                   RevisionBisector)
from repro.triage.probes import CrashProbe, MarkerProbe


@dataclass
class Attribution:
    """One bisected bucket: where its behaviour lives and which event owns it."""

    kind: str
    signature: str
    slug: str
    compiler: str
    result: BisectionResult

    @property
    def responsible(self) -> str:
        return self.result.responsible

    @property
    def status(self) -> str:
        """``fixed`` when the window closes before the newest release."""
        return "fixed" if self.result.fixed is not None else "open"

    def to_json(self) -> dict:
        record = self.result.to_json()
        record.update({"kind": self.kind, "signature": self.signature,
                       "slug": self.slug, "status": self.status})
        return record


def _bucket_config(db: FindingsDB, bucket_id: int) -> str:
    """The first recorded hit config of a bucket (read-only lookup)."""
    row = db.connection.execute(
        "SELECT config FROM corpus_bucket_hits "
        "WHERE bucket_id = ? AND config != '' ORDER BY rowid LIMIT 1",
        (bucket_id,)).fetchone()
    return row["config"] if row is not None else ""


def _bucket_source(db: FindingsDB, bucket_id: int) -> str:
    digests = db.bucket_digests(bucket_id)
    if not digests:
        raise BisectionError(f"bucket {bucket_id} has no stored program")
    source = db.get_program(digests[0])
    if source is None:
        raise BisectionError(f"program {digests[0]} missing from database")
    return source


def _bisect_crash_bucket(db: FindingsDB, bucket: dict,
                         registry: Optional[Sequence[Defect]],
                         cache: Optional[CompilationCache],
                         vm: str, max_steps: int) -> BisectionResult:
    _, ub_type, _, sanitizer = json.loads(bucket["signature"])
    config = _bucket_config(db, bucket["id"])
    if not config:
        raise BisectionError(f"bucket {bucket['slug']} has no hit config")
    # Crash hit configs are TestConfig labels: "gcc -O2 -fsanitize=asan".
    compiler, opt_level = config.split()[:2]
    probe = CrashProbe(_bucket_source(db, bucket["id"]), UBType(ub_type),
                       compiler, sanitizer, opt_level, registry=registry,
                       cache=cache, vm=vm, max_steps=max_steps)
    bisector = RevisionBisector(compiler)
    # FN campaigns observe misses on trunk; a finding filed against an
    # older database may no longer reproduce there, so fall back to an
    # anchor sweep before giving up.
    anchor = bisector.find_anchor(probe, preferred=trunk_version(compiler))
    if anchor is None:
        raise BisectionError(
            f"bucket {bucket['slug']} not reproducible at any release")
    return bisector.bisect(probe, anchor, relevant=probe.relevant)


def _bisect_marker_bucket(db: FindingsDB, bucket: dict,
                          cache: Optional[CompilationCache],
                          ) -> BisectionResult:
    kind, compiler, _, _, name, responsible_pass = json.loads(
        bucket["signature"])
    config = _bucket_config(db, bucket["id"])
    if not config:
        raise BisectionError(f"bucket {bucket['slug']} has no hit config")
    # Marker hit configs read "gcc-11 -O2" (raw version, never "trunk").
    version_token, opt_level = config.split()[:2]
    observed = int(version_token.rsplit("-", 1)[1])
    probe = MarkerProbe(_bucket_source(db, bucket["id"]), name, compiler,
                        opt_level, cache=cache)
    bad = probe
    if kind == UNSOUND_ELIMINATION:
        # Unsound eliminations are bad where the live marker *disappears*.
        bad = lambda version: not probe(version)
    # Retention flips once more where the responsible pass first landed;
    # bisecting from that release on keeps the probe monotone around the
    # observed defect window.
    first = PASS_INTRODUCED.get(compiler, {}).get(responsible_pass)
    versions = None
    if first is not None and first <= observed:
        versions = list(range(first, trunk_version(compiler) + 1))
    bisector = RevisionBisector(compiler, versions=versions)
    anchor = bisector.find_anchor(bad, preferred=observed)
    if anchor is None:
        raise BisectionError(
            f"bucket {bucket['slug']} not reproducible at any release")
    return bisector.bisect(bad, anchor, relevant=probe.relevant)


def bisect_bucket(db: FindingsDB, bucket: dict,
                  registry: Optional[Sequence[Defect]] = None,
                  cache: Optional[CompilationCache] = None,
                  vm: str = "compiled",
                  max_steps: int = 200_000) -> Attribution:
    """Bisect one bucket row (as returned by
    :meth:`~repro.corpusdb.FindingsDB.query_buckets`) without recording."""
    if bucket["kind"] == CRASH_KIND:
        result = _bisect_crash_bucket(db, bucket, registry, cache, vm,
                                      max_steps)
    else:
        result = _bisect_marker_bucket(db, bucket, cache)
    return Attribution(kind=bucket["kind"], signature=bucket["signature"],
                       slug=bucket["slug"], compiler=result.compiler,
                       result=result)


def record_attribution(db: FindingsDB, attribution: Attribution,
                       campaign_id: Optional[int] = None) -> int:
    """Persist one attribution into the known-bug patch database."""
    result = attribution.result
    return db.record_attribution(
        attribution.kind, attribution.signature,
        responsible=attribution.responsible,
        compiler=attribution.compiler,
        introduced_version=result.introduced,
        fixed_version=result.fixed,
        status=attribution.status,
        window=result.window_label,
        observed_version=result.observed,
        introduced_event=(result.introduced_event.event_id
                          if result.introduced_event else ""),
        fixed_event=(result.fixed_event.event_id
                     if result.fixed_event else ""),
        probes=result.probes,
        campaign_id=campaign_id)


def attribute_bucket(db: FindingsDB, bucket: dict,
                     registry: Optional[Sequence[Defect]] = None,
                     cache: Optional[CompilationCache] = None,
                     vm: str = "compiled", max_steps: int = 200_000,
                     campaign_id: Optional[int] = None) -> Attribution:
    """Bisect one bucket and record the result; the ``bisect`` CLI's unit."""
    attribution = bisect_bucket(db, bucket, registry=registry, cache=cache,
                                vm=vm, max_steps=max_steps)
    record_attribution(db, attribution, campaign_id=campaign_id)
    return attribution
