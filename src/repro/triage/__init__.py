"""Revision bisection and the known-bug patch database.

The campaign layers *find* behaviours (sanitizer false negatives, retained
markers); this package answers "which release — and which change in that
release — is responsible", the way diopter bisects real compiler revisions
and DEAD's patch database keeps already-reported regressions from being
re-filed:

* :mod:`repro.triage.events` — the simulated release timeline flattened
  into attributable :class:`RevisionEvent` rows (pass introductions,
  optimizer-defect windows, sanitizer-defect windows);
* :mod:`repro.triage.bisector` — :class:`RevisionBisector`, two binary
  searches locating a finding's contiguous bad window in
  ``O(log versions)`` memoized probes, pinned against the exhaustive
  linear reference :func:`exhaustive_edges`;
* :mod:`repro.triage.probes` — :class:`CrashProbe` (sanitizer silent?) and
  :class:`MarkerProbe` (marker retained?), both riding the shared
  :class:`~repro.compilers.cache.CompilationCache`;
* :mod:`repro.triage.attribution` — bucket → probe → bisection →
  ``corpus_known_bugs`` row; once recorded, campaigns sharing the
  findings database suppress the bucket instead of re-filing it.
"""

from repro.triage.attribution import (Attribution, attribute_bucket,
                                      bisect_bucket, record_attribution)
from repro.triage.bisector import (BisectionError, BisectionResult,
                                   RevisionBisector, exhaustive_edges,
                                   probe_budget)
from repro.triage.events import (FIXING_KINDS, INTRODUCING_KINDS,
                                 OPTIMIZER_DEFECT_FIXED,
                                 OPTIMIZER_DEFECT_INTRODUCED,
                                 PASS_INTRODUCED_EVENT,
                                 SANITIZER_DEFECT_FIXED,
                                 SANITIZER_DEFECT_INTRODUCED, RevisionEvent,
                                 events_at, release_timeline)
from repro.triage.probes import CrashProbe, MarkerProbe

__all__ = [
    "Attribution",
    "BisectionError",
    "BisectionResult",
    "CrashProbe",
    "FIXING_KINDS",
    "INTRODUCING_KINDS",
    "MarkerProbe",
    "OPTIMIZER_DEFECT_FIXED",
    "OPTIMIZER_DEFECT_INTRODUCED",
    "PASS_INTRODUCED_EVENT",
    "RevisionBisector",
    "RevisionEvent",
    "SANITIZER_DEFECT_FIXED",
    "SANITIZER_DEFECT_INTRODUCED",
    "attribute_bucket",
    "bisect_bucket",
    "events_at",
    "exhaustive_edges",
    "probe_budget",
    "record_attribution",
    "release_timeline",
]
