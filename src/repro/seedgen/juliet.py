"""A Juliet-style test suite of fixed-template UB programs (paper §4.3).

NIST's Juliet suite is a large collection of small, hand-written programs,
each demonstrating one CWE with an explicit "bad" code path.  The paper runs
the sanitizer-detectable subset of Juliet through its oracle and finds **no**
sanitizer FN bugs: the programs are simple and their UB patterns are exactly
what sanitizer test suites already cover.

This module generates a corpus in the same spirit: each case instantiates a
fixed template for one UB type with small parameter variations (buffer
length, offset, constant values).  The programs are intentionally plain —
direct accesses on locals, no global pointer indirection, no optimizer bait
— which is why, like the real Juliet suite, they exercise no seeded defect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.ub_types import UBType


@dataclass
class JulietCase:
    """One Juliet-style test case."""

    name: str
    ub_type: UBType
    source: str
    cwe: str


def _stack_overflow_case(i: int, length: int) -> JulietCase:
    source = f"""\
int main() {{
  int data[{length}];
  int i_var = 0;
  for (i_var = 0; i_var < {length}; i_var++) {{
    data[i_var] = i_var;
  }}
  i_var = {length};
  data[i_var] = {i};
  return data[0];
}}
"""
    return JulietCase(f"CWE121_stack_overflow_{i:02d}", UBType.BUFFER_OVERFLOW_ARRAY,
                      source, "CWE-121")


def _heap_overflow_case(i: int, length: int) -> JulietCase:
    source = f"""\
int main() {{
  int *data = malloc({length * 4});
  int j = 0;
  for (j = 0; j < {length}; j++) {{
    data[j] = j + {i};
  }}
  *(data + {length}) = 7;
  free(data);
  return 0;
}}
"""
    return JulietCase(f"CWE122_heap_overflow_{i:02d}", UBType.BUFFER_OVERFLOW_POINTER,
                      source, "CWE-122")


def _use_after_free_case(i: int, length: int) -> JulietCase:
    source = f"""\
int main() {{
  int *data = malloc({length * 4});
  data[0] = {i};
  free(data);
  return data[0];
}}
"""
    return JulietCase(f"CWE416_use_after_free_{i:02d}", UBType.USE_AFTER_FREE,
                      source, "CWE-416")


def _null_deref_case(i: int) -> JulietCase:
    source = f"""\
int main() {{
  int *data = 0;
  int ok = {i};
  if (ok > 1000) {{
    int stack_value = 7;
    data = &stack_value;
  }}
  return *data;
}}
"""
    return JulietCase(f"CWE476_null_deref_{i:02d}", UBType.NULL_POINTER_DEREF,
                      source, "CWE-476")


def _integer_overflow_case(i: int) -> JulietCase:
    source = f"""\
int main() {{
  int data = 2147483647 - {i};
  int result = data + {i + 1};
  return result > 0;
}}
"""
    return JulietCase(f"CWE190_integer_overflow_{i:02d}", UBType.INTEGER_OVERFLOW,
                      source, "CWE-190")


def _shift_overflow_case(i: int) -> JulietCase:
    source = f"""\
int main() {{
  int data = {i + 1};
  int amount = 32 + {i};
  int result = data << amount;
  return result != 0;
}}
"""
    return JulietCase(f"CWE1335_shift_overflow_{i:02d}", UBType.SHIFT_OVERFLOW,
                      source, "CWE-1335")


def _divide_by_zero_case(i: int) -> JulietCase:
    source = f"""\
int main() {{
  int data = 0;
  int numerator = {100 + i};
  int result = numerator / data;
  return result;
}}
"""
    return JulietCase(f"CWE369_divide_by_zero_{i:02d}", UBType.DIVIDE_BY_ZERO,
                      source, "CWE-369")


def _uninit_case(i: int) -> JulietCase:
    source = f"""\
int main() {{
  int data;
  int out = {i};
  if (data) {{
    out = out + 1;
  }}
  return out;
}}
"""
    return JulietCase(f"CWE457_uninit_{i:02d}", UBType.USE_OF_UNINIT_MEMORY,
                      source, "CWE-457")


def _use_after_scope_case(i: int) -> JulietCase:
    source = f"""\
int g_sink = {i};
int main() {{
  int *p = &g_sink;
  {{
    int local_value = {i + 1};
    p = &local_value;
  }}
  return *p;
}}
"""
    return JulietCase(f"CWE562_use_after_scope_{i:02d}", UBType.USE_AFTER_SCOPE,
                      source, "CWE-562")


def generate_juliet_suite(cases_per_type: int = 4) -> List[JulietCase]:
    """Build the Juliet-style corpus: ``cases_per_type`` variants per UB type."""
    suite: List[JulietCase] = []
    for i in range(cases_per_type):
        suite.append(_stack_overflow_case(i, length=4 + i))
        suite.append(_heap_overflow_case(i, length=3 + i))
        suite.append(_use_after_free_case(i, length=2 + i))
        suite.append(_null_deref_case(i))
        suite.append(_integer_overflow_case(i))
        suite.append(_shift_overflow_case(i))
        suite.append(_divide_by_zero_case(i))
        suite.append(_uninit_case(i))
        suite.append(_use_after_scope_case(i))
    return suite
