"""Seed program generators: Csmith-like, Csmith-NoSafe, MUSIC, Juliet."""

from repro.seedgen.config import GeneratorConfig
from repro.seedgen.csmith import CsmithGenerator, CsmithNoSafeGenerator, SeedProgram
from repro.seedgen.juliet import JulietCase, generate_juliet_suite
from repro.seedgen.music import MUTATION_OPERATORS, Mutant, MusicMutator

__all__ = [
    "GeneratorConfig",
    "CsmithGenerator",
    "CsmithNoSafeGenerator",
    "SeedProgram",
    "JulietCase",
    "generate_juliet_suite",
    "MUTATION_OPERATORS",
    "Mutant",
    "MusicMutator",
]
