"""Configuration for the Csmith-like seed program generator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GeneratorConfig:
    """Tunables of :class:`~repro.seedgen.csmith.CsmithGenerator`.

    ``safe_math`` mirrors Csmith's safe wrappers: when True (the default, as
    in stock Csmith) every division is guarded against a zero divisor, every
    shift amount is masked and signed arithmetic is widened so the seed
    program is UB-free.  ``safe_math=False`` is the paper's *Csmith-NoSafe*
    baseline: the wrappers are dropped, which lets arithmetic UB (integer
    overflow, shift overflow, division by zero) slip into roughly half of
    the generated programs but produces no memory-safety UB.
    """

    seed: int = 0
    safe_math: bool = True

    # Program shape.
    num_global_scalars: tuple = (3, 6)
    num_global_arrays: tuple = (1, 3)
    num_global_pointers: tuple = (1, 2)
    num_helper_functions: tuple = (1, 2)
    use_struct_array: bool = True
    use_heap_buffer: bool = True

    # Statement / expression limits.
    main_statements: tuple = (6, 14)
    function_statements: tuple = (3, 7)
    max_expr_depth: int = 3
    max_block_depth: int = 2
    loop_bound_range: tuple = (2, 6)
    array_length_range: tuple = (4, 10)

    # Statement kind weights (assign, array store, pointer store, if, for,
    # compound assign, call).
    stmt_weights: dict = field(default_factory=lambda: {
        "assign": 5,
        "array_store": 4,
        "pointer_store": 3,
        "if": 3,
        "for": 3,
        "compound_assign": 2,
        "call": 2,
        "block_local": 2,
    })

    def clone_with(self, **overrides) -> "GeneratorConfig":
        data = self.__dict__.copy()
        data.update(overrides)
        return GeneratorConfig(**data)
