"""A Csmith-like random generator of valid, self-contained C programs.

The paper uses Csmith [42] to produce seed programs because (1) it is the de
facto generator for C compiler testing, (2) its programs exercise rich
pointer/array/integer behaviour, and (3) they are closed (no inputs).  This
module reproduces those properties for the C subset:

* every generated program type-checks, terminates and — in the default
  ``safe_math`` mode — is free of undefined behaviour;
* programs contain global scalars/arrays/pointers, a struct array, helper
  functions, loops, branches, heap buffers, pointer stores and a final
  checksum ``printf``, giving the UB generator abundant code constructs for
  every UB type of Table 1;
* with ``safe_math=False`` the arithmetic safe-wrappers are dropped — this
  is the *Csmith-NoSafe* baseline of Table 4, whose programs may contain
  arithmetic UB but never memory-safety UB.

Generation is deterministic in (config.seed, program index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.parser import parse_program
from repro.cdsl.printer import print_program
from repro.cdsl.sema import analyze
from repro.cdsl.source import UNKNOWN_LOCATION
from repro.seedgen.config import GeneratorConfig
from repro.utils.errors import GenerationError
from repro.utils.rng import RandomSource, derive_seed
from repro.vm.interpreter import run_program


@dataclass
class SeedProgram:
    """One generated seed: its source text plus generation metadata."""

    source: str
    index: int
    generator: str = "csmith"
    metadata: dict = field(default_factory=dict)

    def parse(self) -> ast.TranslationUnit:
        return parse_program(self.source)


@dataclass
class _Var:
    name: str
    ctype: ct.CType
    kind: str                 # "global", "local", "param"
    length: int = 0           # for arrays
    is_heap: bool = False


class CsmithGenerator:
    """The Csmith-like generator of valid, UB-free seed programs.

    Deterministic: ``generate(index)`` is a pure function of
    ``(config.seed, index)``, so campaigns can shard seed generation across
    processes and still reproduce a serial run bit-for-bit.

    Example::

        seed = CsmithGenerator(GeneratorConfig(seed=42)).generate(0)
        print(seed.source)
    """

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()

    # -- public API -------------------------------------------------------------

    def generate(self, index: int = 0, validate: bool = True) -> SeedProgram:
        """Generate the *index*-th seed program for this configuration."""
        last_error = "unknown"
        for attempt in range(4):
            # The salt folds the retry attempt into the index (attempts < 4,
            # spacing 31 keeps the salts collision-free).
            rng = RandomSource(derive_seed(self.config.seed, index * 31 + attempt))
            builder = _ProgramBuilder(self.config, rng)
            unit = builder.build()
            source = print_program(unit)
            if not validate:
                return SeedProgram(source, index, metadata={"attempt": attempt})
            ok, reason = self._validate(source)
            if ok:
                return SeedProgram(source, index, metadata={"attempt": attempt})
            last_error = reason
        raise GenerationError(f"could not generate a valid seed for index "
                              f"{index}: {last_error}")

    def generate_many(self, count: int, start_index: int = 0,
                      validate: bool = True) -> List[SeedProgram]:
        return [self.generate(start_index + i, validate=validate)
                for i in range(count)]

    # -- internal ---------------------------------------------------------------

    @staticmethod
    def _validate(source: str) -> tuple[bool, str]:
        """Check the program parses, analyses and runs to completion."""
        try:
            unit = parse_program(source)
            sema = analyze(unit)
        except Exception as exc:
            return False, f"frontend: {exc}"
        result = run_program(unit, sema, max_steps=100_000)
        if result.status != "ok":
            return False, f"execution: {result.status} {result.error or ''}"
        return True, ""


class CsmithNoSafeGenerator(CsmithGenerator):
    """The Csmith-NoSafe baseline: identical generator, wrappers disabled."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        base = config or GeneratorConfig()
        super().__init__(base.clone_with(safe_math=False))

    def generate(self, index: int = 0, validate: bool = True) -> SeedProgram:
        # NoSafe programs may contain arithmetic UB; they must still parse
        # and terminate, so validation keeps running but ignores UB.
        seed = super().generate(index, validate=validate)
        seed.generator = "csmith-nosafe"
        return seed


# ---------------------------------------------------------------------------
# Program builder
# ---------------------------------------------------------------------------

_SCALAR_TYPES = (ct.INT, ct.UINT, ct.SHORT, ct.LONG, ct.UCHAR)


def _lit(value: int) -> ast.IntLiteral:
    return ast.IntLiteral(value, loc=UNKNOWN_LOCATION)


def _ident(name: str) -> ast.Identifier:
    return ast.Identifier(name)


class _ProgramBuilder:
    def __init__(self, config: GeneratorConfig, rng: RandomSource) -> None:
        self.config = config
        self.rng = rng
        self.globals: List[_Var] = []
        self.arrays: List[_Var] = []
        self.pointers: List[_Var] = []
        self.struct_array: Optional[_Var] = None
        self.struct_type: Optional[ct.StructType] = None
        self.heap_var: Optional[_Var] = None
        self.functions: List[ast.FunctionDecl] = []
        self.helper_signatures: List[tuple] = []
        self._name_counter = 0
        self._loop_counter = 0

    # -- naming -----------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}_{self._name_counter}"

    # -- top level ---------------------------------------------------------------

    def build(self) -> ast.TranslationUnit:
        decls: List[ast.Node] = []
        decls.extend(self._build_struct())
        decls.extend(self._build_global_scalars())
        decls.extend(self._build_global_arrays())
        decls.extend(self._build_global_pointers())
        decls.extend(self._build_helper_functions())
        decls.append(self._build_main())
        return ast.TranslationUnit(decls)

    def _build_struct(self) -> List[ast.Node]:
        if not self.config.use_struct_array:
            return []
        tag = "s0"
        fields = [("f0", ct.INT), ("f1", ct.INT)]
        self.struct_type = ct.StructType.create(tag, fields)
        length = self.rng.randint(2, 4)
        var = _Var(self._fresh("g_st"), ct.ArrayType(self.struct_type, length),
                   "global", length=length)
        self.struct_array = var
        return [ast.StructDef(self.struct_type),
                ast.DeclStmt([ast.VarDecl(var.name, var.ctype, None,
                                          is_global=True)])]

    def _build_global_scalars(self) -> List[ast.Node]:
        count = self.rng.randint(*self.config.num_global_scalars)
        out: List[ast.Node] = []
        for _ in range(count):
            ctype = self.rng.choice(_SCALAR_TYPES)
            name = self._fresh("g")
            init = _lit(self.rng.randint(0, 60))
            var = _Var(name, ctype, "global")
            self.globals.append(var)
            out.append(ast.DeclStmt([ast.VarDecl(name, ctype, init,
                                                 is_global=True)]))
        return out

    def _build_global_arrays(self) -> List[ast.Node]:
        count = self.rng.randint(*self.config.num_global_arrays)
        out: List[ast.Node] = []
        for _ in range(count):
            elem = self.rng.choice((ct.INT, ct.INT, ct.SHORT, ct.UINT))
            length = self.rng.randint(*self.config.array_length_range)
            name = self._fresh("g_arr")
            items = [_lit(self.rng.randint(0, 9)) for _ in range(length)]
            var = _Var(name, ct.ArrayType(elem, length), "global", length=length)
            self.arrays.append(var)
            out.append(ast.DeclStmt([ast.VarDecl(name, var.ctype,
                                                 ast.InitList(items),
                                                 is_global=True)]))
        return out

    def _build_global_pointers(self) -> List[ast.Node]:
        count = self.rng.randint(*self.config.num_global_pointers)
        out: List[ast.Node] = []
        int_scalars = [v for v in self.globals if v.ctype == ct.INT]
        int_arrays = [v for v in self.arrays
                      if isinstance(v.ctype, ct.ArrayType) and v.ctype.element == ct.INT]
        for _ in range(count):
            name = self._fresh("g_p")
            if int_arrays and self.rng.flip(0.5):
                target = self.rng.choice(int_arrays)
                init: ast.Expr = _ident(target.name)
            elif int_scalars:
                target = self.rng.choice(int_scalars)
                init = ast.AddressOf(_ident(target.name))
            elif int_arrays:
                target = self.rng.choice(int_arrays)
                init = _ident(target.name)
            else:
                continue
            var = _Var(name, ct.PointerType(ct.INT), "global")
            self.pointers.append(var)
            out.append(ast.DeclStmt([ast.VarDecl(name, var.ctype, init,
                                                 is_global=True)]))
        # Optionally a pointer to the struct array, enabling p->field code.
        if self.struct_array is not None and self.rng.flip(0.7):
            name = self._fresh("g_sp")
            var = _Var(name, ct.PointerType(self.struct_type), "global")
            self.pointers.append(var)
            out.append(ast.DeclStmt([ast.VarDecl(
                name, var.ctype, _ident(self.struct_array.name), is_global=True)]))
        return out

    # -- helper functions --------------------------------------------------------

    def _build_helper_functions(self) -> List[ast.Node]:
        count = self.rng.randint(*self.config.num_helper_functions)
        out: List[ast.Node] = []
        for _ in range(count):
            name = self._fresh("func")
            params = [ast.ParamDecl("p0", ct.INT), ast.ParamDecl("p1", ct.UINT)]
            param_vars = [_Var("p0", ct.INT, "param"), _Var("p1", ct.UINT, "param")]
            scope = _Scope(self, param_vars)
            body_stmts: List[ast.Stmt] = []
            local_count = self.rng.randint(1, 2)
            for _ in range(local_count):
                body_stmts.append(scope.declare_local())
            stmt_count = self.rng.randint(*self.config.function_statements)
            for _ in range(stmt_count):
                body_stmts.append(scope.statement(depth=0))
            body_stmts.append(ast.ReturnStmt(scope.int_expr(1)))
            fn = ast.FunctionDecl(name, ct.INT, params,
                                  ast.CompoundStmt(body_stmts))
            self.functions.append(fn)
            self.helper_signatures.append((name, 2))
            out.append(fn)
        return out

    # -- main --------------------------------------------------------------------

    def _build_main(self) -> ast.FunctionDecl:
        scope = _Scope(self, [])
        stmts: List[ast.Stmt] = []
        for _ in range(self.rng.randint(2, 4)):
            stmts.append(scope.declare_local())
        stmts.append(scope.declare_crc())
        if self.config.use_heap_buffer:
            stmts.extend(scope.declare_heap_buffer())
        count = self.rng.randint(*self.config.main_statements)
        for _ in range(count):
            stmts.append(scope.statement(depth=0))
        stmts.extend(scope.checksum_statements())
        if self.heap_var is not None:
            stmts.append(ast.ExprStmt(ast.Call("free", [_ident(self.heap_var.name)])))
        stmts.append(ast.ReturnStmt(_lit(0)))
        return ast.FunctionDecl("main", ct.INT, [], ast.CompoundStmt(stmts))


class _Scope:
    """Expression/statement generation within one function."""

    def __init__(self, builder: _ProgramBuilder, initial_vars: List[_Var]) -> None:
        self.b = builder
        self.rng = builder.rng
        self.config = builder.config
        self.locals: List[_Var] = list(initial_vars)
        self.crc_var: Optional[_Var] = None

    # -- declarations -------------------------------------------------------------

    def declare_local(self) -> ast.Stmt:
        ctype = self.rng.choice((ct.INT, ct.INT, ct.UINT, ct.LONG, ct.SHORT))
        name = self.b._fresh("l")
        init = _lit(self.rng.randint(0, 50))
        self.locals.append(_Var(name, ctype, "local"))
        return ast.DeclStmt([ast.VarDecl(name, ctype, init)])

    def declare_crc(self) -> ast.Stmt:
        name = self.b._fresh("crc")
        self.crc_var = _Var(name, ct.UINT, "local")
        self.locals.append(self.crc_var)
        return ast.DeclStmt([ast.VarDecl(name, ct.UINT, _lit(0))])

    def declare_heap_buffer(self) -> List[ast.Stmt]:
        name = self.b._fresh("hp")
        length = self.rng.randint(4, 8)
        var = _Var(name, ct.PointerType(ct.INT), "local", length=length,
                   is_heap=True)
        self.b.heap_var = var
        self.locals.append(var)
        decl = ast.DeclStmt([ast.VarDecl(
            name, var.ctype,
            ast.Call("malloc", [_lit(length * 4)]))])
        loop_var = self.b._fresh("i")
        fill = ast.ForStmt(
            ast.DeclStmt([ast.VarDecl(loop_var, ct.INT, _lit(0))]),
            ast.BinaryOp("<", _ident(loop_var), _lit(length)),
            ast.IncDec("++", _ident(loop_var), is_prefix=False),
            ast.CompoundStmt([
                ast.ExprStmt(ast.Assignment(
                    "=",
                    ast.ArraySubscript(_ident(name), _ident(loop_var)),
                    ast.BinaryOp("+", _ident(loop_var), _lit(self.rng.randint(1, 9))))),
            ]))
        return [decl, fill]

    # -- variable pools -------------------------------------------------------------

    def _int_scalars(self) -> List[_Var]:
        pool = [v for v in self.locals if isinstance(v.ctype, ct.IntType)]
        pool.extend(v for v in self.b.globals if isinstance(v.ctype, ct.IntType))
        return pool

    def _writable_scalars(self) -> List[_Var]:
        return [v for v in self._int_scalars() if v.kind != "param"]

    def _arrays(self) -> List[_Var]:
        pool = list(self.b.arrays)
        if self.b.heap_var is not None:
            pool.append(self.b.heap_var)
        return pool

    def _int_pointers(self) -> List[_Var]:
        return [v for v in self.b.pointers
                if isinstance(v.ctype, ct.PointerType) and v.ctype.pointee == ct.INT]

    # -- expressions -----------------------------------------------------------------

    def safe_index(self, length: int) -> ast.Expr:
        """An index expression guaranteed to be within [0, length)."""
        choice = self.rng.randint(0, 2)
        if choice == 0 or not self._int_scalars():
            return _lit(self.rng.randint(0, max(0, length - 1)))
        var = self.rng.choice(self._int_scalars())
        # ((unsigned int)v) % length is always in range.
        modded = ast.BinaryOp("%", ast.Cast(ct.UINT, _ident(var.name)), _lit(length))
        return modded

    def int_expr(self, depth: int) -> ast.Expr:
        if depth >= self.config.max_expr_depth or self.rng.flip(0.35):
            return self._leaf_expr()
        return self._node_expr(depth)

    def _leaf_expr(self) -> ast.Expr:
        choices = ["literal", "scalar", "array", "pointer", "struct"]
        weights = [2, 4, 2, 2, 1]
        kind = self.rng.weighted_choice(choices, weights)
        if kind == "scalar" and self._int_scalars():
            return _ident(self.rng.choice(self._int_scalars()).name)
        if kind == "array" and self._arrays():
            arr = self.rng.choice(self._arrays())
            return ast.ArraySubscript(_ident(arr.name), self.safe_index(arr.length))
        if kind == "pointer" and self._int_pointers():
            ptr = self.rng.choice(self._int_pointers())
            return ast.Deref(_ident(ptr.name))
        if kind == "struct" and self.b.struct_array is not None:
            arr = self.b.struct_array
            sub = ast.ArraySubscript(_ident(arr.name), self.safe_index(arr.length))
            field = self.rng.choice(["f0", "f1"])
            return ast.MemberAccess(sub, field, arrow=False)
        high = 100_000 if not self.config.safe_math else 100
        return _lit(self.rng.randint(0, high))

    def _node_expr(self, depth: int) -> ast.Expr:
        kind = self.rng.weighted_choice(
            ["arith", "bitwise", "shift", "div", "compare", "call", "cast"],
            [5, 3, 2, 2, 2, 1, 1])
        lhs = self.int_expr(depth + 1)
        rhs = self.int_expr(depth + 1)
        if kind == "arith":
            op = self.rng.choice(["+", "-", "*"])
            return self._safe_arith(op, lhs, rhs)
        if kind == "bitwise":
            op = self.rng.choice(["&", "|", "^"])
            return ast.BinaryOp(op, lhs, rhs)
        if kind == "shift":
            op = self.rng.choice(["<<", ">>"])
            return self._safe_shift(op, lhs, rhs)
        if kind == "div":
            op = self.rng.choice(["/", "%"])
            return self._safe_div(op, lhs, rhs)
        if kind == "compare":
            op = self.rng.choice(["<", ">", "<=", ">=", "==", "!="])
            return ast.BinaryOp(op, lhs, rhs)
        if kind == "call" and self.b.helper_signatures:
            name, _arity = self.rng.choice(self.b.helper_signatures)
            return ast.Call(name, [lhs, ast.Cast(ct.UINT, rhs)])
        target = self.rng.choice((ct.INT, ct.UINT, ct.SHORT, ct.LONG))
        return ast.Cast(target, lhs)

    # -- safe wrappers (Csmith's safe math) ---------------------------------------------

    def _safe_arith(self, op: str, lhs: ast.Expr, rhs: ast.Expr) -> ast.Expr:
        if not self.config.safe_math:
            return ast.BinaryOp(op, lhs, rhs)
        # Widen to long so the operation cannot overflow, then truncate;
        # the truncation is implementation-defined, not undefined.
        wide = ast.BinaryOp(op, ast.Cast(ct.LONG, lhs), ast.Cast(ct.LONG, rhs))
        return ast.Cast(ct.INT, wide)

    def _safe_shift(self, op: str, lhs: ast.Expr, rhs: ast.Expr) -> ast.Expr:
        if not self.config.safe_math:
            return ast.BinaryOp(op, lhs, rhs)
        masked = ast.BinaryOp("&", rhs, _lit(31))
        return ast.BinaryOp(op, ast.Cast(ct.UINT, lhs), masked)

    def _safe_div(self, op: str, lhs: ast.Expr, rhs: ast.Expr) -> ast.Expr:
        if not self.config.safe_math:
            return ast.BinaryOp(op, lhs, rhs)
        # Csmith's wrapper: (y == 0 ? 1 : x / y).  Note the division itself
        # is still present in the live code region, which is what lets the
        # UB generator later force its divisor to zero (paper Table 1).
        # The guard gets its own copy of the divisor so the AST stays a tree
        # (sharing nodes would confuse identity-based mutation later).
        from repro.cdsl.visitor import clone_fresh
        guard = ast.BinaryOp("==", clone_fresh(rhs), _lit(0))
        division = ast.BinaryOp(op, lhs, ast.Cast(ct.INT, rhs))
        return ast.Conditional(guard, _lit(1), division)

    def condition(self) -> ast.Expr:
        if self.rng.flip(0.3) and self._int_scalars():
            # A bare scalar condition: the code construct MSan-targeted UB
            # programs are built from (Table 1, "if (x)").
            return _ident(self.rng.choice(self._int_scalars()).name)
        op = self.rng.choice(["<", ">", "<=", ">=", "==", "!="])
        return ast.BinaryOp(op, self.int_expr(2), self.int_expr(2))

    # -- statements ---------------------------------------------------------------------

    def statement(self, depth: int) -> ast.Stmt:
        weights = self.config.stmt_weights
        kinds = list(weights)
        if depth >= self.config.max_block_depth:
            kinds = [k for k in kinds if k not in ("if", "for", "block_local")]
        kind = self.rng.weighted_choice(kinds, [weights[k] for k in kinds])
        if kind == "assign":
            return self._assign_stmt()
        if kind == "array_store":
            return self._array_store_stmt()
        if kind == "pointer_store":
            return self._pointer_store_stmt()
        if kind == "compound_assign":
            return self._compound_assign_stmt()
        if kind == "call":
            return self._call_stmt()
        if kind == "if":
            return self._if_stmt(depth)
        if kind == "for":
            return self._for_stmt(depth)
        if kind == "block_local":
            return self._block_local_stmt(depth)
        return self._assign_stmt()

    def _assign_stmt(self) -> ast.Stmt:
        pool = self._writable_scalars()
        if not pool:
            return ast.EmptyStmt()
        var = self.rng.choice(pool)
        return ast.ExprStmt(ast.Assignment("=", _ident(var.name), self.int_expr(0)))

    def _array_store_stmt(self) -> ast.Stmt:
        arrays = self._arrays()
        if self.b.struct_array is not None and self.rng.flip(0.25):
            arr = self.b.struct_array
            target = ast.MemberAccess(
                ast.ArraySubscript(_ident(arr.name), self.safe_index(arr.length)),
                self.rng.choice(["f0", "f1"]), arrow=False)
            return ast.ExprStmt(ast.Assignment("=", target, self.int_expr(1)))
        if not arrays:
            return self._assign_stmt()
        arr = self.rng.choice(arrays)
        target = ast.ArraySubscript(_ident(arr.name), self.safe_index(arr.length))
        return ast.ExprStmt(ast.Assignment("=", target, self.int_expr(1)))

    def _pointer_store_stmt(self) -> ast.Stmt:
        pointers = self._int_pointers()
        if not pointers:
            return self._assign_stmt()
        ptr = self.rng.choice(pointers)
        target = ast.Deref(_ident(ptr.name))
        return ast.ExprStmt(ast.Assignment("=", target, self.int_expr(1)))

    def _compound_assign_stmt(self) -> ast.Stmt:
        pool = self._writable_scalars()
        if not pool:
            return ast.EmptyStmt()
        var = self.rng.choice(pool)
        safe_ops = ["^=", "|=", "&="]
        unsafe_ops = safe_ops + ["+=", "-=", "*="]
        op = self.rng.choice(safe_ops if self.config.safe_math else unsafe_ops)
        return ast.ExprStmt(ast.Assignment(op, _ident(var.name), self.int_expr(1)))

    def _call_stmt(self) -> ast.Stmt:
        if not self.b.helper_signatures:
            return self._assign_stmt()
        name, _arity = self.rng.choice(self.b.helper_signatures)
        call = ast.Call(name, [self.int_expr(1), ast.Cast(ct.UINT, self.int_expr(1))])
        pool = self._writable_scalars()
        if pool and self.rng.flip(0.8):
            var = self.rng.choice(pool)
            return ast.ExprStmt(ast.Assignment("=", _ident(var.name), call))
        return ast.ExprStmt(call)

    def _if_stmt(self, depth: int) -> ast.Stmt:
        then_stmts = [self.statement(depth + 1)
                      for _ in range(self.rng.randint(1, 2))]
        otherwise = None
        if self.rng.flip(0.5):
            otherwise = ast.CompoundStmt([self.statement(depth + 1)])
        return ast.IfStmt(self.condition(), ast.CompoundStmt(then_stmts), otherwise)

    def _for_stmt(self, depth: int) -> ast.Stmt:
        loop_var = self.b._fresh("i")
        bound = self.rng.randint(*self.config.loop_bound_range)
        body_stmts = [self.statement(depth + 1)
                      for _ in range(self.rng.randint(1, 2))]
        # Accumulate something into the crc so the loop is never dead code.
        if self.crc_var is not None:
            body_stmts.append(ast.ExprStmt(ast.Assignment(
                "^=", _ident(self.crc_var.name),
                ast.Cast(ct.UINT, _ident(loop_var)))))
        return ast.ForStmt(
            ast.DeclStmt([ast.VarDecl(loop_var, ct.INT, _lit(0))]),
            ast.BinaryOp("<", _ident(loop_var), _lit(bound)),
            ast.IncDec("++", _ident(loop_var), is_prefix=False),
            ast.CompoundStmt(body_stmts))

    def _block_local_stmt(self, depth: int) -> ast.Stmt:
        """A nested block declaring a short-lived local (use-after-scope fodder)."""
        name = self.b._fresh("t")
        inner_decl = ast.DeclStmt([ast.VarDecl(name, ct.INT, self.int_expr(1))])
        self.locals.append(_Var(name, ct.INT, "local"))
        use = self._use_of(name)
        block = ast.CompoundStmt([inner_decl, use])
        self.locals.pop()
        return block

    def _use_of(self, name: str) -> ast.Stmt:
        pool = self._writable_scalars()
        if not pool:
            return ast.ExprStmt(ast.Assignment("=", _ident(name), _lit(1)))
        var = self.rng.choice(pool)
        return ast.ExprStmt(ast.Assignment(
            "=", _ident(var.name),
            ast.BinaryOp("^", _ident(name), self.int_expr(2))))

    # -- checksum -----------------------------------------------------------------------

    def checksum_statements(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        crc = self.crc_var
        if crc is None:
            return stmts
        for var in self.b.globals:
            stmts.append(ast.ExprStmt(ast.Assignment(
                "^=", _ident(crc.name), ast.Cast(ct.UINT, _ident(var.name)))))
        for arr in self.b.arrays:
            stmts.append(ast.ExprStmt(ast.Assignment(
                "^=", _ident(crc.name),
                ast.Cast(ct.UINT, ast.ArraySubscript(_ident(arr.name), _lit(0))))))
        for var in self.locals:
            if isinstance(var.ctype, ct.IntType) and var is not crc:
                stmts.append(ast.ExprStmt(ast.Assignment(
                    "^=", _ident(crc.name), ast.Cast(ct.UINT, _ident(var.name)))))
        stmts.append(ast.ExprStmt(ast.Call(
            "printf", [ast.StringLiteral("checksum = %u\\n"), _ident(crc.name)])))
        return stmts
