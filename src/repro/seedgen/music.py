"""MUSIC-style mutation baseline (paper §4.3).

MUSIC [28] is a mutation-testing tool: it applies classic syntactic mutation
operators to a valid program's AST, producing syntactically valid mutants
with no guarantee about semantics.  The paper uses it as a baseline UB
"generator": because the operators are blind to runtime state, only ~4% of
mutants actually contain UB, they cover few UB types, and they find no
sanitizer FN bugs.

Implemented operators (names follow the mutation-testing literature):

* ``OAAN`` — replace an arithmetic operator (``+`` ↔ ``-`` ↔ ``*`` ↔ ``/``)
* ``ORRN`` — replace a relational operator
* ``OLLN`` — replace a logical operator (``&&`` ↔ ``||``)
* ``CRCR`` — replace an integer constant (0, 1, -1, value±1, a large value)
* ``OIDO`` — swap ``++`` and ``--``
* ``SDL``  — delete a statement
* ``ABS``  — negate a subexpression
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl.parser import parse_program
from repro.cdsl.printer import print_program
from repro.cdsl.visitor import clone, find_nodes, replace_node, walk
from repro.seedgen.csmith import SeedProgram
from repro.utils.rng import RandomSource, derive_seed

MUTATION_OPERATORS = ("OAAN", "ORRN", "OLLN", "CRCR", "OIDO", "SDL", "ABS")

_ARITH = ["+", "-", "*", "/", "%"]
_RELATIONAL = ["<", ">", "<=", ">=", "==", "!="]
_LOGICAL = ["&&", "||"]


@dataclass
class Mutant:
    """One MUSIC mutant: mutated source plus the operator that produced it."""

    source: str
    operator: str
    seed_index: int
    description: str = ""
    metadata: dict = field(default_factory=dict)


class MusicMutator:
    """The MUSIC mutation baseline (paper §4.4): blind syntactic mutation.

    ``MusicMutator(seed).mutate(seed_program, count)`` applies random
    mutation operators (operator swaps, constant tweaks, statement
    deletion) and returns syntactically valid mutants — most of which
    contain no UB, which is exactly the Table 4 comparison point.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def mutate(self, seed_program: SeedProgram, count: int = 10) -> List[Mutant]:
        """Produce up to *count* syntactically valid mutants of one seed."""
        rng = RandomSource(derive_seed(self.seed, seed_program.index))
        base_unit = parse_program(seed_program.source)
        mutants: List[Mutant] = []
        attempts = 0
        while len(mutants) < count and attempts < count * 6:
            attempts += 1
            operator = rng.choice(MUTATION_OPERATORS)
            mutant = self._apply(base_unit, operator, rng, seed_program.index)
            if mutant is None:
                continue
            # Mutants must still be valid C text (they are re-parsed later by
            # the compilers); a quick parse check filters printer corner cases.
            try:
                parse_program(mutant.source)
            except Exception:
                continue
            mutants.append(mutant)
        return mutants

    # -- operators -------------------------------------------------------------

    def _apply(self, base_unit: ast.TranslationUnit, operator: str,
               rng: RandomSource, seed_index: int) -> Optional[Mutant]:
        unit = clone(base_unit)
        handler = getattr(self, f"_op_{operator.lower()}")
        description = handler(unit, rng)
        if description is None:
            return None
        return Mutant(source=print_program(unit), operator=operator,
                      seed_index=seed_index, description=description)

    def _op_oaan(self, unit: ast.TranslationUnit, rng: RandomSource) -> Optional[str]:
        nodes = find_nodes(unit, ast.BinaryOp, lambda n: n.op in _ARITH)
        if not nodes:
            return None
        node = rng.choice(nodes)
        new_op = rng.choice([op for op in _ARITH if op != node.op])
        old = node.op
        node.op = new_op
        return f"{old} -> {new_op}"

    def _op_orrn(self, unit: ast.TranslationUnit, rng: RandomSource) -> Optional[str]:
        nodes = find_nodes(unit, ast.BinaryOp, lambda n: n.op in _RELATIONAL)
        if not nodes:
            return None
        node = rng.choice(nodes)
        new_op = rng.choice([op for op in _RELATIONAL if op != node.op])
        old = node.op
        node.op = new_op
        return f"{old} -> {new_op}"

    def _op_olln(self, unit: ast.TranslationUnit, rng: RandomSource) -> Optional[str]:
        nodes = find_nodes(unit, ast.BinaryOp, lambda n: n.op in _LOGICAL)
        if not nodes:
            return None
        node = rng.choice(nodes)
        node.op = "&&" if node.op == "||" else "||"
        return "logical swap"

    def _op_crcr(self, unit: ast.TranslationUnit, rng: RandomSource) -> Optional[str]:
        nodes = find_nodes(unit, ast.IntLiteral)
        if not nodes:
            return None
        node = rng.choice(nodes)
        old = node.value
        candidates = [0, 1, old + 1, max(0, old - 1), old * 2 + 1, 2_000_000_000]
        node.value = rng.choice([c for c in candidates if c != old] or [old + 1])
        return f"{old} -> {node.value}"

    def _op_oido(self, unit: ast.TranslationUnit, rng: RandomSource) -> Optional[str]:
        nodes = find_nodes(unit, ast.IncDec)
        if not nodes:
            return None
        node = rng.choice(nodes)
        node.op = "--" if node.op == "++" else "++"
        return "incdec swap"

    def _op_sdl(self, unit: ast.TranslationUnit, rng: RandomSource) -> Optional[str]:
        blocks = find_nodes(unit, ast.CompoundStmt,
                            lambda b: any(not isinstance(s, ast.DeclStmt)
                                          for s in b.stmts))
        if not blocks:
            return None
        block = rng.choice(blocks)
        candidates = [i for i, s in enumerate(block.stmts)
                      if not isinstance(s, (ast.DeclStmt, ast.ReturnStmt))]
        if not candidates:
            return None
        index = rng.choice(candidates)
        removed = block.stmts.pop(index)
        return f"deleted {type(removed).__name__}"

    def _op_abs(self, unit: ast.TranslationUnit, rng: RandomSource) -> Optional[str]:
        nodes = [n for n in find_nodes(unit, ast.Identifier)
                 if not self._is_store_target(unit, n)]
        if not nodes:
            return None
        node = rng.choice(nodes)
        negated = ast.UnaryOp("-", ast.Identifier(node.name, loc=node.loc),
                              loc=node.loc)
        if not replace_node(unit, node, negated):
            return None
        return f"negated {node.name}"

    @staticmethod
    def _is_store_target(unit: ast.TranslationUnit, node: ast.Identifier) -> bool:
        for parent in walk(unit):
            if isinstance(parent, ast.Assignment) and parent.target is node:
                return True
            if isinstance(parent, ast.IncDec) and parent.operand is node:
                return True
        return False
