"""Scaled evaluation drivers for the paper's experiments (RQ1-RQ4).

Every experiment of §4 has a driver here that the benchmark harness (and
the examples) call.  The paper's campaign ran for five months on two 64-core
servers; these drivers run the same pipelines at a configurable, much
smaller scale and return structured results from which the tables/figures
are printed.  The bug-finding campaign result is cached per scale so that
Table 3, Table 6 and Figures 7/10/11 — which all view the same campaign —
only pay for it once per session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compilers.compiler import make_compiler
from repro.compilers.options import CompileOptions
from repro.core.crash_site import is_sanitizer_bug_from_results
from repro.core.fuzzer import CampaignConfig, CampaignResult
from repro.core.insertion import UBProgram
from repro.core.ub_types import ALL_UB_TYPES, UBType, ub_type_of_report
from repro.core.ubgen import UBGenerator
from repro.coverage.report import CoverageReport, report_from_tracker
from repro.coverage.tracker import CoverageTracker
from repro.sanitizers.registry import sanitizers_supported_by
from repro.seedgen.config import GeneratorConfig
from repro.seedgen.csmith import CsmithGenerator, CsmithNoSafeGenerator, SeedProgram
from repro.seedgen.juliet import generate_juliet_suite
from repro.seedgen.music import MusicMutator
from repro.utils.errors import CompilationError, GenerationError, ReproError

# ---------------------------------------------------------------------------
# RQ1: bug finding (Table 3, Table 6, Figures 7/10/11)
# ---------------------------------------------------------------------------

class CampaignCache:
    """An explicit, clearable cache of campaign results.

    Keys are :func:`repro.orchestrator.config_fingerprint` digests, which
    cover *every* campaign knob — two configs differing in any field (e.g.
    ``triage`` or ``compilers``, which the old ad-hoc tuple key ignored)
    can never collide.  Worker count is deliberately not part of the key:
    parallel and serial runs of the same config produce identical results.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, CampaignResult] = {}

    def get(self, fingerprint: str) -> Optional[CampaignResult]:
        return self._entries.get(fingerprint)

    def put(self, fingerprint: str, result: CampaignResult) -> None:
        self._entries[fingerprint] = result

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_CAMPAIGN_CACHE = CampaignCache()


def clear_campaign_cache() -> None:
    """Drop every cached campaign result (frees the corpus-sized memory)."""
    _CAMPAIGN_CACHE.clear()


def run_bug_finding_campaign(num_seeds: int = 6, rng_seed: int = 2024,
                             opt_levels: Tuple[str, ...] = ("-O0", "-O1", "-Os",
                                                            "-O2", "-O3"),
                             max_programs_per_type: int = 2,
                             use_cache: bool = True,
                             workers: int = 1,
                             **config_overrides) -> CampaignResult:
    """Run (or reuse) the scaled RQ1 campaign through the orchestrator.

    ``workers`` shards the campaign over that many processes; extra
    :class:`~repro.core.fuzzer.CampaignConfig` fields (``compilers``,
    ``triage``, ...) can be passed as keyword overrides.  Results are cached
    per full-config fingerprint, so neither ``workers`` nor the knob subset
    used to build the key can make distinct configs collide.
    """
    from repro.orchestrator import OrchestratedCampaign, config_fingerprint
    config = CampaignConfig(num_seeds=num_seeds, rng_seed=rng_seed,
                            opt_levels=opt_levels,
                            max_programs_per_type=max_programs_per_type,
                            **config_overrides)
    fingerprint = config_fingerprint(config)
    if use_cache:
        cached = _CAMPAIGN_CACHE.get(fingerprint)
        if cached is not None:
            return cached
    result = OrchestratedCampaign(config, workers=workers).run()
    if use_cache:
        _CAMPAIGN_CACHE.put(fingerprint, result)
    return result


# ---------------------------------------------------------------------------
# RQ2: generator comparison (Table 4) and the Juliet experiment
# ---------------------------------------------------------------------------

@dataclass
class GeneratorComparison:
    """Counts of UB programs per generator per UB type (Table 4)."""

    counts: Dict[str, Dict[UBType, int]] = field(default_factory=dict)
    no_ub: Dict[str, Optional[int]] = field(default_factory=dict)
    totals: Dict[str, int] = field(default_factory=dict)
    programs: Dict[str, List[UBProgram]] = field(default_factory=dict)
    seeds: List[SeedProgram] = field(default_factory=list)

    def row(self, generator: str) -> List[object]:
        counts = self.counts.get(generator, {})
        cells: List[object] = [generator]
        for ub_type in ALL_UB_TYPES:
            cells.append(counts.get(ub_type, 0))
        cells.append(self.totals.get(generator, 0))
        no_ub = self.no_ub.get(generator)
        cells.append("-" if no_ub is None else no_ub)
        return cells


_UB_CLASSIFIER_CONFIGS = (
    ("gcc", "asan"), ("gcc", "ubsan"), ("llvm", "msan"),
)


def classify_ub(source: str, max_steps: int = 120_000) -> Optional[UBType]:
    """Run a program under all sanitizers at -O0 and classify its UB.

    Returns the UB type of the first sanitizer report, or None when no
    sanitizer reports anything (the program is treated as UB-free).  This is
    the paper's procedure for labelling MUSIC / Csmith-NoSafe programs
    (§4.3, footnote 4).
    """
    for compiler_name, sanitizer in _UB_CLASSIFIER_CONFIGS:
        if sanitizer not in sanitizers_supported_by(compiler_name):
            continue
        compiler = make_compiler(compiler_name, defect_registry=[])
        try:
            binary = compiler.compile(source, CompileOptions(opt_level="-O0",
                                                             sanitizer=sanitizer))
        except CompilationError:
            continue
        result = binary.run(max_steps=max_steps)
        if result.crashed and result.report is not None:
            ub = ub_type_of_report(result.report.kind)
            if ub is not None:
                return ub
    return None


_COMPARISON_CACHE: Dict[tuple, "GeneratorComparison"] = {}


def run_generator_comparison(num_seeds: int = 6, rng_seed: int = 7,
                             programs_per_seed: int = 12,
                             max_programs_per_type: int = 2,
                             use_cache: bool = True) -> GeneratorComparison:
    """The Table 4 experiment: UBfuzz vs MUSIC vs Csmith-NoSafe."""
    cache_key = (num_seeds, rng_seed, programs_per_seed, max_programs_per_type)
    if use_cache and cache_key in _COMPARISON_CACHE:
        return _COMPARISON_CACHE[cache_key]
    comparison = GeneratorComparison()
    seed_gen = CsmithGenerator(GeneratorConfig(seed=rng_seed))
    seeds = seed_gen.generate_many(num_seeds)
    comparison.seeds = seeds

    # UBfuzz: UB type known by construction, no "No UB" column (paper: "-").
    ub_generator = UBGenerator(seed=rng_seed,
                               max_programs_per_type=max_programs_per_type)
    ubfuzz_counts: Dict[UBType, int] = {ub: 0 for ub in ALL_UB_TYPES}
    ubfuzz_programs: List[UBProgram] = []
    for seed in seeds:
        for ub_type, programs in ub_generator.generate_all(seed).items():
            ubfuzz_counts[ub_type] += len(programs)
            ubfuzz_programs.extend(programs)
    comparison.counts["ubfuzz"] = ubfuzz_counts
    comparison.totals["ubfuzz"] = sum(ubfuzz_counts.values())
    comparison.no_ub["ubfuzz"] = None
    comparison.programs["ubfuzz"] = ubfuzz_programs

    # MUSIC: syntactic mutants, classified by running the sanitizers.
    mutator = MusicMutator(seed=rng_seed)
    music_counts: Dict[UBType, int] = {ub: 0 for ub in ALL_UB_TYPES}
    music_programs: List[UBProgram] = []
    music_no_ub = 0
    for seed in seeds:
        for mutant in mutator.mutate(seed, count=programs_per_seed):
            ub_type = classify_ub(mutant.source)
            if ub_type is None:
                music_no_ub += 1
                continue
            music_counts[ub_type] += 1
            music_programs.append(UBProgram(source=mutant.source, ub_type=ub_type,
                                            seed_index=mutant.seed_index,
                                            generator="music",
                                            description=mutant.description))
    comparison.counts["music"] = music_counts
    comparison.totals["music"] = sum(music_counts.values())
    comparison.no_ub["music"] = music_no_ub
    comparison.programs["music"] = music_programs

    # Csmith-NoSafe: standalone generation (no seed needed), same classification.
    nosafe_gen = CsmithNoSafeGenerator(GeneratorConfig(seed=rng_seed + 1))
    nosafe_counts: Dict[UBType, int] = {ub: 0 for ub in ALL_UB_TYPES}
    nosafe_programs: List[UBProgram] = []
    nosafe_no_ub = 0
    total_nosafe = num_seeds * programs_per_seed
    for index in range(total_nosafe):
        try:
            program = nosafe_gen.generate(index)
        except GenerationError:
            continue
        ub_type = classify_ub(program.source)
        if ub_type is None:
            nosafe_no_ub += 1
            continue
        nosafe_counts[ub_type] += 1
        nosafe_programs.append(UBProgram(source=program.source, ub_type=ub_type,
                                         seed_index=index,
                                         generator="csmith-nosafe"))
    comparison.counts["csmith-nosafe"] = nosafe_counts
    comparison.totals["csmith-nosafe"] = sum(nosafe_counts.values())
    comparison.no_ub["csmith-nosafe"] = nosafe_no_ub
    comparison.programs["csmith-nosafe"] = nosafe_programs

    if use_cache:
        _COMPARISON_CACHE[cache_key] = comparison
    return comparison


@dataclass
class BaselineBugHunt:
    """Result of testing sanitizers with a baseline corpus (MUSIC,
    Csmith-NoSafe or Juliet): how many FN bugs did the oracle confirm?"""

    corpus: str
    programs_tested: int
    fn_bugs_found: int


def run_baseline_bug_hunt(programs: List[UBProgram], corpus: str,
                          opt_levels: Tuple[str, ...] = ("-O0", "-O2", "-O3"),
                          max_programs: int = 40) -> BaselineBugHunt:
    """Feed a baseline corpus through differential testing + the oracle."""
    from repro.core.differential import DifferentialTester
    tester = DifferentialTester(opt_levels=opt_levels)
    fn_bugs = 0
    tested = 0
    for program in programs[:max_programs]:
        result = tester.test(program)
        tested += 1
        if result.fn_candidates:
            fn_bugs += len(result.fn_candidates)
    return BaselineBugHunt(corpus=corpus, programs_tested=tested,
                           fn_bugs_found=fn_bugs)


def juliet_programs(cases_per_type: int = 3) -> List[UBProgram]:
    """The Juliet-style corpus as UBProgram objects."""
    return [UBProgram(source=case.source, ub_type=case.ub_type,
                      generator="juliet", description=case.name)
            for case in generate_juliet_suite(cases_per_type)]


# ---------------------------------------------------------------------------
# RQ3: crash-site mapping accuracy
# ---------------------------------------------------------------------------

@dataclass
class OracleAccuracy:
    """Precision/recall of crash-site mapping against ground truth."""

    discrepant_programs: int
    selected: int
    dropped: int
    true_positives: int
    false_positives: int
    sampled_dropped: int
    missed_bugs_in_sample: int

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 1.0

    @property
    def recall_on_sample(self) -> float:
        relevant = self.true_positives + self.missed_bugs_in_sample
        return self.true_positives / relevant if relevant else 1.0


def evaluate_oracle_accuracy(campaign: CampaignResult,
                             dropped_sample: int = 50) -> OracleAccuracy:
    """RQ3: compare the oracle's verdicts against ground truth.

    Ground truth for "the silent configuration really has a sanitizer FN
    bug" is obtained by recompiling the program for that configuration with
    an *empty defect registry*: if the defect-free sanitizer detects the UB,
    the miss was caused by a seeded defect (a true bug); if it still misses,
    the UB was optimized away and the discrepancy was optimization-caused.
    """
    selected = 0
    true_positives = 0
    false_positives = 0
    dropped_cases = []

    for diff in campaign.differential_results:
        if not diff.has_discrepancy:
            continue
        for candidate in diff.fn_candidates:
            selected += 1
            if _ground_truth_is_bug(candidate.program, candidate.missing.config):
                true_positives += 1
            else:
                false_positives += 1
        # Optimization-classified discrepancies: the dropped set.
        if diff.optimization_discrepancies:
            silent_outcomes = [o for o in diff.outcomes
                               if o.result is not None and o.result.exited_normally]
            for outcome in silent_outcomes:
                if any(c.missing.config == outcome.config for c in diff.fn_candidates):
                    continue
                dropped_cases.append((diff.program, outcome.config))

    missed = 0
    sample = dropped_cases[:dropped_sample]
    for program, config in sample:
        if _ground_truth_is_bug(program, config):
            missed += 1

    discrepant = sum(1 for d in campaign.differential_results if d.has_discrepancy)
    return OracleAccuracy(discrepant_programs=discrepant, selected=selected,
                          dropped=len(dropped_cases),
                          true_positives=true_positives,
                          false_positives=false_positives,
                          sampled_dropped=len(sample),
                          missed_bugs_in_sample=missed)


def _ground_truth_is_bug(program: UBProgram, config) -> bool:
    """Would a defect-free build of this configuration detect the UB?"""
    compiler = make_compiler(config.compiler, defect_registry=[])
    try:
        binary = compiler.compile(program.source,
                                  CompileOptions(opt_level=config.opt_level,
                                                 sanitizer=config.sanitizer))
    except CompilationError:
        return False
    result = binary.run(max_steps=150_000)
    return result.crashed


# ---------------------------------------------------------------------------
# RQ4: coverage (Table 5)
# ---------------------------------------------------------------------------

def measure_corpus_coverage(sources_by_corpus: Dict[str, List[str]],
                            compilers: Tuple[str, ...] = ("gcc", "llvm"),
                            opt_level: str = "-O2",
                            max_programs: int = 60) -> Dict[str, Dict[str, CoverageReport]]:
    """Compile each corpus under a coverage tracker (Table 5).

    Returns ``{compiler: {corpus: CoverageReport}}``.  Each program is
    compiled once per compiler with every sanitizer that compiler supports,
    mirroring the paper's Gcov measurement over sanitizer-related files.
    """
    # Warm the process-wide defect registry before tracing starts: its
    # one-time construction would otherwise be credited to whichever corpus
    # happens to compile first, skewing the cross-corpus comparison.
    from repro.sanitizers.defects import default_defects
    default_defects()
    results: Dict[str, Dict[str, CoverageReport]] = {name: {} for name in compilers}
    for compiler_name in compilers:
        for corpus, sources in sources_by_corpus.items():
            tracker = CoverageTracker()
            compiler = make_compiler(compiler_name, coverage=tracker)
            with tracker:
                for source in sources[:max_programs]:
                    for sanitizer in sanitizers_supported_by(compiler_name):
                        try:
                            compiler.compile(source,
                                             CompileOptions(opt_level=opt_level,
                                                            sanitizer=sanitizer))
                        except ReproError:
                            continue
            results[compiler_name][corpus] = report_from_tracker(
                tracker, corpus, compiler_name)
    return results
