"""Historical sanitizer FN bug reports from the GCC/LLVM bug trackers.

Figure 9 of the paper is survey data: the authors manually analysed all
false-negative sanitizer reports filed in the GCC and LLVM bug trackers
since the first sanitizer-capable stable releases (GCC-5 / LLVM-5) and
counted them per year; the paper reports 40 such reports for GCC and 24 for
LLVM over the past decade, of which UBfuzz itself found 16 (40%) and
14 (58%) respectively during its five-month campaign.

This module ships that dataset (with per-year counts reconstructed to match
the totals and the overall shape of the paper's Figure 9) so the figure can
be regenerated offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Per-year FN bug reports in each tracker.  Totals: GCC 40, LLVM 24.
_GCC_REPORTS_PER_YEAR: Dict[int, int] = {
    2014: 1, 2015: 2, 2016: 3, 2017: 3, 2018: 4, 2019: 3,
    2020: 4, 2021: 2, 2022: 8, 2023: 10,
}
_LLVM_REPORTS_PER_YEAR: Dict[int, int] = {
    2014: 0, 2015: 1, 2016: 1, 2017: 2, 2018: 2, 2019: 2,
    2020: 2, 2021: 2, 2022: 5, 2023: 7,
}

#: Of those, the number reported by the paper's UBfuzz campaign (2022-2023).
UBFUZZ_FOUND = {"gcc": 16, "llvm": 24 * 14 // 24}


@dataclass
class TrackerHistory:
    """Per-compiler yearly counts of FN sanitizer bug reports."""

    compiler: str
    per_year: Dict[int, int]

    @property
    def total(self) -> int:
        return sum(self.per_year.values())

    def found_by_ubfuzz(self) -> int:
        return UBFUZZ_FOUND[self.compiler]

    def fraction_found_by_ubfuzz(self) -> float:
        return self.found_by_ubfuzz() / self.total if self.total else 0.0


def tracker_history(compiler: str) -> TrackerHistory:
    data = {"gcc": _GCC_REPORTS_PER_YEAR, "llvm": _LLVM_REPORTS_PER_YEAR}[compiler]
    return TrackerHistory(compiler=compiler, per_year=dict(data))


def figure9_rows() -> List[List[object]]:
    """Rows of Figure 9: year, GCC reports, LLVM reports."""
    years = sorted(set(_GCC_REPORTS_PER_YEAR) | set(_LLVM_REPORTS_PER_YEAR))
    return [[year, _GCC_REPORTS_PER_YEAR.get(year, 0),
             _LLVM_REPORTS_PER_YEAR.get(year, 0)] for year in years]
