"""Render campaign/experiment results as the paper's tables.

Each ``tableN_*`` function returns ``(headers, rows)`` ready to be printed
with :func:`repro.utils.text.format_table`; the benchmark harness prints
them so the regenerated table sits next to the paper's in the bench output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.campaign import GeneratorComparison
from repro.core.bugs import STATUS_CONFIRMED, STATUS_FIXED, STATUS_INVALID, BugReport
from repro.core.fuzzer import CampaignResult
from repro.core.ub_types import ALL_UB_TYPES, SANITIZERS_FOR_UB, UBType
from repro.coverage.report import CoverageReport
from repro.sanitizers.defects import CATEGORIES

Rows = List[List[object]]
Table = Tuple[List[str], Rows]

#: The (compiler, sanitizer) columns of Table 3, in the paper's order.
TABLE3_COLUMNS = (("gcc", "asan"), ("gcc", "ubsan"),
                  ("llvm", "asan"), ("llvm", "ubsan"), ("llvm", "msan"))


def table2_sanitizer_support() -> Table:
    """Table 2: UB types supported by each sanitizer."""
    headers = ["UB", "Sanitizer"]
    rows: Rows = []
    for ub_type in ALL_UB_TYPES:
        sanitizers = ", ".join(s.replace("asan", "ASan").replace("ubsan", "UBSan")
                               .replace("msan", "MSan")
                               for s in SANITIZERS_FOR_UB[ub_type])
        rows.append([ub_type.display_name, sanitizers])
    return headers, rows


def table3_bug_status(campaign: CampaignResult) -> Table:
    """Table 3: reported/confirmed/fixed/invalid bugs per compiler+sanitizer."""
    headers = ["Status"] + [f"{c.upper()} {s.upper()}" for c, s in TABLE3_COLUMNS] + ["Total"]
    by_column: Dict[Tuple[str, str], List[BugReport]] = {col: [] for col in TABLE3_COLUMNS}
    for report in campaign.bug_reports:
        key = (report.compiler, report.sanitizer)
        if key in by_column:
            by_column[key].append(report)

    def count(column: Tuple[str, str], predicate) -> int:
        return sum(1 for report in by_column[column] if predicate(report))

    rows: Rows = []
    predicates = [
        ("Reported", lambda r: True),
        ("Confirmed", lambda r: r.status in (STATUS_CONFIRMED, STATUS_FIXED)),
        ("Fixed", lambda r: r.status == STATUS_FIXED),
        ("Invalid", lambda r: r.status == STATUS_INVALID),
    ]
    for label, predicate in predicates:
        cells: List[object] = [label]
        total = 0
        for column in TABLE3_COLUMNS:
            value = count(column, predicate)
            total += value
            cells.append(value)
        cells.append(total)
        rows.append(cells)
    return headers, rows


def table4_generator_comparison(comparison: GeneratorComparison) -> Table:
    """Table 4: number of UB programs per generator, per UB type."""
    headers = (["Generator"] + [ub.display_name for ub in ALL_UB_TYPES]
               + ["Total", "No UB"])
    rows = [comparison.row("ubfuzz"), comparison.row("music"),
            comparison.row("csmith-nosafe")]
    return headers, rows


def table5_coverage(reports: Dict[str, Dict[str, CoverageReport]]) -> Table:
    """Table 5: line/function/branch coverage per corpus and compiler."""
    headers = ["Corpus", "GCC LC", "GCC FC", "GCC BC",
               "LLVM LC", "LLVM FC", "LLVM BC"]
    corpora: List[str] = []
    for per_corpus in reports.values():
        for name in per_corpus:
            if name not in corpora:
                corpora.append(name)
    order = ["seeds", "music", "csmith-nosafe", "ubfuzz"]
    corpora.sort(key=lambda name: order.index(name) if name in order else len(order))
    rows: Rows = []
    for corpus in corpora:
        cells: List[object] = [corpus]
        for compiler in ("gcc", "llvm"):
            report = reports.get(compiler, {}).get(corpus)
            if report is None:
                cells.extend(["-", "-", "-"])
            else:
                cells.extend([f"{100 * report.line_coverage:.1f}%",
                              f"{100 * report.function_coverage:.1f}%",
                              f"{100 * report.branch_coverage:.1f}%"])
        rows.append(cells)
    return headers, rows


def table6_root_causes(campaign: CampaignResult) -> Table:
    """Table 6: bug categories according to root cause analysis."""
    headers = ["Category", "GCC", "LLVM"]
    counts: Dict[str, Dict[str, int]] = {category: {"gcc": 0, "llvm": 0}
                                         for category in CATEGORIES}
    for report in campaign.bug_reports:
        if report.category is None:
            continue
        counts.setdefault(report.category, {"gcc": 0, "llvm": 0})
        counts[report.category][report.compiler] = (
            counts[report.category].get(report.compiler, 0) + 1)
    rows = [[category, values.get("gcc", 0), values.get("llvm", 0)]
            for category, values in counts.items()]
    return headers, rows


def table_reduction_quality(records) -> Table:
    """Reduction quality per crash bucket: original vs. reduced token
    counts, predicate evaluations spent, wall-clock.

    *records* is a sequence of
    :class:`~repro.reduction.predicates.ReductionRecord` (e.g.
    ``OrchestratedCampaign.reductions``)."""
    headers = ["Bucket", "Orig tok", "Red tok", "Reduction", "Evals", "Seconds"]
    rows: Rows = []
    for record in records:
        rows.append([record.label, record.original_tokens,
                     record.reduced_tokens,
                     f"{100 * record.token_reduction:.0f}%",
                     record.predicate_evaluations,
                     f"{record.duration_seconds:.2f}"])
    return headers, rows


def table_marker_survival(result) -> Table:
    """Marker survival per surveyed (compiler, version, opt-pipeline).

    *result* is a :class:`~repro.markers.engine.MarkerCampaignResult`.
    ``Dead kept`` counts retained markers the reference executions never
    reached — the raw material of missed-optimization findings.
    """
    headers = ["Config", "Pipeline", "Planted", "Kept", "Elim", "Dead kept",
               "Survival"]
    rows: Rows = []
    for label in sorted(result.survival):
        survival = result.survival[label]
        rows.append([label, ",".join(survival.pipeline) or "-",
                     survival.planted, survival.retained,
                     survival.eliminated, survival.dead_retained,
                     f"{100 * survival.survival_rate:.0f}%"])
    return headers, rows


def table_marker_findings(result) -> Table:
    """Deduplicated marker findings, one row per bucket.

    *result* is a :class:`~repro.markers.engine.MarkerCampaignResult`;
    buckets are keyed by (kind, compiler, marker site, responsible pass)
    and ``Hits`` counts the raw findings each bucket absorbed.
    """
    headers = ["Kind", "Compiler", "Site", "Pass", "Levels", "Versions",
               "Hits"]
    rows: Rows = []
    for bucket in result.buckets.values():
        finding = bucket.representative
        rows.append([finding.kind, finding.compiler,
                     finding.marker.signature, finding.responsible_pass,
                     ",".join(bucket.opt_levels),
                     ",".join(str(v) for v in sorted(bucket.versions)),
                     bucket.count])
    return headers, rows


def table_stage_profile(profile) -> Table:
    """Where-time-goes breakdown of one campaign, per pipeline stage.

    *profile* is a :class:`~repro.telemetry.profile.CampaignProfile` (from
    :func:`repro.telemetry.load_profile`).  ``Total`` is inclusive stage
    time; ``Self`` excludes nested stages (e.g. the compiles an oracle run
    triggers), so the ``Share`` column — self time over total self time —
    sums to ~100% and answers "which stage should I optimize".
    """
    headers = ["Stage", "Calls", "Total (s)", "Self (s)", "Mean (ms)", "Share"]
    total_self = sum(stage.self_seconds for stage in profile.stages) or 1.0
    rows: Rows = []
    for stage in profile.stages:
        rows.append([stage.name, stage.calls,
                     f"{stage.total_seconds:.3f}",
                     f"{stage.self_seconds:.3f}",
                     f"{stage.mean_ms:.2f}",
                     f"{100 * stage.self_seconds / total_self:.1f}%"])
    return headers, rows


def table_campaign_trend(metric: str, points) -> Table:
    """One metric's value across stored campaign runs, oldest first.

    *points* is a sequence of :class:`~repro.telemetry.store.TrendPoint`
    (from :meth:`~repro.telemetry.store.TelemetryStore.trend`).  ``Δ%`` is
    the change relative to the previous run, so a creeping slowdown in,
    say, ``stage.differential.execute.self_seconds`` shows up as a column
    of positive deltas long before it trips the regression checker.
    """
    headers = ["Run", "Git", "Campaign", metric, "Δ%"]
    rows: Rows = []
    previous: float | None = None
    for point in points:
        if previous in (None, 0.0):
            delta = "-"
        else:
            delta = f"{100 * (point.value - previous) / previous:+.1f}%"
        rows.append([point.run_id, (point.git_sha or "?")[:10],
                     (point.campaign or "?")[:16],
                     f"{point.value:.6g}", delta])
        previous = point.value
    return headers, rows


def table_bucket_lifetimes(buckets: Sequence[dict]) -> Table:
    """Cross-campaign lifetime of every finding bucket.

    *buckets* is the output of
    :meth:`~repro.corpusdb.db.FindingsDB.query_buckets`.  ``Lifetime`` is
    last-seen minus first-seen; a bucket that keeps recurring across
    campaigns (many campaigns, long lifetime) is a stable compiler defect,
    while single-campaign buckets are either fresh or flaky.
    """
    headers = ["Bucket", "Kind", "Campaigns", "Hits", "First campaign",
               "Lifetime (h)"]
    rows: Rows = []
    for bucket in buckets:
        first = bucket.get("first_seen_at") or 0.0
        last = bucket.get("last_seen_at") or first
        lifetime = f"{(last - first) / 3600.0:.2f}" if first else "-"
        rows.append([bucket["slug"], bucket["kind"], bucket["campaigns"],
                     bucket["count"],
                     (bucket.get("first_campaign_key") or "?")[-32:],
                     lifetime])
    return headers, rows


def table_campaign_recurrence(campaigns: Sequence[dict]) -> Table:
    """Per-campaign new-vs-recurrent bucket split, oldest campaign first.

    *campaigns* is the output of
    :meth:`~repro.corpusdb.db.FindingsDB.campaign_recurrence`.  The
    ``Recurrent`` column is the cross-campaign dedup payoff: buckets the
    campaign re-found that an earlier campaign had already recorded.
    """
    headers = ["Campaign", "Mode", "Buckets", "New", "Recurrent", "Hits"]
    rows: Rows = []
    for campaign in campaigns:
        rows.append([(campaign["key"] or "?")[-40:], campaign["mode"],
                     campaign["buckets_hit"], campaign["new_buckets"],
                     campaign["recurrent_buckets"], campaign["hits"]])
    return headers, rows


def table_attribution(attributions: Sequence) -> Table:
    """Bisection attributions: one row per finding sent through the bisector.

    *attributions* is a sequence of
    :class:`~repro.triage.attribution.Attribution`.  ``Responsible`` is the
    timeline event id the bisector pinned (``optimizer-defect-introduced:
    gcc-11:constprop``-style), ``Window`` the contiguous affected-version
    range, and ``Probes`` the number of compile-and-check probes spent —
    bounded by :func:`~repro.triage.bisector.probe_budget`.
    """
    headers = ["Bucket", "Kind", "Compiler", "Window", "Responsible",
               "Status", "Probes"]
    rows: Rows = []
    for attribution in attributions:
        result = attribution.result
        rows.append([attribution.slug, attribution.kind, attribution.compiler,
                     result.window_label, attribution.responsible,
                     attribution.status, result.probes])
    return headers, rows


def table_known_bugs(known_bugs: Sequence[dict]) -> Table:
    """The known-bug patch database: every attributed bucket signature.

    *known_bugs* is the output of
    :meth:`~repro.corpusdb.db.FindingsDB.known_bugs`.  ``Suppressed`` counts
    campaigns that re-found the bucket after attribution and filed a
    suppression-ledger line instead of a fresh report.
    """
    headers = ["Bucket", "Kind", "Compiler", "Window", "Responsible",
               "Status", "Suppressed"]
    rows: Rows = []
    for bug in known_bugs:
        introduced = bug.get("introduced_version")
        fixed = bug.get("fixed_version")
        window = bug.get("window") or (
            f"[{introduced}, {fixed if fixed is not None else 'open'})"
            if introduced is not None else "-")
        suppressed = (f"{bug.get('suppressed_campaigns', 0)} campaign(s)"
                      if bug.get("suppressed_campaigns") else "-")
        rows.append([bug.get("slug") or bug["signature"][:40],
                     bug["kind"], bug.get("compiler") or "-", window,
                     bug["responsible"], bug["status"], suppressed])
    return headers, rows


def bug_summary_rows(reports: Sequence[BugReport]) -> Rows:
    """A flat listing of found bugs (used by examples and docs)."""
    rows: Rows = []
    for report in reports:
        rows.append([report.bug_id, report.compiler, report.sanitizer,
                     report.ub_type.display_name, report.status,
                     report.category or "-",
                     ",".join(report.affected_opt_levels) or "-"])
    return rows
