"""Render campaign results as the paper's figures (as data series).

Figures are returned as ``(headers, rows)`` just like the tables: the
benchmark harness prints them as ASCII series, which is the offline
equivalent of the paper's bar charts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.bugtracker import figure9_rows, tracker_history
from repro.compilers.versions import stable_versions, version_label
from repro.core.fuzzer import CampaignResult
from repro.core.ub_types import ALL_UB_TYPES, UBType

Rows = List[List[object]]
Figure = Tuple[List[str], Rows]


def figure7_bugs_per_ub(campaign: CampaignResult) -> Figure:
    """Figure 7: number of bugs triggered by each kind of UB.

    Buffer overflow is split by detecting sanitizer (ASan vs UBSan), as in
    the paper.
    """
    headers = ["UB kind", "Bugs"]
    counts: Dict[str, int] = {}
    for report in campaign.bug_reports:
        label = report.ub_type.display_name
        if report.ub_type in (UBType.BUFFER_OVERFLOW_ARRAY,
                              UBType.BUFFER_OVERFLOW_POINTER):
            label = f"BufOverflow ({report.sanitizer.upper()})"
        counts[label] = counts.get(label, 0) + 1
    rows = [[label, count] for label, count in
            sorted(counts.items(), key=lambda item: -item[1])]
    return headers, rows


def figure9_tracker_history() -> Figure:
    """Figure 9: sanitizer FN bug reports per year in the bug trackers."""
    headers = ["Year", "GCC reports", "LLVM reports"]
    return headers, figure9_rows()


def figure9_summary() -> Dict[str, Dict[str, float]]:
    """The headline numbers quoted in §4.2 (totals and UBfuzz's share)."""
    summary = {}
    for compiler in ("gcc", "llvm"):
        history = tracker_history(compiler)
        summary[compiler] = {
            "total_reports": history.total,
            "found_by_ubfuzz": history.found_by_ubfuzz(),
            "fraction": history.fraction_found_by_ubfuzz(),
        }
    return summary


def figure10_affected_versions(campaign: CampaignResult) -> Figure:
    """Figure 10: stable compiler versions affected by the found bugs."""
    headers = ["Version", "Affected bugs"]
    rows: Rows = []
    for compiler in ("gcc", "llvm"):
        for version in stable_versions(compiler):
            affected = sum(1 for report in campaign.bug_reports
                           if report.compiler == compiler
                           and version in report.affected_versions)
            rows.append([version_label(compiler, version), affected])
    return headers, rows


def figure11_affected_opt_levels(campaign: CampaignResult) -> Figure:
    """Figure 11: number of bugs affecting each optimization level."""
    headers = ["Optimization level", "Affected bugs"]
    levels = ("-O0", "-O1", "-Os", "-O2", "-O3")
    rows = [[level, sum(1 for report in campaign.bug_reports
                        if level in report.affected_opt_levels)]
            for level in levels]
    return headers, rows


def ascii_bar_chart(rows: Rows, value_index: int = 1, width: int = 40) -> str:
    """Tiny ASCII bar chart used when printing figures in the benches."""
    if not rows:
        return "(no data)"
    max_value = max(float(row[value_index]) for row in rows) or 1.0
    lines = []
    for row in rows:
        value = float(row[value_index])
        bar = "#" * int(round(width * value / max_value))
        lines.append(f"{str(row[0]):<24} {bar} {row[value_index]}")
    return "\n".join(lines)
