"""Evaluation drivers and table/figure renderers for the paper's experiments."""

from repro.analysis.bugtracker import TrackerHistory, figure9_rows, tracker_history
from repro.analysis.campaign import (
    BaselineBugHunt,
    CampaignCache,
    GeneratorComparison,
    OracleAccuracy,
    classify_ub,
    clear_campaign_cache,
    evaluate_oracle_accuracy,
    juliet_programs,
    measure_corpus_coverage,
    run_baseline_bug_hunt,
    run_bug_finding_campaign,
    run_generator_comparison,
)
from repro.analysis.figures import (
    ascii_bar_chart,
    figure7_bugs_per_ub,
    figure9_summary,
    figure9_tracker_history,
    figure10_affected_versions,
    figure11_affected_opt_levels,
)
from repro.analysis.tables import (
    bug_summary_rows,
    table2_sanitizer_support,
    table3_bug_status,
    table4_generator_comparison,
    table5_coverage,
    table6_root_causes,
    table_attribution,
    table_bucket_lifetimes,
    table_campaign_recurrence,
    table_campaign_trend,
    table_known_bugs,
    table_marker_findings,
    table_marker_survival,
    table_reduction_quality,
    table_stage_profile,
)

__all__ = [
    "TrackerHistory", "figure9_rows", "tracker_history",
    "BaselineBugHunt", "CampaignCache", "GeneratorComparison", "OracleAccuracy",
    "classify_ub", "clear_campaign_cache",
    "evaluate_oracle_accuracy", "juliet_programs",
    "measure_corpus_coverage", "run_baseline_bug_hunt",
    "run_bug_finding_campaign", "run_generator_comparison",
    "ascii_bar_chart", "figure7_bugs_per_ub", "figure9_summary",
    "figure9_tracker_history", "figure10_affected_versions",
    "figure11_affected_opt_levels",
    "bug_summary_rows", "table2_sanitizer_support", "table3_bug_status",
    "table4_generator_comparison", "table5_coverage", "table6_root_causes",
    "table_attribution", "table_bucket_lifetimes",
    "table_campaign_recurrence", "table_campaign_trend", "table_known_bugs",
    "table_marker_findings", "table_marker_survival",
    "table_reduction_quality", "table_stage_profile",
]
