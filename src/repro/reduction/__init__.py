"""Hierarchical parallel test-case reduction (the paper's C-Reduce step).

UBfuzz's bug-reporting workflow reduces every crashing program to a minimal
reproducer before triage.  This package replaces the original single-pass
statement dropper with a multi-pass hierarchical subsystem:

* :mod:`repro.reduction.reducer`    — :class:`HierarchicalReducer`: ddmin
  over top-level declarations and statements, then AST-level simplification
  passes run to fixpoint;
* :mod:`repro.reduction.passes`     — deterministic candidate generation
  (chunked removal, block flattening, loop unswitching, expression
  constant-folding, declaration pruning);
* :mod:`repro.reduction.evaluate`   — serial and pooled candidate
  evaluation; each pool worker owns a predicate with its own
  :class:`~repro.compilers.cache.CompilationCache`;
* :mod:`repro.reduction.predicates` — FN-bug interestingness predicates and
  :func:`reduce_fn_candidate`, the campaign-facing entry point.

Candidate ordering is deterministic and selection is always *first accepted
in order*, so parallel reduction (``jobs=N``) produces a bit-identical
reduced program to serial reduction.
"""

from repro.reduction.evaluate import (
    PoolEvaluator,
    SerialEvaluator,
    make_evaluator,
)
from repro.reduction.predicates import (
    BugSignature,
    ReductionRecord,
    bug_signature,
    make_fn_bug_predicate,
    make_fn_bug_predicate_factory,
    make_marker_predicate,
    make_marker_predicate_factory,
    make_signature_predicate,
    marker_record_for,
    record_for,
    reduce_fn_candidate,
    reduce_marker_finding,
)
from repro.reduction.reducer import (
    HierarchicalReducer,
    ReductionResult,
    token_count,
)

#: Backward-compatible name: the hierarchical reducer superseded the naive
#: statement-dropping ``ProgramReducer`` but keeps its call surface
#: (``ProgramReducer(predicate).reduce(source)``).
ProgramReducer = HierarchicalReducer

__all__ = [
    "HierarchicalReducer", "ProgramReducer", "ReductionResult", "token_count",
    "BugSignature", "ReductionRecord", "bug_signature",
    "make_fn_bug_predicate", "make_fn_bug_predicate_factory",
    "make_signature_predicate", "record_for", "reduce_fn_candidate",
    "make_marker_predicate", "make_marker_predicate_factory",
    "marker_record_for", "reduce_marker_finding",
    "PoolEvaluator", "SerialEvaluator", "make_evaluator",
]
