"""Candidate evaluation — serial in-process or fanned out over a pool.

The reducer asks one question per reduction step: *which is the first
candidate (in deterministic order) the interestingness predicate accepts?*
:class:`SerialEvaluator` answers it by short-circuiting; :class:`PoolEvaluator`
evaluates candidates in ordered chunks across a :mod:`multiprocessing` pool
and still returns the first accepted index, so the candidate a parallel
reduction applies is exactly the one a serial reduction would have applied.

Predicates are built per process from a zero-argument *factory*: each pool
worker calls the factory once at start-up and keeps the resulting predicate
(and therefore its :class:`~repro.compilers.cache.CompilationCache`-backed
:class:`~repro.core.differential.DifferentialTester`) for its whole life.
Like the campaign executors, the ``fork`` start method is preferred, which
lets factories close over arbitrary objects without pickling.

Predicates must be pure functions of the candidate source: the pool path
may evaluate candidates the serial path would have skipped, and both must
agree on every answer.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Optional, Sequence

Predicate = Callable[[str], bool]
PredicateFactory = Callable[[], Predicate]


class SerialEvaluator:
    """Evaluates candidates in order in the calling process."""

    jobs = 1

    def __init__(self, factory: PredicateFactory) -> None:
        self._factory = factory
        self._predicate: Optional[Predicate] = None
        self.evaluations = 0

    def first_accepted(self, sources: Sequence[str]) -> Optional[int]:
        if self._predicate is None:
            self._predicate = self._factory()
        for index, source in enumerate(sources):
            self.evaluations += 1
            if self._predicate(source):
                return index
        return None

    def close(self) -> None:
        pass


_worker_predicate: Optional[Predicate] = None


def _initialize_worker(factory: PredicateFactory) -> None:
    global _worker_predicate
    _worker_predicate = factory()


def _evaluate_in_worker(source: str) -> bool:
    assert _worker_predicate is not None
    return _worker_predicate(source)


class PoolEvaluator:
    """Evaluates candidates across a worker pool, in ordered chunks.

    Within a chunk every candidate is evaluated concurrently; chunks are
    consumed in order and the scan stops at the first chunk containing an
    accepted candidate.  The returned index is therefore identical to the
    serial scan (a parallel run merely evaluates up to ``chunk_size - 1``
    extra candidates past the winner).
    """

    def __init__(self, factory: PredicateFactory, jobs: int,
                 start_method: Optional[str] = None,
                 chunk_size: Optional[int] = None) -> None:
        if jobs < 2:
            raise ValueError("PoolEvaluator needs jobs >= 2")
        self.jobs = jobs
        self._factory = factory
        self._chunk = chunk_size if chunk_size is not None else 2 * jobs
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self._pool = None
        self.evaluations = 0

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._context.Pool(processes=self.jobs,
                                            initializer=_initialize_worker,
                                            initargs=(self._factory,))
        return self._pool

    def first_accepted(self, sources: Sequence[str]) -> Optional[int]:
        pool = self._ensure_pool()
        for offset in range(0, len(sources), self._chunk):
            chunk = sources[offset:offset + self._chunk]
            verdicts = pool.map(_evaluate_in_worker, chunk, chunksize=1)
            self.evaluations += len(chunk)
            for position, accepted in enumerate(verdicts):
                if accepted:
                    return offset + position
        return None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_evaluator(predicate_factory: PredicateFactory, jobs: int = 1,
                   start_method: Optional[str] = None,
                   chunk_size: Optional[int] = None):
    """``jobs <= 1`` → serial evaluation; otherwise a pool of *jobs* workers."""
    if jobs <= 1:
        return SerialEvaluator(predicate_factory)
    return PoolEvaluator(predicate_factory, jobs, start_method=start_method,
                         chunk_size=chunk_size)
