"""Candidate generation for hierarchical test-case reduction.

Every pass takes the parsed current program and produces *candidate sources*
— programs one deterministic edit smaller or simpler than the current one.
The reducer validates each candidate (it must re-parse and pass semantic
analysis) and keeps the first one the interestingness predicate accepts.

Candidate ordering is deterministic: passes traverse the AST in preorder and
emit edits in a fixed order, so serial and parallel reduction pick the same
winning candidate at every step (see :mod:`repro.reduction.reducer`).

All edits operate on :func:`~repro.cdsl.visitor.fast_clone` copies keyed by
the (clone-stable) ``node_id``, so generating N candidates never mutates the
current program.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.cdsl import ast_nodes as ast
from repro.cdsl.printer import print_program
from repro.cdsl.visitor import fast_clone, parent_map, walk


def _clone_indexed(unit: ast.TranslationUnit):
    copy = fast_clone(unit)
    return copy, {node.node_id: node for node in walk(copy)}


def drop_nodes(unit: ast.TranslationUnit, node_ids: Set[int]) -> str:
    """Print *unit* with every node whose id is in *node_ids* deleted from
    its containing statement/declaration list."""
    copy = fast_clone(unit)
    for node in walk(copy):
        for field_name in node._fields:
            value = getattr(node, field_name, None)
            if isinstance(value, list):
                kept = [item for item in value
                        if not (isinstance(item, ast.Node)
                                and item.node_id in node_ids)]
                # A declaration statement emptied of all its declarators
                # disappears with them.
                kept = [item for item in kept
                        if not (isinstance(item, ast.DeclStmt) and not item.decls)]
                if len(kept) != len(value):
                    setattr(node, field_name, kept)
    return print_program(copy)


def _replace_in_parent(copy_parents, target: ast.Node,
                       replacement: ast.Node) -> bool:
    parent = copy_parents.get(target.node_id)
    if parent is None:
        return False
    for field_name in parent._fields:
        value = getattr(parent, field_name, None)
        if value is target:
            setattr(parent, field_name, replacement)
            return True
        if isinstance(value, list):
            for i, item in enumerate(value):
                if item is target:
                    value[i] = replacement
                    return True
    return False


def _splice_in_parent(copy_parents, target: ast.Stmt,
                      replacement: Sequence[ast.Stmt]) -> bool:
    """Replace a statement with several in its statement list.

    When the target sits in a single-node field instead (an unbraced branch
    or loop body), a single replacement is assigned directly and an empty
    one becomes ``;``."""
    parent = copy_parents.get(target.node_id)
    if parent is None:
        return False
    for field_name in parent._fields:
        value = getattr(parent, field_name, None)
        if isinstance(value, list):
            for i, item in enumerate(value):
                if item is target:
                    value[i:i + 1] = list(replacement)
                    return True
        elif value is target:
            if len(replacement) == 1:
                setattr(parent, field_name, replacement[0])
            elif not replacement:
                setattr(parent, field_name, ast.EmptyStmt(loc=target.loc))
            else:
                return False
            return True
    return False


# ---------------------------------------------------------------------------
# ddmin item enumeration
# ---------------------------------------------------------------------------


def toplevel_items(unit: ast.TranslationUnit) -> List[int]:
    """Node ids of removable top-level declarations (``main`` is kept)."""
    items: List[int] = []
    for decl in unit.decls:
        if isinstance(decl, ast.FunctionDecl) and decl.name == "main":
            continue
        items.append(decl.node_id)
    return items


def statement_items(unit: ast.TranslationUnit) -> List[int]:
    """Node ids of every statement held in a statement list, in preorder.

    Nested compound statements are items themselves (removing one deletes
    the whole block) and so are the statements inside them, which is what
    makes the statement-level ddmin hierarchical.
    """
    items: List[int] = []
    for node in walk(unit):
        if isinstance(node, ast.CompoundStmt):
            for stmt in node.stmts:
                items.append(stmt.node_id)
    return items


# ---------------------------------------------------------------------------
# AST-level passes
# ---------------------------------------------------------------------------


def _as_stmts(stmt: Optional[ast.Stmt]) -> List[ast.Stmt]:
    if stmt is None:
        return []
    if isinstance(stmt, ast.CompoundStmt):
        return list(stmt.stmts)
    return [stmt]


def flatten_candidates(unit: ast.TranslationUnit) -> Iterator[str]:
    """Flatten compound blocks and conditionals into their contents.

    * a block statement nested in a statement list → its statements inline;
    * ``if (c) A else B`` → ``A``, then → ``B`` (branch selection).
    """
    targets: List[Tuple[int, str]] = []
    bodies = {fn.body.node_id for fn in unit.functions if fn.body is not None}
    for node in walk(unit):
        if isinstance(node, ast.CompoundStmt) and node.node_id not in bodies:
            targets.append((node.node_id, "inline"))
        elif isinstance(node, ast.IfStmt):
            targets.append((node.node_id, "then"))
            if node.otherwise is not None:
                targets.append((node.node_id, "else"))
    for node_id, action in targets:
        copy, by_id = _clone_indexed(unit)
        target = by_id[node_id]
        parents = parent_map(copy)
        if action == "inline":
            replacement = list(target.stmts)
        elif action == "then":
            replacement = _as_stmts(target.then)
        else:
            replacement = _as_stmts(target.otherwise)
        if _splice_in_parent(parents, target, replacement):
            yield print_program(copy)


def unswitch_candidates(unit: ast.TranslationUnit) -> Iterator[str]:
    """Unswitch loops to straight-line code: a loop is replaced by one
    unrolled iteration of its body (``for`` keeps its init clause)."""
    loops: List[int] = [node.node_id for node in walk(unit)
                       if isinstance(node, (ast.ForStmt, ast.WhileStmt))]
    for node_id in loops:
        copy, by_id = _clone_indexed(unit)
        loop = by_id[node_id]
        parents = parent_map(copy)
        replacement: List[ast.Stmt] = []
        if isinstance(loop, ast.ForStmt) and loop.init is not None:
            init = loop.init
            if isinstance(init, ast.Expr):
                init = ast.ExprStmt(init, loc=init.loc)
            replacement.append(init)
        replacement.extend(_as_stmts(loop.body))
        if _splice_in_parent(parents, loop, replacement):
            yield print_program(copy)


#: Node types worth trying to collapse into an integer constant.
_SIMPLIFIABLE = (ast.BinaryOp, ast.UnaryOp, ast.Conditional, ast.Cast,
                 ast.Call, ast.CommaExpr, ast.ArraySubscript, ast.Deref,
                 ast.MemberAccess, ast.SizeofExpr)


def _subtree_size(node: ast.Node) -> int:
    return sum(1 for _ in walk(node))


def simplify_candidates(unit: ast.TranslationUnit,
                        cap: int = 64) -> Iterator[str]:
    """Replace composite sub-expressions with the constants ``0`` and ``1``.

    Write targets (assignment left-hand sides, ``&`` and ``++``/``--``
    operands) are skipped — they cannot become literals.  Larger subtrees are
    tried first; at most *cap* sites are attempted per invocation.
    """
    parents = parent_map(unit)

    def is_write_target(expr: ast.Expr) -> bool:
        parent = parents.get(expr.node_id)
        if isinstance(parent, ast.Assignment) and parent.target is expr:
            return True
        if isinstance(parent, (ast.IncDec, ast.AddressOf)):
            return True
        return False

    sites: List[Tuple[int, int, int]] = []  # (-size, order, node_id)
    for order, node in enumerate(walk(unit)):
        if isinstance(node, _SIMPLIFIABLE) and not is_write_target(node):
            sites.append((-_subtree_size(node), order, node.node_id))
    sites.sort()
    for _, _, node_id in sites[:cap]:
        for value in (0, 1):
            copy, by_id = _clone_indexed(unit)
            target = by_id[node_id]
            copy_parents = parent_map(copy)
            literal = ast.IntLiteral(value, loc=target.loc)
            if _replace_in_parent(copy_parents, target, literal):
                yield print_program(copy)


def prune_candidates(unit: ast.TranslationUnit) -> Iterator[str]:
    """Remove declarations whose name is never referenced.

    The first candidate removes *all* unused variables and uncalled
    functions at once (the common big win); the rest retry one at a time in
    case the aggregate edit is rejected.
    """
    used: Set[str] = set()
    for node in walk(unit):
        if isinstance(node, ast.Identifier):
            used.add(node.name)
        elif isinstance(node, ast.Call):
            used.add(node.name)

    unused: List[int] = []
    for node in walk(unit):
        if isinstance(node, ast.VarDecl) and node.name not in used:
            unused.append(node.node_id)
        elif (isinstance(node, ast.FunctionDecl) and node.name != "main"
              and node.name not in used):
            unused.append(node.node_id)
    if not unused:
        return
    if len(unused) > 1:
        yield drop_nodes(unit, set(unused))
    for node_id in unused:
        yield drop_nodes(unit, {node_id})
