"""The hierarchical multi-pass reducer.

:class:`HierarchicalReducer` shrinks a crashing program to a (near) minimal
reproducer while a caller-supplied *interestingness predicate* keeps
accepting the candidate — for sanitizer FN bugs, "the same sanitizer still
misses the same UB that another configuration still detects" (see
:func:`repro.reduction.predicates.make_fn_bug_predicate`).

The reduction runs coarse-to-fine, each phase to fixpoint:

1. **ddmin over top-level declarations** — whole functions and globals go
   first, in exponentially shrinking chunks;
2. **ddmin over statements** — every statement list in the program,
   hierarchically (a nested block is removable as a unit *and* its
   statements are individually removable);
3. **AST passes** — compound-block flattening, loop unswitching to
   straight-line code, expression simplification to constants, and unused
   declaration pruning, repeated until none of them makes progress.

Every candidate must re-parse and pass semantic analysis before the
predicate is consulted, and the first acceptable candidate (in the passes'
deterministic order) is applied.  Candidate evaluation optionally fans out
over a :class:`~repro.reduction.evaluate.PoolEvaluator`; because selection
is by order, not by completion time, ``jobs=N`` produces a bit-identical
reduced program to ``jobs=1``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

from repro.cdsl import ast_nodes as ast
from repro.cdsl.lexer import tokenize
from repro.cdsl.parser import parse_program
from repro.cdsl.sema import analyze
from repro.reduction import passes
from repro.reduction.evaluate import Predicate, PredicateFactory, make_evaluator
from repro.telemetry import runtime as telemetry
from repro.utils.errors import ReductionError, ReproError

logger = logging.getLogger(__name__)


def token_count(source: str) -> int:
    """Number of lexical tokens in *source* (the EOF marker excluded)."""
    try:
        return max(0, len(tokenize(source)) - 1)
    except ReproError:
        return len(source.split())


@dataclass
class ReductionResult:
    """Outcome of one reduction: the final source plus effort counters."""

    original_source: str
    reduced_source: str
    predicate_evaluations: int
    candidates_generated: int
    edits_applied: int
    rounds: int
    duration_seconds: float

    @property
    def original_tokens(self) -> int:
        return token_count(self.original_source)

    @property
    def reduced_tokens(self) -> int:
        return token_count(self.reduced_source)

    @property
    def token_reduction(self) -> float:
        """Fraction of tokens removed: ``1 - reduced/original``."""
        before = max(1, self.original_tokens)
        return 1.0 - self.reduced_tokens / before

    @property
    def reduction_ratio(self) -> float:
        """Fraction of source lines removed (line-based, legacy metric)."""
        before = max(1, len(self.original_source.splitlines()))
        return 1.0 - len(self.reduced_source.splitlines()) / before

    @property
    def attempts(self) -> int:
        """Alias of :attr:`predicate_evaluations` (pre-hierarchical API)."""
        return self.predicate_evaluations


class HierarchicalReducer:
    """Multi-pass hierarchical delta debugging over the C-subset AST.

    Args:
        predicate: the interestingness predicate, ``source -> bool``.  Must
            be a pure function of the candidate source.
        predicate_factory: zero-argument callable building a predicate;
            required instead of (or alongside) *predicate* when ``jobs > 1``
            so each pool worker constructs its own predicate — and with it
            its own compiler stack and
            :class:`~repro.compilers.cache.CompilationCache`.
        jobs: worker processes for candidate evaluation (1 = serial).
        max_rounds: bound on coarse-to-fine fixpoint rounds.
        simplify_cap: expression sites tried per simplification sweep.

    Example::

        predicate = make_fn_bug_predicate(program, detecting, missing)
        result = HierarchicalReducer(predicate).reduce(program.source)
        print(result.reduced_source, result.token_reduction)
    """

    #: The AST-pass schedule of phase 3, in application order.
    AST_PASSES = ("flatten", "unswitch", "simplify", "prune")

    def __init__(self, predicate: Optional[Predicate] = None,
                 predicate_factory: Optional[PredicateFactory] = None,
                 jobs: int = 1, max_rounds: int = 8,
                 simplify_cap: int = 64,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        if predicate is None and predicate_factory is None:
            raise ValueError("need a predicate or a predicate_factory")
        if jobs > 1 and predicate_factory is None:
            import multiprocessing
            if "fork" not in multiprocessing.get_all_start_methods():
                raise ValueError(
                    "jobs > 1 without a predicate_factory requires the "
                    "'fork' start method; pass predicate_factory= so each "
                    "pool worker can build its own predicate")
        self.predicate = predicate
        self.predicate_factory = predicate_factory
        self.jobs = jobs
        self.max_rounds = max_rounds
        self.simplify_cap = simplify_cap
        self.chunk_size = chunk_size
        self.start_method = start_method

    # -- public ---------------------------------------------------------------------

    def reduce(self, source: str) -> ReductionResult:
        """Reduce *source* to a minimal program the predicate still accepts.

        The input program itself is never re-validated: a predicate that
        rejects every candidate simply returns the input unchanged.
        """
        try:
            parse_program(source)
        except ReproError as exc:
            raise ReductionError(f"cannot reduce unparsable source: {exc}") from exc
        start = time.perf_counter()
        self._current = source
        self._edits = 0
        self._candidates = 0
        self._rejected: Set[str] = set()
        # Serial evaluation prefers the caller's predicate object (it may
        # close over a shared tester/CompilationCache); pool workers prefer
        # the factory so each builds its own.
        if self.jobs <= 1 and self.predicate is not None:
            factory = lambda: self.predicate  # noqa: E731
        elif self.predicate_factory is not None:
            factory = self.predicate_factory
        else:
            factory = lambda: self.predicate  # noqa: E731
        self._evaluator = make_evaluator(factory, jobs=self.jobs,
                                         chunk_size=self.chunk_size,
                                         start_method=self.start_method)
        rounds = 0
        try:
            with telemetry.stage("reduce"):
                for _ in range(self.max_rounds):
                    rounds += 1
                    progress = self._ddmin(passes.toplevel_items)
                    progress |= self._ddmin(passes.statement_items)
                    for pass_name in self.AST_PASSES:
                        progress |= self._exhaust(pass_name)
                    if not progress:
                        break
        finally:
            self._evaluator.close()
        result = ReductionResult(
            original_source=source,
            reduced_source=self._current,
            predicate_evaluations=self._evaluator.evaluations,
            candidates_generated=self._candidates,
            edits_applied=self._edits,
            rounds=rounds,
            duration_seconds=time.perf_counter() - start)
        registry = telemetry.metrics()
        if registry is not None:
            registry.inc("reduce.candidates", result.candidates_generated)
            registry.inc("reduce.evaluations", result.predicate_evaluations)
            registry.inc("reduce.accepted", result.edits_applied)
            registry.inc("reduce.rejected",
                         max(0, result.predicate_evaluations
                             - result.edits_applied))
        logger.debug("reduced %d -> %d tokens in %d rounds (%.2fs)",
                     result.original_tokens, result.reduced_tokens,
                     rounds, result.duration_seconds)
        return result

    # -- phases ---------------------------------------------------------------------

    def _ddmin(self, items_fn: Callable[[ast.TranslationUnit], List[int]]) -> bool:
        """Delta debugging over the node ids *items_fn* enumerates."""
        changed = False
        granularity = 2
        while True:
            unit = parse_program(self._current)
            items = items_fn(unit)
            if not items:
                break
            granularity = min(granularity, len(items))
            chunks = _split(items, granularity)
            candidates = [passes.drop_nodes(unit, set(chunk)) for chunk in chunks]
            index = self._first_accepted(candidates)
            if index is not None:
                self._apply(candidates[index])
                changed = True
                granularity = max(2, granularity - 1)
            elif granularity >= len(items):
                break
            else:
                granularity = min(len(items), granularity * 2)
        return changed

    def _exhaust(self, pass_name: str) -> bool:
        """Apply one AST pass repeatedly until no candidate is accepted."""
        changed = False
        while True:
            unit = parse_program(self._current)
            if pass_name == "flatten":
                candidates = list(passes.flatten_candidates(unit))
            elif pass_name == "unswitch":
                candidates = list(passes.unswitch_candidates(unit))
            elif pass_name == "simplify":
                candidates = list(passes.simplify_candidates(
                    unit, cap=self.simplify_cap))
            else:
                candidates = list(passes.prune_candidates(unit))
            index = self._first_accepted(candidates)
            if index is None:
                return changed
            self._apply(candidates[index])
            changed = True

    # -- candidate screening ----------------------------------------------------------

    def _first_accepted(self, candidates: Sequence[str]) -> Optional[int]:
        """Index (into *candidates*) of the first acceptable candidate.

        Candidates that do not shrink, were already rejected, or fail to
        re-parse and analyze are screened out in-process; only the survivors
        reach the (possibly pooled) predicate evaluator.
        """
        self._candidates += len(candidates)
        viable: List[int] = []
        seen: Set[str] = set()
        for index, candidate in enumerate(candidates):
            if candidate == self._current or candidate in self._rejected \
                    or candidate in seen:
                continue
            seen.add(candidate)
            if not _is_valid(candidate):
                self._rejected.add(candidate)
                continue
            viable.append(index)
        accepted = self._evaluator.first_accepted(
            [candidates[index] for index in viable])
        if accepted is None:
            self._rejected.update(candidates[index] for index in viable)
            return None
        self._rejected.update(candidates[index]
                              for index in viable[:accepted])
        return viable[accepted]

    def _apply(self, candidate: str) -> None:
        self._current = candidate
        self._edits += 1


def _split(items: List[int], parts: int) -> List[List[int]]:
    """Split *items* into *parts* contiguous, non-empty chunks."""
    parts = max(1, min(parts, len(items)))
    size, remainder = divmod(len(items), parts)
    chunks: List[List[int]] = []
    position = 0
    for i in range(parts):
        width = size + (1 if i < remainder else 0)
        chunks.append(items[position:position + width])
        position += width
    return chunks


def _is_valid(source: str) -> bool:
    try:
        analyze(parse_program(source))
    except ReproError:
        return False
    except RecursionError:  # deeply nested candidates - reject, don't crash
        return False
    return True
