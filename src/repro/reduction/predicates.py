"""Interestingness predicates and the campaign-facing reduction helper.

Two predicate flavours are provided:

* :func:`make_fn_bug_predicate` — the pairwise predicate the paper's
  workflow uses while shrinking one report: the *detecting* configuration
  must still report the right UB kind, the *missing* configuration must
  still exit normally, and the crash-site mapping oracle must still call
  the discrepancy a sanitizer bug;
* :func:`make_signature_predicate` — the full-matrix predicate: the
  candidate is differentially tested across a whole configuration matrix
  and must reproduce the original bug signature (UB type, detected report
  kind, missing configuration).  Sharing a
  :class:`~repro.compilers.cache.CompilationCache` pays off heavily here —
  one candidate's matrix performs one parse and one optimizer run per opt
  level instead of one full compile per configuration.

:func:`reduce_fn_candidate` packages the common campaign step: reduce one
FN-bug candidate's program, re-run both configurations on the reduced
source, and hand back a rebuilt candidate plus a :class:`ReductionRecord`
for the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.crash_site import format_crash_site, is_sanitizer_bug_from_results
from repro.core.differential import (
    DifferentialTester,
    FNBugCandidate,
    TestConfig,
    default_configs,
)
from repro.core.insertion import UBProgram
from repro.core.ub_types import detects
from repro.reduction.reducer import HierarchicalReducer, ReductionResult, token_count

Predicate = Callable[[str], bool]


def make_fn_bug_predicate(program: UBProgram, detecting: TestConfig,
                          missing: TestConfig,
                          tester: Optional[DifferentialTester] = None,
                          vm: str = "compiled") -> Predicate:
    """Build the pairwise "still triggers this FN bug" predicate.

    Args:
        program: the original UB program (supplies the UB type).
        detecting: configuration that reports the UB.
        missing: configuration that silently misses it.
        tester: optional shared tester; by default a fresh one (with its own
            compilation cache) is built, which is also what each pool worker
            does when the predicate is constructed through a factory.
        vm: executor for the default-built tester (a provided *tester*
            keeps its own ``vm``).
    """
    tester = tester or DifferentialTester(vm=vm)

    def predicate(source: str) -> bool:
        candidate = UBProgram(source=source, ub_type=program.ub_type,
                              seed_index=program.seed_index,
                              description=program.description)
        detecting_outcome = tester.run_config(candidate, detecting)
        missing_outcome = tester.run_config(candidate, missing)
        if detecting_outcome.result is None or missing_outcome.result is None:
            return False
        if not detecting_outcome.detected:
            return False
        if not detects(program.ub_type, detecting_outcome.result.report.kind):
            return False
        if not missing_outcome.result.exited_normally:
            return False
        verdict = is_sanitizer_bug_from_results(detecting_outcome.result,
                                                missing_outcome.result)
        return verdict.is_bug

    return predicate


def make_fn_bug_predicate_factory(program: UBProgram, detecting: TestConfig,
                                  missing: TestConfig, vm: str = "compiled"):
    """A factory for :func:`make_fn_bug_predicate` suitable for ``jobs > 1``:
    every worker builds its own tester and compilation cache."""
    def factory() -> Predicate:
        return make_fn_bug_predicate(program, detecting, missing, vm=vm)
    return factory


@dataclass(frozen=True)
class BugSignature:
    """What must survive reduction: UB type, report kind, missing config."""

    ub_type: str
    report_kind: str
    missing: TestConfig


def bug_signature(candidate: FNBugCandidate) -> BugSignature:
    report = (candidate.detecting.result.report
              if candidate.detecting.result is not None else None)
    return BugSignature(ub_type=candidate.program.ub_type.value,
                        report_kind=report.kind if report is not None else "",
                        missing=candidate.missing.config)


def make_signature_predicate(program: UBProgram,
                             signature: BugSignature,
                             configs: Optional[Sequence[TestConfig]] = None,
                             tester: Optional[DifferentialTester] = None,
                             vm: str = "compiled") -> Predicate:
    """Build the full-matrix predicate: the candidate must reproduce
    *signature* when differentially tested across *configs* (default: every
    configuration relevant to the program's UB type).  *vm* selects the
    executor of the default-built tester."""
    tester = tester or DifferentialTester(vm=vm)
    if configs is None:
        configs = default_configs(program.ub_type,
                                  compilers=tuple(tester.compilers),
                                  opt_levels=tester.opt_levels)
    configs = list(configs)

    def predicate(source: str) -> bool:
        candidate = UBProgram(source=source, ub_type=program.ub_type,
                              seed_index=program.seed_index,
                              description=program.description)
        result = tester.test(candidate, configs=configs)
        for fn in result.fn_candidates:
            if bug_signature(fn) == signature:
                return True
        return False

    return predicate


@dataclass
class ReductionRecord:
    """One crash bucket's reduction, as consumed by the analysis tables."""

    label: str
    ub_type: str
    crash_site: str
    sanitizer: str
    original_tokens: int
    reduced_tokens: int
    predicate_evaluations: int
    duration_seconds: float
    reduced_source: str

    @property
    def token_reduction(self) -> float:
        return 1.0 - self.reduced_tokens / max(1, self.original_tokens)

    def to_json(self) -> dict:
        return {"label": self.label, "ub_type": self.ub_type,
                "crash_site": self.crash_site, "sanitizer": self.sanitizer,
                "original_tokens": self.original_tokens,
                "reduced_tokens": self.reduced_tokens,
                "token_reduction": round(self.token_reduction, 4),
                "predicate_evaluations": self.predicate_evaluations,
                "duration_seconds": round(self.duration_seconds, 3)}


def reduce_fn_candidate(candidate: FNBugCandidate,
                        tester: Optional[DifferentialTester] = None,
                        jobs: int = 1, max_rounds: int = 8,
                        vm: str = "compiled"
                        ) -> Tuple[FNBugCandidate, ReductionResult]:
    """Reduce one FN-bug candidate's program to a minimal reproducer.

    Returns the rebuilt candidate (program, outcomes and oracle verdict all
    recomputed on the reduced source) plus the raw :class:`ReductionResult`.
    If reduction makes no progress, or the reduced program unexpectedly
    stops reproducing, the original candidate is returned untouched.
    """
    program = candidate.program
    detecting = candidate.detecting.config
    missing = candidate.missing.config
    tester = tester or DifferentialTester(vm=vm)
    reducer = HierarchicalReducer(
        predicate=make_fn_bug_predicate(program, detecting, missing,
                                        tester=tester),
        predicate_factory=make_fn_bug_predicate_factory(program, detecting,
                                                        missing,
                                                        vm=tester.vm),
        jobs=jobs, max_rounds=max_rounds)
    result = reducer.reduce(program.source)
    if result.reduced_source == program.source:
        return candidate, result

    reduced_program = UBProgram(
        source=result.reduced_source, ub_type=program.ub_type,
        seed_index=program.seed_index, description=program.description,
        generator=program.generator,
        metadata=dict(program.metadata, reduced_from_tokens=result.original_tokens))
    detecting_outcome = tester.run_config(reduced_program, detecting)
    missing_outcome = tester.run_config(reduced_program, missing)
    if detecting_outcome.result is None or missing_outcome.result is None:
        return candidate, result
    verdict = is_sanitizer_bug_from_results(detecting_outcome.result,
                                            missing_outcome.result)
    if not verdict.is_bug:  # pragma: no cover - predicate guarantees this
        return candidate, result
    reduced = FNBugCandidate(program=reduced_program,
                             detecting=detecting_outcome,
                             missing=missing_outcome, verdict=verdict)
    return reduced, result


def record_for(label: str, candidate: FNBugCandidate,
               result: ReductionResult) -> ReductionRecord:
    """Build the analysis-layer record of one candidate's reduction."""
    return ReductionRecord(
        label=label,
        ub_type=candidate.program.ub_type.value,
        crash_site=format_crash_site(candidate.crash_site),
        sanitizer=candidate.missing.config.sanitizer,
        original_tokens=token_count(result.original_source),
        reduced_tokens=token_count(result.reduced_source),
        predicate_evaluations=result.predicate_evaluations,
        duration_seconds=result.duration_seconds,
        reduced_source=result.reduced_source)


# ---------------------------------------------------------------------------
# Marker findings (repro.markers): missed optimizations and regressions
# ---------------------------------------------------------------------------


def make_marker_predicate(finding, cache=None, max_steps=None,
                          vm: str = "compiled") -> Predicate:
    """Build the "still exhibits this marker finding" predicate.

    The candidate source (an already-instrumented program — reduction never
    re-plants markers) stays interesting when the finding's marker is still
    present, still dead on the reference execution, still inside an
    executed function (missed optimizations only), retained by the
    finding's configuration, and — for regressions — still eliminated by
    the adjacent older release.  The finding's bucket key (kind, compiler,
    marker site, responsible pass) only depends on the marker name and the
    configs, so it survives any reduction this predicate accepts.

    *finding* is a :class:`~repro.markers.engine.MarkerFinding`; a shared
    :class:`~repro.compilers.cache.CompilationCache` may be passed so
    sibling candidates reuse frontend/optimizer artifacts.
    """
    from repro.markers.engine import MISSED_OPTIMIZATION, REGRESSION
    from repro.markers.instrument import MarkedProgram, marker_calls
    from repro.markers.oracle import EliminationOracle, MarkerConfig

    oracle = EliminationOracle(cache=cache, vm=vm,
                               **({} if max_steps is None
                                  else {"max_steps": max_steps}))
    target = MarkerConfig(finding.compiler, finding.version, finding.opt_level)
    witness = (MarkerConfig(finding.compiler, finding.prev_version,
                            finding.opt_level)
               if finding.kind == REGRESSION and finding.prev_version is not None
               else None)
    name = finding.marker.name

    def predicate(source: str) -> bool:
        marked = MarkedProgram(source=source, base_source=source, sites=(),
                               prefix=finding.prefix,
                               seed_index=finding.seed_index)
        try:
            # One frontend run (through the shared cache) serves the
            # function-liveness check and the reference execution; the
            # compiles below share the same cached pristine unit.
            unit, sema = oracle.analyzed_unit(source)
            live = frozenset(oracle.liveness(marked, analyzed=(unit, sema)))
            outcome = oracle.compile_one(marked, target)
            older = (oracle.compile_one(marked, witness)
                     if witness is not None else None)
        except Exception:
            # Candidates that no longer parse, analyze or execute are
            # simply uninteresting.
            return False
        if name in live or name not in outcome.retained:
            return False
        if finding.kind == MISSED_OPTIMIZATION:
            # The enclosing function must still be executed, or the marker
            # degenerates to "dead because never called" — a different bug.
            fn = unit.function_named(finding.marker.function)
            if fn is None or not (set(marker_calls(fn, finding.prefix)) & live):
                return False
        if older is not None and name in older.retained:
            return False
        return True

    return predicate


def make_marker_predicate_factory(finding, vm: str = "compiled"):
    """A factory for :func:`make_marker_predicate` suitable for ``jobs > 1``:
    every pool worker builds its own oracle and compilation cache."""
    def factory() -> Predicate:
        return make_marker_predicate(finding, vm=vm)
    return factory


def reduce_marker_finding(finding, cache=None, jobs: int = 1,
                          max_rounds: int = 8, vm: str = "compiled"):
    """Reduce one marker finding's program to a minimal reproducer.

    Returns ``(reduced_finding, ReductionResult)``; the finding is returned
    untouched when reduction makes no progress.  The rebuilt finding keeps
    its bucket key — only ``source`` changes.
    """
    import dataclasses

    reducer = HierarchicalReducer(
        predicate=make_marker_predicate(finding, cache=cache, vm=vm),
        predicate_factory=make_marker_predicate_factory(finding, vm=vm),
        jobs=jobs, max_rounds=max_rounds)
    result = reducer.reduce(finding.source)
    if result.reduced_source == finding.source:
        return finding, result
    reduced = dataclasses.replace(finding, source=result.reduced_source)
    return reduced, result


def marker_record_for(finding, result: ReductionResult) -> ReductionRecord:
    """Build the analysis-layer record of one marker finding's reduction.

    The record reuses the FN-bug schema so
    :func:`repro.analysis.table_marker_survival`'s sibling
    ``table_reduction_quality`` renders both: ``ub_type`` carries the
    finding kind, ``crash_site`` the marker site signature and
    ``sanitizer`` the responsible pass.
    """
    return ReductionRecord(
        label=finding.bucket_slug,
        ub_type=finding.kind,
        crash_site=finding.marker.signature,
        sanitizer=finding.responsible_pass,
        original_tokens=token_count(result.original_source),
        reduced_tokens=token_count(result.reduced_source),
        predicate_evaluations=result.predicate_evaluations,
        duration_seconds=result.duration_seconds,
        reduced_source=result.reduced_source)
