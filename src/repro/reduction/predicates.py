"""Interestingness predicates and the campaign-facing reduction helper.

Two predicate flavours are provided:

* :func:`make_fn_bug_predicate` — the pairwise predicate the paper's
  workflow uses while shrinking one report: the *detecting* configuration
  must still report the right UB kind, the *missing* configuration must
  still exit normally, and the crash-site mapping oracle must still call
  the discrepancy a sanitizer bug;
* :func:`make_signature_predicate` — the full-matrix predicate: the
  candidate is differentially tested across a whole configuration matrix
  and must reproduce the original bug signature (UB type, detected report
  kind, missing configuration).  Sharing a
  :class:`~repro.compilers.cache.CompilationCache` pays off heavily here —
  one candidate's matrix performs one parse and one optimizer run per opt
  level instead of one full compile per configuration.

:func:`reduce_fn_candidate` packages the common campaign step: reduce one
FN-bug candidate's program, re-run both configurations on the reduced
source, and hand back a rebuilt candidate plus a :class:`ReductionRecord`
for the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.crash_site import format_crash_site, is_sanitizer_bug_from_results
from repro.core.differential import (
    DifferentialTester,
    FNBugCandidate,
    TestConfig,
    default_configs,
)
from repro.core.insertion import UBProgram
from repro.core.ub_types import detects
from repro.reduction.reducer import HierarchicalReducer, ReductionResult, token_count

Predicate = Callable[[str], bool]


def make_fn_bug_predicate(program: UBProgram, detecting: TestConfig,
                          missing: TestConfig,
                          tester: Optional[DifferentialTester] = None) -> Predicate:
    """Build the pairwise "still triggers this FN bug" predicate.

    Args:
        program: the original UB program (supplies the UB type).
        detecting: configuration that reports the UB.
        missing: configuration that silently misses it.
        tester: optional shared tester; by default a fresh one (with its own
            compilation cache) is built, which is also what each pool worker
            does when the predicate is constructed through a factory.
    """
    tester = tester or DifferentialTester()

    def predicate(source: str) -> bool:
        candidate = UBProgram(source=source, ub_type=program.ub_type,
                              seed_index=program.seed_index,
                              description=program.description)
        detecting_outcome = tester.run_config(candidate, detecting)
        missing_outcome = tester.run_config(candidate, missing)
        if detecting_outcome.result is None or missing_outcome.result is None:
            return False
        if not detecting_outcome.detected:
            return False
        if not detects(program.ub_type, detecting_outcome.result.report.kind):
            return False
        if not missing_outcome.result.exited_normally:
            return False
        verdict = is_sanitizer_bug_from_results(detecting_outcome.result,
                                                missing_outcome.result)
        return verdict.is_bug

    return predicate


def make_fn_bug_predicate_factory(program: UBProgram, detecting: TestConfig,
                                  missing: TestConfig):
    """A factory for :func:`make_fn_bug_predicate` suitable for ``jobs > 1``:
    every worker builds its own tester and compilation cache."""
    def factory() -> Predicate:
        return make_fn_bug_predicate(program, detecting, missing)
    return factory


@dataclass(frozen=True)
class BugSignature:
    """What must survive reduction: UB type, report kind, missing config."""

    ub_type: str
    report_kind: str
    missing: TestConfig


def bug_signature(candidate: FNBugCandidate) -> BugSignature:
    report = (candidate.detecting.result.report
              if candidate.detecting.result is not None else None)
    return BugSignature(ub_type=candidate.program.ub_type.value,
                        report_kind=report.kind if report is not None else "",
                        missing=candidate.missing.config)


def make_signature_predicate(program: UBProgram,
                             signature: BugSignature,
                             configs: Optional[Sequence[TestConfig]] = None,
                             tester: Optional[DifferentialTester] = None) -> Predicate:
    """Build the full-matrix predicate: the candidate must reproduce
    *signature* when differentially tested across *configs* (default: every
    configuration relevant to the program's UB type)."""
    tester = tester or DifferentialTester()
    if configs is None:
        configs = default_configs(program.ub_type,
                                  compilers=tuple(tester.compilers),
                                  opt_levels=tester.opt_levels)
    configs = list(configs)

    def predicate(source: str) -> bool:
        candidate = UBProgram(source=source, ub_type=program.ub_type,
                              seed_index=program.seed_index,
                              description=program.description)
        result = tester.test(candidate, configs=configs)
        for fn in result.fn_candidates:
            if bug_signature(fn) == signature:
                return True
        return False

    return predicate


@dataclass
class ReductionRecord:
    """One crash bucket's reduction, as consumed by the analysis tables."""

    label: str
    ub_type: str
    crash_site: str
    sanitizer: str
    original_tokens: int
    reduced_tokens: int
    predicate_evaluations: int
    duration_seconds: float
    reduced_source: str

    @property
    def token_reduction(self) -> float:
        return 1.0 - self.reduced_tokens / max(1, self.original_tokens)

    def to_json(self) -> dict:
        return {"label": self.label, "ub_type": self.ub_type,
                "crash_site": self.crash_site, "sanitizer": self.sanitizer,
                "original_tokens": self.original_tokens,
                "reduced_tokens": self.reduced_tokens,
                "token_reduction": round(self.token_reduction, 4),
                "predicate_evaluations": self.predicate_evaluations,
                "duration_seconds": round(self.duration_seconds, 3)}


def reduce_fn_candidate(candidate: FNBugCandidate,
                        tester: Optional[DifferentialTester] = None,
                        jobs: int = 1, max_rounds: int = 8
                        ) -> Tuple[FNBugCandidate, ReductionResult]:
    """Reduce one FN-bug candidate's program to a minimal reproducer.

    Returns the rebuilt candidate (program, outcomes and oracle verdict all
    recomputed on the reduced source) plus the raw :class:`ReductionResult`.
    If reduction makes no progress, or the reduced program unexpectedly
    stops reproducing, the original candidate is returned untouched.
    """
    program = candidate.program
    detecting = candidate.detecting.config
    missing = candidate.missing.config
    tester = tester or DifferentialTester()
    reducer = HierarchicalReducer(
        predicate=make_fn_bug_predicate(program, detecting, missing,
                                        tester=tester),
        predicate_factory=make_fn_bug_predicate_factory(program, detecting,
                                                        missing),
        jobs=jobs, max_rounds=max_rounds)
    result = reducer.reduce(program.source)
    if result.reduced_source == program.source:
        return candidate, result

    reduced_program = UBProgram(
        source=result.reduced_source, ub_type=program.ub_type,
        seed_index=program.seed_index, description=program.description,
        generator=program.generator,
        metadata=dict(program.metadata, reduced_from_tokens=result.original_tokens))
    detecting_outcome = tester.run_config(reduced_program, detecting)
    missing_outcome = tester.run_config(reduced_program, missing)
    if detecting_outcome.result is None or missing_outcome.result is None:
        return candidate, result
    verdict = is_sanitizer_bug_from_results(detecting_outcome.result,
                                            missing_outcome.result)
    if not verdict.is_bug:  # pragma: no cover - predicate guarantees this
        return candidate, result
    reduced = FNBugCandidate(program=reduced_program,
                             detecting=detecting_outcome,
                             missing=missing_outcome, verdict=verdict)
    return reduced, result


def record_for(label: str, candidate: FNBugCandidate,
               result: ReductionResult) -> ReductionRecord:
    """Build the analysis-layer record of one candidate's reduction."""
    return ReductionRecord(
        label=label,
        ub_type=candidate.program.ub_type.value,
        crash_site=format_crash_site(candidate.crash_site),
        sanitizer=candidate.missing.config.sanitizer,
        original_tokens=token_count(result.original_source),
        reduced_tokens=token_count(result.reduced_source),
        predicate_evaluations=result.predicate_evaluations,
        duration_seconds=result.duration_seconds,
        reduced_source=result.reduced_source)
