"""Shared SQLite connection plumbing for the persistent stores.

Both the findings database (:mod:`repro.corpusdb.db`) and the telemetry
store (:mod:`repro.telemetry.store`) open their databases through
:func:`connect`, so one physical file can hold both schemas — a campaign
started with ``--db findings.sqlite`` writes its findings *and* its
telemetry into the same database, and every connection agrees on journal
mode and timeouts.

Multi-statement ingests go through :func:`immediate`, which opens a
``BEGIN IMMEDIATE`` transaction (taking the write lock up front, so a
transaction can never fail halfway through after doing read work) and
retries a bounded number of times when another process holds the lock.
Two campaigns ingesting into one shared database concurrently therefore
serialize cleanly instead of aborting.
"""

from __future__ import annotations

import contextlib
import logging
import os
import sqlite3
import time
from typing import Iterator, Optional

logger = logging.getLogger(__name__)

#: How long a single SQLite call blocks on a locked database before
#: raising (milliseconds).  Generous: ingests are short, contention rare.
BUSY_TIMEOUT_MS = 5_000

#: How many times :func:`immediate` re-attempts to open its transaction
#: when the write lock is held, and the backoff between attempts.
LOCK_RETRIES = 10
LOCK_RETRY_DELAY_SECONDS = 0.05


def connect(path: str, timeout_ms: int = BUSY_TIMEOUT_MS) -> sqlite3.Connection:
    """Open (creating directories as needed) one store database.

    Applies the house settings every store relies on: WAL journaling
    (readers coexist with one writer), ``synchronous=NORMAL`` (durable
    enough — a torn final transaction loses one ingest, never corrupts),
    foreign keys on, a busy timeout, and :class:`sqlite3.Row` rows.
    ``":memory:"`` is accepted for ephemeral stores.
    """
    path = str(path)
    if path != ":memory:":
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
    # check_same_thread=False: a store may be built on the main thread and
    # driven from a worker thread (the campaign never shares one connection
    # between threads concurrently; cross-process safety comes from WAL +
    # busy timeouts, not the thread guard).
    conn = sqlite3.connect(path, timeout=timeout_ms / 1000.0,
                           check_same_thread=False)
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA foreign_keys=ON")
    conn.execute(f"PRAGMA busy_timeout={int(timeout_ms)}")
    return conn


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


@contextlib.contextmanager
def immediate(conn: sqlite3.Connection,
              retries: int = LOCK_RETRIES,
              retry_delay: float = LOCK_RETRY_DELAY_SECONDS,
              sleep=time.sleep) -> Iterator[sqlite3.Connection]:
    """A ``BEGIN IMMEDIATE`` transaction with bounded lock retries.

    Taking the reserved lock at BEGIN (not at first write) means a
    concurrent writer is discovered immediately and the whole transaction
    is retried from the top — the multi-statement ingest bodies never
    execute half-way against a database another process is mutating.
    Commits on clean exit, rolls back on exception.  After ``retries``
    failed attempts the underlying ``OperationalError`` propagates.
    """
    attempt = 0
    while True:
        try:
            conn.execute("BEGIN IMMEDIATE")
            break
        except sqlite3.OperationalError as exc:
            if not _is_locked(exc) or attempt >= retries:
                raise
            attempt += 1
            logger.debug("database locked, retry %d/%d", attempt, retries)
            sleep(retry_delay * attempt)
    try:
        yield conn
    except BaseException:
        conn.rollback()
        raise
    else:
        conn.commit()
