"""Cross-campaign findings database (programs, buckets, outcomes).

The durable half of campaign-as-a-service: one SQLite file accumulates
every campaign's programs (zlib-compressed, content-addressed), finding
buckets (crash and marker kinds under their canonical signatures, with
first-/last-seen recurrence tracking), surveyed outcome cells (what
``--resurvey`` skips) and reduced reproducers.  The orchestrator's
:class:`~repro.orchestrator.corpus.CorpusStore` is a façade over
:class:`FindingsDB`; the ``query`` and ``migrate`` CLI subcommands read
and populate it directly.  Connection plumbing (WAL, busy timeouts,
``BEGIN IMMEDIATE`` retry transactions) lives in
:mod:`repro.corpusdb.connection` and is shared with the telemetry store,
so one ``--db`` file can hold both schemas.
"""

from repro.corpusdb.connection import connect, immediate
from repro.corpusdb.db import (CRASH_KIND, FindingsDB, crash_signature,
                               decompress_source, marker_signature,
                               outcome_cell, program_digest, signature_json)
from repro.corpusdb.migrate import migrate_campaign_dir

__all__ = [
    "CRASH_KIND",
    "FindingsDB",
    "connect",
    "crash_signature",
    "decompress_source",
    "immediate",
    "marker_signature",
    "migrate_campaign_dir",
    "outcome_cell",
    "program_digest",
    "signature_json",
]
