"""Import a legacy flat campaign directory into the findings database.

Before this package existed, a campaign's findings lived in a flat
``corpus.json`` next to ``programs/*.c`` and ``reduced/*.c``.  The
importer walks that layout once and lands everything in the database —
programs (compressed, content-addressed), crash buckets under the same
``(kind, UB type, crash site, sanitizer)`` signatures new campaigns use
(so a migrated bucket deduplicates against future finds), reductions and
ingested-seed bookkeeping.  Re-running the migration is idempotent.

CLI entry point: ``python -m repro.orchestrator migrate <campaign-dir>
--db findings.sqlite``.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Dict, List, Optional

from repro.corpusdb.db import (CRASH_KIND, FindingsDB, crash_signature,
                               program_digest)

logger = logging.getLogger(__name__)

INDEX_NAME = "corpus.json"


def _legacy_slug(ub_type: str, site: str, sanitizer: str) -> str:
    site = site.replace(":", "_").replace("?", "unknown")
    return f"{ub_type}-{site}-{sanitizer}"


def _read_source(root: str, relative: str) -> Optional[str]:
    path = os.path.join(root, relative)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def migrate_campaign_dir(db: FindingsDB, campaign_dir: str,
                         key: Optional[str] = None,
                         now: Optional[float] = None) -> Dict[str, object]:
    """Import one flat campaign directory; returns a count report.

    *key* defaults to the directory's absolute path — the same identity a
    DB-backed campaign over that directory would use, so migrating and
    then resuming the campaign continue one history instead of forking.
    """
    campaign_dir = str(campaign_dir)
    index_path = os.path.join(campaign_dir, INDEX_NAME)
    if not os.path.exists(index_path):
        raise FileNotFoundError(
            f"not a campaign directory (no {INDEX_NAME}): {campaign_dir}")
    with open(index_path, "r", encoding="utf-8") as handle:
        index = json.load(handle)

    campaign_key = key or os.path.abspath(campaign_dir)
    campaign_id = db.open_campaign(campaign_key, mode="fuzz",
                                   root=campaign_dir, now=now)

    programs: List[dict] = []
    digests: Dict[str, str] = {}
    missing_sources = 0
    for program_id, record in sorted(index.get("programs", {}).items()):
        source = _read_source(campaign_dir,
                              os.path.join("programs", program_id + ".c"))
        if source is None:
            # An in-memory campaign's exported index, or a pruned programs/
            # directory: the metadata row is useless without its blob.
            missing_sources += 1
            continue
        digests[program_id] = program_digest(source)
        programs.append({
            "program_id": program_id,
            "seed_index": record.get("seed_index", 0),
            "position": record.get("position", 0),
            "source": source,
            "ub_type": record.get("ub_type"),
            "generator": record.get("generator"),
            "fn_candidates": record.get("fn_candidates", 0),
            "wrong_reports": record.get("wrong_reports", 0),
        })

    hits: List[dict] = []
    reductions: List[dict] = []
    legacy_counts: Dict[str, int] = {}
    for record in index.get("buckets", []):
        ub_type = record["ub_type"]
        site = record["crash_site"]
        sanitizer = record["sanitizer"]
        signature = crash_signature(ub_type, site, sanitizer)
        slug = _legacy_slug(ub_type, site, sanitizer)
        legacy_counts[signature] = record.get("count", 0)
        # The flat index kept per-bucket program and config *lists*, not
        # the per-hit pairing, so the import takes the cross product — the
        # query CLI's --compiler filter needs every config label attached.
        configs = list(record.get("configs", [])) or [""]
        for program_id in record.get("program_ids", []):
            for config in configs:
                hits.append({
                    "kind": CRASH_KIND,
                    "signature": signature,
                    "subject": ub_type,
                    "crash_site": site,
                    "sanitizer": sanitizer,
                    "slug": slug,
                    "program_id": program_id,
                    "program_digest": digests.get(program_id, ""),
                    "config": config,
                })
        reduction = record.get("reduction")
        if reduction:
            reduced_source = reduction.get("source")
            if reduced_source is None and reduction.get("path"):
                reduced_source = _read_source(campaign_dir, reduction["path"])
            if reduced_source is not None:
                stats = {k: v for k, v in reduction.items()
                         if k not in ("source", "path")}
                reductions.append({"kind": CRASH_KIND,
                                   "signature": signature,
                                   "source": reduced_source,
                                   "stats": stats})

    ops = db.ingest_delta(campaign_id,
                          seeds=index.get("ingested_seeds", []),
                          programs=programs, hits=hits,
                          reductions=reductions, now=now)

    # The legacy count is per-candidate, not per-(program, config) pair, so
    # restore the recorded figure rather than keeping the cross product's.
    from repro.corpusdb.connection import immediate
    with immediate(db.connection):
        for signature, count in legacy_counts.items():
            db.connection.execute(
                "UPDATE corpus_buckets SET count = ? "
                "WHERE kind = ? AND signature = ?",
                (count, CRASH_KIND, signature))
            db.connection.execute(
                "UPDATE corpus_bucket_campaigns SET hits = ? "
                "WHERE campaign_id = ? AND bucket_id = (SELECT id FROM "
                "corpus_buckets WHERE kind = ? AND signature = ?)",
                (count, campaign_id, CRASH_KIND, signature))

    report = {
        "campaign_id": campaign_id,
        "campaign_key": campaign_key,
        "campaign_dir": campaign_dir,
        "programs": len(programs),
        "missing_sources": missing_sources,
        "buckets": len(legacy_counts),
        "hits": len(hits),
        "reductions": len(reductions),
        "seeds": len(index.get("ingested_seeds", [])),
        "ops": ops,
    }
    logger.info("migrated %s: %d programs, %d buckets, %d reductions",
                campaign_dir, report["programs"], report["buckets"],
                report["reductions"])
    return report
