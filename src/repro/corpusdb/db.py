"""The cross-campaign findings database.

One SQLite file (stdlib :mod:`sqlite3`, WAL — opened through
:mod:`repro.corpusdb.connection`, so it can share a file with the
telemetry store) accumulates what every campaign ever found:

* ``corpus_programs``  — every tested program, zlib-compressed and keyed
  by the sha256 content digest, stored once no matter how many campaigns
  regenerate it;
* ``corpus_campaigns`` — one row per campaign (keyed by a caller-chosen
  stable key, normally the corpus directory), with its config fingerprint
  and mode;
* ``corpus_buckets``   — deduplicated findings, crash *and* marker kinds,
  keyed by the canonical signature JSON: ``(kind, UB type / marker site,
  crash site, sanitizer, responsible pass)``.  First-seen / last-seen
  campaign and timestamps make recurrence a column, not a replay;
* ``corpus_bucket_hits`` / ``corpus_bucket_campaigns`` — every individual
  finding folded into a bucket, and the per-campaign hit counts;
* ``corpus_outcomes``  — one row per surveyed ``(program, compiler,
  version, pipeline, sanitizer)`` cell, the unit ``--resurvey`` skips;
* ``corpus_reductions``/``corpus_seeds`` — reduced reproducers per bucket
  and per-campaign ingested-seed bookkeeping for checkpoint/resume;
* ``corpus_known_bugs`` / ``corpus_attributions`` — the known-bug patch
  database (schema v2): one row per attributed finding, keyed by the
  canonical bucket signature plus the responsible release-timeline event
  the :mod:`repro.triage` bisector converged on, with the bisection
  evidence (window, probe count, edge events) alongside;
* ``corpus_suppressions`` — the auto-suppression ledger: one row per
  (known bug, campaign) that re-found an already-attributed bucket and
  suppressed it instead of re-filing.

All multi-statement writes go through ``BEGIN IMMEDIATE`` transactions
with bounded lock retries (:func:`repro.corpusdb.connection.immediate`),
so concurrent campaigns writing one shared database serialize instead of
corrupting or aborting; every ingest path is idempotent.
"""

from __future__ import annotations

import hashlib
import json
import logging
import sqlite3
import time
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.corpusdb.connection import connect, immediate

logger = logging.getLogger(__name__)

#: Schema version, recorded in ``corpus_meta`` (never ``PRAGMA
#: user_version``, which the telemetry store owns on a shared file).
#: v2 added the known-bug patch database (``corpus_known_bugs`` /
#: ``corpus_attributions`` / ``corpus_suppressions``); every table is
#: ``CREATE TABLE IF NOT EXISTS``, so v1 files upgrade on open.
CORPUS_SCHEMA_VERSION = 2

#: Bucket kind for sanitizer FN crash findings; marker findings use the
#: marker engine's kind strings (missed-optimization / regression /
#: unsound-elimination) verbatim.
CRASH_KIND = "crash"

SCHEMA = """
CREATE TABLE IF NOT EXISTS corpus_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS corpus_campaigns (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    key         TEXT NOT NULL UNIQUE,
    fingerprint TEXT,
    mode        TEXT NOT NULL DEFAULT 'fuzz',
    root        TEXT,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS corpus_programs (
    digest         TEXT PRIMARY KEY,
    source         BLOB NOT NULL,
    size           INTEGER NOT NULL,
    ub_type        TEXT,
    generator      TEXT,
    first_campaign INTEGER REFERENCES corpus_campaigns(id),
    created_at     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS corpus_campaign_programs (
    campaign_id   INTEGER NOT NULL REFERENCES corpus_campaigns(id),
    program_id    TEXT NOT NULL,
    seed_index    INTEGER NOT NULL,
    position      INTEGER NOT NULL,
    digest        TEXT NOT NULL REFERENCES corpus_programs(digest),
    fn_candidates INTEGER NOT NULL DEFAULT 0,
    wrong_reports INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign_id, program_id)
);
CREATE TABLE IF NOT EXISTS corpus_seeds (
    campaign_id INTEGER NOT NULL REFERENCES corpus_campaigns(id),
    seed_index  INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, seed_index)
);
CREATE TABLE IF NOT EXISTS corpus_buckets (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    kind             TEXT NOT NULL,
    signature        TEXT NOT NULL,
    subject          TEXT NOT NULL DEFAULT '',
    crash_site       TEXT NOT NULL DEFAULT '',
    sanitizer        TEXT NOT NULL DEFAULT '',
    responsible_pass TEXT NOT NULL DEFAULT '',
    compiler         TEXT NOT NULL DEFAULT '',
    slug             TEXT NOT NULL DEFAULT '',
    count            INTEGER NOT NULL DEFAULT 0,
    first_campaign   INTEGER REFERENCES corpus_campaigns(id),
    first_seen_at    REAL NOT NULL,
    last_campaign    INTEGER REFERENCES corpus_campaigns(id),
    last_seen_at     REAL NOT NULL,
    UNIQUE (kind, signature)
);
CREATE INDEX IF NOT EXISTS corpus_buckets_by_kind
    ON corpus_buckets(kind, last_seen_at);
CREATE TABLE IF NOT EXISTS corpus_bucket_campaigns (
    bucket_id   INTEGER NOT NULL REFERENCES corpus_buckets(id),
    campaign_id INTEGER NOT NULL REFERENCES corpus_campaigns(id),
    hits        INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (bucket_id, campaign_id)
);
CREATE TABLE IF NOT EXISTS corpus_bucket_hits (
    bucket_id      INTEGER NOT NULL REFERENCES corpus_buckets(id),
    campaign_id    INTEGER NOT NULL REFERENCES corpus_campaigns(id),
    program_id     TEXT NOT NULL DEFAULT '',
    program_digest TEXT NOT NULL DEFAULT '',
    config         TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS corpus_hits_by_campaign
    ON corpus_bucket_hits(campaign_id, bucket_id);
CREATE TABLE IF NOT EXISTS corpus_outcomes (
    program_digest TEXT NOT NULL,
    compiler       TEXT NOT NULL,
    version        TEXT NOT NULL DEFAULT '',
    pipeline       TEXT NOT NULL DEFAULT '',
    sanitizer      TEXT NOT NULL DEFAULT '',
    status         TEXT NOT NULL DEFAULT '',
    detail         TEXT NOT NULL DEFAULT '',
    campaign_id    INTEGER REFERENCES corpus_campaigns(id),
    recorded_at    REAL NOT NULL,
    PRIMARY KEY (program_digest, compiler, version, pipeline, sanitizer)
);
CREATE TABLE IF NOT EXISTS corpus_reductions (
    bucket_id   INTEGER PRIMARY KEY REFERENCES corpus_buckets(id),
    source      BLOB NOT NULL,
    stats       TEXT NOT NULL DEFAULT '{}',
    campaign_id INTEGER REFERENCES corpus_campaigns(id),
    recorded_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS corpus_known_bugs (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind                TEXT NOT NULL,
    signature           TEXT NOT NULL,
    compiler            TEXT NOT NULL DEFAULT '',
    responsible         TEXT NOT NULL,
    introduced_version  INTEGER,
    fixed_version       INTEGER,
    status              TEXT NOT NULL DEFAULT 'open',
    window              TEXT NOT NULL DEFAULT '',
    first_attributed_at REAL NOT NULL,
    UNIQUE (kind, signature, responsible)
);
CREATE INDEX IF NOT EXISTS corpus_known_bugs_by_sig
    ON corpus_known_bugs(kind, signature);
CREATE TABLE IF NOT EXISTS corpus_attributions (
    known_bug_id     INTEGER PRIMARY KEY REFERENCES corpus_known_bugs(id),
    bucket_id        INTEGER REFERENCES corpus_buckets(id),
    observed_version INTEGER,
    introduced_event TEXT NOT NULL DEFAULT '',
    fixed_event      TEXT NOT NULL DEFAULT '',
    probes           INTEGER NOT NULL DEFAULT 0,
    campaign_id      INTEGER REFERENCES corpus_campaigns(id),
    recorded_at      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS corpus_suppressions (
    known_bug_id INTEGER NOT NULL REFERENCES corpus_known_bugs(id),
    campaign_id  INTEGER NOT NULL REFERENCES corpus_campaigns(id),
    hits         INTEGER NOT NULL DEFAULT 0,
    recorded_at  REAL NOT NULL,
    PRIMARY KEY (known_bug_id, campaign_id)
);
"""


def program_digest(source: str) -> str:
    """The content digest a program is stored under (sha256 hex)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def compress_source(source: str) -> bytes:
    """Sources are stored zlib-compressed (level 6; C sources shrink ~5x)."""
    return zlib.compress(source.encode("utf-8"), 6)


def decompress_source(blob: bytes) -> str:
    return zlib.decompress(blob).decode("utf-8")


def signature_json(parts: Sequence) -> str:
    """Canonical signature encoding: a compact JSON array of strings.

    Shared by ingestion, dedup lookups and the query CLI — one encoding,
    or recurrence detection would silently stop matching."""
    return json.dumps([str(part) for part in parts],
                      separators=(",", ":"))


def crash_signature(ub_type: str, crash_site: str, sanitizer: str) -> str:
    """The crash-bucket signature: (kind, UB type, crash site, sanitizer)."""
    return signature_json((CRASH_KIND, ub_type, crash_site, sanitizer))


def marker_signature(kind: str, compiler: str, function: str, context: str,
                     name: str, responsible_pass: str) -> str:
    """The marker-bucket signature, mirroring
    :attr:`repro.markers.engine.MarkerFinding.bucket`."""
    return signature_json((kind, compiler, function, context, name,
                           responsible_pass))


def outcome_cell(compiler: str, sanitizer: str, pipeline: str,
                 version: str = "") -> Tuple[str, str, str, str]:
    """The key of one surveyed outcome cell, as ``--resurvey`` sees it."""
    return (compiler, str(version), pipeline, sanitizer)


class FindingsDB:
    """The findings database: programs, buckets, outcomes, reductions.

    Open with a path (or ``":memory:"``) and use as a context manager::

        with FindingsDB("findings.sqlite") as db:
            campaign_id = db.open_campaign("corpus/alpha", mode="fuzz")
            for row in db.query_buckets(kind="crash", compiler="gcc"):
                print(row["slug"], row["count"])
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = str(path)
        self._conn = connect(self.path)
        with immediate(self._conn):
            self._conn.executescript(SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO corpus_meta (key, value) "
                "VALUES ('schema_version', ?)", (str(CORPUS_SCHEMA_VERSION),))
            # Opening an older file upgrades it in place: the schema above
            # is purely additive (IF NOT EXISTS), so bumping the recorded
            # version is the whole migration.
            self._conn.execute(
                "UPDATE corpus_meta SET value = ? WHERE key = 'schema_version' "
                "AND CAST(value AS INTEGER) < ?",
                (str(CORPUS_SCHEMA_VERSION), CORPUS_SCHEMA_VERSION))

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "FindingsDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (read-only use; writes go through the
        ingest methods so they stay transactional and idempotent)."""
        return self._conn

    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM corpus_meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row["value"]) if row is not None else 0

    # -- campaigns --------------------------------------------------------------

    def open_campaign(self, key: str, fingerprint: Optional[str] = None,
                      mode: str = "fuzz", root: Optional[str] = None,
                      now: Optional[float] = None) -> int:
        """Return the campaign id for *key*, creating the row if needed.

        *key* is the campaign's stable identity across sessions (the
        corpus directory for orchestrated runs).  Re-opening updates the
        fingerprint/root columns (a resumed campaign) rather than adding a
        second row."""
        stamp = time.time() if now is None else now
        with immediate(self._conn):
            row = self._conn.execute(
                "SELECT id FROM corpus_campaigns WHERE key = ?",
                (key,)).fetchone()
            if row is not None:
                self._conn.execute(
                    "UPDATE corpus_campaigns SET updated_at = ?, "
                    "fingerprint = COALESCE(?, fingerprint), "
                    "root = COALESCE(?, root) WHERE id = ?",
                    (stamp, fingerprint, root, row["id"]))
                return int(row["id"])
            cursor = self._conn.execute(
                "INSERT INTO corpus_campaigns (key, fingerprint, mode, root, "
                "created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                (key, fingerprint, mode, root, stamp, stamp))
            return int(cursor.lastrowid)

    def campaigns(self) -> List[dict]:
        rows = self._conn.execute(
            "SELECT id, key, fingerprint, mode, root, created_at, updated_at "
            "FROM corpus_campaigns ORDER BY id").fetchall()
        return [dict(row) for row in rows]

    def campaign_id(self, key: str) -> Optional[int]:
        row = self._conn.execute(
            "SELECT id FROM corpus_campaigns WHERE key = ?", (key,)).fetchone()
        return int(row["id"]) if row is not None else None

    # -- delta ingestion --------------------------------------------------------

    def ingest_delta(self, campaign_id: int, *,
                     seeds: Iterable[int] = (),
                     programs: Iterable[dict] = (),
                     hits: Iterable[dict] = (),
                     outcomes: Iterable[dict] = (),
                     reductions: Iterable[dict] = (),
                     now: Optional[float] = None) -> int:
        """Apply one flush delta in a single ``BEGIN IMMEDIATE`` transaction.

        Everything is idempotent (``INSERT OR IGNORE`` keyed rows), so a
        crash between the corpus flush and the checkpoint flush merely
        re-applies the delta on resume.  Returns the number of rows
        touched — the figure the flush-cost benchmark gates on, which must
        scale with the *delta*, never the corpus.
        """
        stamp = time.time() if now is None else now
        ops = 0
        seeds = list(seeds)
        programs = list(programs)
        hits = list(hits)
        outcomes = list(outcomes)
        reductions = list(reductions)
        if not (seeds or programs or hits or outcomes or reductions):
            return 0
        with immediate(self._conn):
            for seed_index in seeds:
                self._conn.execute(
                    "INSERT OR IGNORE INTO corpus_seeds (campaign_id, "
                    "seed_index) VALUES (?, ?)", (campaign_id, seed_index))
                ops += 1
            for record in programs:
                ops += self._ingest_program(campaign_id, record, stamp)
            for record in hits:
                ops += self._ingest_hit(campaign_id, record, stamp)
            for record in outcomes:
                self._conn.execute(
                    "INSERT OR IGNORE INTO corpus_outcomes (program_digest, "
                    "compiler, version, pipeline, sanitizer, status, detail, "
                    "campaign_id, recorded_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (record["program_digest"], record["compiler"],
                     str(record.get("version", "")),
                     record.get("pipeline", ""),
                     record.get("sanitizer", ""),
                     record.get("status", ""), record.get("detail", ""),
                     campaign_id, stamp))
                ops += 1
            for record in reductions:
                ops += self._ingest_reduction(campaign_id, record, stamp)
            self._conn.execute(
                "UPDATE corpus_campaigns SET updated_at = ? WHERE id = ?",
                (stamp, campaign_id))
        return ops

    def _ingest_program(self, campaign_id: int, record: dict,
                        stamp: float) -> int:
        source = record["source"]
        digest = record.get("digest") or program_digest(source)
        self._conn.execute(
            "INSERT OR IGNORE INTO corpus_programs (digest, source, size, "
            "ub_type, generator, first_campaign, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (digest, compress_source(source), len(source),
             record.get("ub_type"), record.get("generator"),
             campaign_id, stamp))
        self._conn.execute(
            "INSERT OR REPLACE INTO corpus_campaign_programs (campaign_id, "
            "program_id, seed_index, position, digest, fn_candidates, "
            "wrong_reports) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (campaign_id, record["program_id"], record["seed_index"],
             record["position"], digest,
             record.get("fn_candidates", 0), record.get("wrong_reports", 0)))
        return 2

    def _bucket_id_for(self, record: dict, campaign_id: int,
                       stamp: float) -> int:
        """Find or create the bucket row for one hit's signature."""
        kind, signature = record["kind"], record["signature"]
        row = self._conn.execute(
            "SELECT id FROM corpus_buckets WHERE kind = ? AND signature = ?",
            (kind, signature)).fetchone()
        if row is not None:
            return int(row["id"])
        cursor = self._conn.execute(
            "INSERT INTO corpus_buckets (kind, signature, subject, "
            "crash_site, sanitizer, responsible_pass, compiler, slug, count, "
            "first_campaign, first_seen_at, last_campaign, last_seen_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0, ?, ?, ?, ?)",
            (kind, signature, record.get("subject", ""),
             record.get("crash_site", ""), record.get("sanitizer", ""),
             record.get("responsible_pass", ""), record.get("compiler", ""),
             record.get("slug", ""), campaign_id, stamp, campaign_id, stamp))
        return int(cursor.lastrowid)

    def _ingest_hit(self, campaign_id: int, record: dict,
                    stamp: float) -> int:
        bucket_id = self._bucket_id_for(record, campaign_id, stamp)
        # Hits are the one append-only table without a natural key, so the
        # dedup guard is explicit: a re-flushed delta (resume re-applying
        # unacknowledged work) must not double-count.
        exists = self._conn.execute(
            "SELECT 1 FROM corpus_bucket_hits WHERE bucket_id = ? AND "
            "campaign_id = ? AND program_id = ? AND config = ?",
            (bucket_id, campaign_id, record.get("program_id", ""),
             record.get("config", ""))).fetchone()
        if exists is not None:
            return 0
        self._conn.execute(
            "INSERT INTO corpus_bucket_hits (bucket_id, campaign_id, "
            "program_id, program_digest, config) VALUES (?, ?, ?, ?, ?)",
            (bucket_id, campaign_id, record.get("program_id", ""),
             record.get("program_digest", ""), record.get("config", "")))
        self._conn.execute(
            "UPDATE corpus_buckets SET count = count + 1, last_campaign = ?, "
            "last_seen_at = ? WHERE id = ?", (campaign_id, stamp, bucket_id))
        self._conn.execute(
            "INSERT INTO corpus_bucket_campaigns (bucket_id, campaign_id, "
            "hits) VALUES (?, ?, 1) ON CONFLICT (bucket_id, campaign_id) "
            "DO UPDATE SET hits = hits + 1", (bucket_id, campaign_id))
        return 3

    def _ingest_reduction(self, campaign_id: int, record: dict,
                          stamp: float) -> int:
        row = self._conn.execute(
            "SELECT id FROM corpus_buckets WHERE kind = ? AND signature = ?",
            (record["kind"], record["signature"])).fetchone()
        if row is None:
            logger.warning("reduction for unknown bucket %s/%s dropped",
                           record["kind"], record["signature"])
            return 0
        self._conn.execute(
            "INSERT OR REPLACE INTO corpus_reductions (bucket_id, source, "
            "stats, campaign_id, recorded_at) VALUES (?, ?, ?, ?, ?)",
            (row["id"], compress_source(record["source"]),
             json.dumps(record.get("stats") or {}, sort_keys=True),
             campaign_id, stamp))
        return 1

    # -- dedup / resurvey lookups ----------------------------------------------

    def find_bucket(self, kind: str, signature: str) -> Optional[dict]:
        """The bucket row for one signature, or None — the cross-campaign
        dedup question ("have we ever seen this?") as a single lookup."""
        row = self._conn.execute(
            "SELECT b.*, fc.key AS first_campaign_key "
            "FROM corpus_buckets b "
            "LEFT JOIN corpus_campaigns fc ON fc.id = b.first_campaign "
            "WHERE b.kind = ? AND b.signature = ?",
            (kind, signature)).fetchone()
        return dict(row) if row is not None else None

    def recorded_cells(self) -> Set[Tuple[str, str, str, str, str]]:
        """Every surveyed ``(digest, compiler, version, pipeline,
        sanitizer)`` cell in the store — the skip set for ``--resurvey``."""
        rows = self._conn.execute(
            "SELECT program_digest, compiler, version, pipeline, sanitizer "
            "FROM corpus_outcomes")
        return {(row["program_digest"], row["compiler"], row["version"],
                 row["pipeline"], row["sanitizer"]) for row in rows}

    def ingested_seeds(self, campaign_id: int) -> List[int]:
        rows = self._conn.execute(
            "SELECT seed_index FROM corpus_seeds WHERE campaign_id = ? "
            "ORDER BY seed_index", (campaign_id,))
        return [row["seed_index"] for row in rows]

    # -- queries ----------------------------------------------------------------

    def get_program(self, digest: str) -> Optional[str]:
        """The stored source for one content digest (decompressed)."""
        row = self._conn.execute(
            "SELECT source FROM corpus_programs WHERE digest = ?",
            (digest,)).fetchone()
        return decompress_source(row["source"]) if row is not None else None

    def campaign_programs(self, campaign_id: int) -> List[dict]:
        """One row per program a campaign recorded, in campaign order."""
        rows = self._conn.execute(
            "SELECT cp.program_id, cp.seed_index, cp.position, cp.digest, "
            "cp.fn_candidates, cp.wrong_reports, p.ub_type, p.generator, "
            "p.size FROM corpus_campaign_programs cp "
            "JOIN corpus_programs p ON p.digest = cp.digest "
            "WHERE cp.campaign_id = ? ORDER BY cp.seed_index, cp.position",
            (campaign_id,))
        return [dict(row) for row in rows]

    def campaign_hits(self, campaign_id: int) -> List[dict]:
        """One campaign's bucket hits joined with their bucket columns, in
        ingestion order — what the corpus façade rebuilds its in-memory
        bucket mirrors from on resume."""
        rows = self._conn.execute(
            "SELECT h.rowid AS seq, h.program_id, h.program_digest, "
            "h.config, b.id AS bucket_id, b.kind, b.signature, b.subject, "
            "b.crash_site, b.sanitizer, b.responsible_pass, b.compiler, "
            "b.slug, b.first_campaign, b.first_seen_at "
            "FROM corpus_bucket_hits h "
            "JOIN corpus_buckets b ON b.id = h.bucket_id "
            "WHERE h.campaign_id = ? ORDER BY h.rowid", (campaign_id,))
        return [dict(row) for row in rows]

    def bucket_digests(self, bucket_id: int) -> List[str]:
        """Distinct program digests hitting one bucket, first-hit order —
        the query CLI's ``--programs`` listing."""
        rows = self._conn.execute(
            "SELECT program_digest, MIN(rowid) AS seq "
            "FROM corpus_bucket_hits WHERE bucket_id = ? "
            "GROUP BY program_digest ORDER BY seq", (bucket_id,))
        return [row["program_digest"] for row in rows]

    def reduction_for(self, kind: str, signature: str) -> Optional[dict]:
        """The stored reduction of one bucket: ``{"source", "stats"}``."""
        row = self._conn.execute(
            "SELECT r.source, r.stats FROM corpus_reductions r "
            "JOIN corpus_buckets b ON b.id = r.bucket_id "
            "WHERE b.kind = ? AND b.signature = ?",
            (kind, signature)).fetchone()
        if row is None:
            return None
        return {"source": decompress_source(row["source"]),
                "stats": json.loads(row["stats"])}

    def query_buckets(self, kind: Optional[str] = None,
                      compiler: Optional[str] = None,
                      bucket: Optional[str] = None,
                      since: Optional[float] = None,
                      campaign: Optional[str] = None) -> List[dict]:
        """Filterable view over the findings corpus, one dict per bucket.

        Filters compose (AND): *kind* exact, *compiler* matches the bucket
        compiler column or any hit config mentioning the compiler,
        *bucket* substring-matches the slug or signature, *since* keeps
        buckets last seen at/after the timestamp, *campaign* restricts to
        buckets a given campaign key hit.  Rows carry recurrence columns:
        ``campaigns`` (how many campaigns hit the bucket) and first/last
        seen identity."""
        sql = ("SELECT b.id, b.kind, b.signature, b.subject, b.crash_site, "
               "b.sanitizer, b.responsible_pass, b.compiler, b.slug, "
               "b.count, b.first_seen_at, b.last_seen_at, "
               "fc.key AS first_campaign_key, lc.key AS last_campaign_key, "
               "(SELECT COUNT(*) FROM corpus_bucket_campaigns bc "
               " WHERE bc.bucket_id = b.id) AS campaigns, "
               "(SELECT COUNT(*) FROM corpus_reductions r "
               " WHERE r.bucket_id = b.id) AS reduced "
               "FROM corpus_buckets b "
               "LEFT JOIN corpus_campaigns fc ON fc.id = b.first_campaign "
               "LEFT JOIN corpus_campaigns lc ON lc.id = b.last_campaign ")
        clauses: List[str] = []
        params: List = []
        if kind is not None:
            clauses.append("b.kind = ?")
            params.append(kind)
        if compiler is not None:
            clauses.append(
                "(b.compiler = ? OR EXISTS (SELECT 1 FROM corpus_bucket_hits "
                "h WHERE h.bucket_id = b.id AND h.config LIKE ?))")
            params.extend([compiler, f"%{compiler}%"])
        if bucket is not None:
            clauses.append("(b.slug LIKE ? OR b.signature LIKE ?)")
            params.extend([f"%{bucket}%", f"%{bucket}%"])
        if since is not None:
            clauses.append("b.last_seen_at >= ?")
            params.append(float(since))
        if campaign is not None:
            clauses.append(
                "EXISTS (SELECT 1 FROM corpus_bucket_campaigns bc "
                "JOIN corpus_campaigns c ON c.id = bc.campaign_id "
                "WHERE bc.bucket_id = b.id AND c.key = ?)")
            params.append(campaign)
        if clauses:
            sql += "WHERE " + " AND ".join(clauses) + " "
        sql += "ORDER BY b.id"
        return [dict(row) for row in self._conn.execute(sql, params)]

    def campaign_recurrence(self) -> List[dict]:
        """Per-campaign recurrence accounting, oldest campaign first.

        For each campaign: how many buckets it hit, how many of those it
        was the *first* to see (``new``), and how many were already known
        from earlier campaigns (``recurrent``) — the cross-campaign dedup
        story in one table."""
        rows = self._conn.execute(
            "SELECT c.id, c.key, c.mode, c.created_at, "
            "COUNT(bc.bucket_id) AS buckets_hit, "
            "COALESCE(SUM(CASE WHEN b.first_campaign = c.id "
            "  THEN 1 ELSE 0 END), 0) AS new_buckets, "
            "COALESCE(SUM(CASE WHEN b.first_campaign != c.id "
            "  THEN 1 ELSE 0 END), 0) AS recurrent_buckets, "
            "COALESCE(SUM(bc.hits), 0) AS hits "
            "FROM corpus_campaigns c "
            "LEFT JOIN corpus_bucket_campaigns bc ON bc.campaign_id = c.id "
            "LEFT JOIN corpus_buckets b ON b.id = bc.bucket_id "
            "GROUP BY c.id ORDER BY c.id")
        return [dict(row) for row in rows]

    def summary(self) -> Dict[str, int]:
        """Row counts per table — the query CLI footer."""
        counts: Dict[str, int] = {}
        for label, table in (("campaigns", "corpus_campaigns"),
                             ("programs", "corpus_programs"),
                             ("buckets", "corpus_buckets"),
                             ("hits", "corpus_bucket_hits"),
                             ("outcomes", "corpus_outcomes"),
                             ("reductions", "corpus_reductions"),
                             ("known_bugs", "corpus_known_bugs"),
                             ("attributions", "corpus_attributions"),
                             ("suppressions", "corpus_suppressions")):
            counts[label] = self._conn.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
        return counts

    # -- known-bug patch database -----------------------------------------------

    def record_attribution(self, kind: str, signature: str, *,
                           responsible: str, compiler: str = "",
                           introduced_version: Optional[int] = None,
                           fixed_version: Optional[int] = None,
                           status: str = "open", window: str = "",
                           observed_version: Optional[int] = None,
                           introduced_event: str = "", fixed_event: str = "",
                           probes: int = 0,
                           campaign_id: Optional[int] = None,
                           now: Optional[float] = None) -> int:
        """Upsert one known bug plus its (latest) bisection evidence.

        Known bugs are content-addressed by ``(kind, signature,
        responsible)`` — the bucket's canonical signature plus the
        responsible release-timeline event id — so re-bisecting the same
        finding refreshes the evidence row instead of filing a second bug.
        Returns the known-bug id."""
        stamp = time.time() if now is None else now
        with immediate(self._conn):
            self._conn.execute(
                "INSERT INTO corpus_known_bugs (kind, signature, compiler, "
                "responsible, introduced_version, fixed_version, status, "
                "window, first_attributed_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (kind, signature, responsible) DO UPDATE SET "
                "compiler = excluded.compiler, "
                "introduced_version = excluded.introduced_version, "
                "fixed_version = excluded.fixed_version, "
                "status = excluded.status, window = excluded.window",
                (kind, signature, compiler, responsible, introduced_version,
                 fixed_version, status, window, stamp))
            known_bug_id = int(self._conn.execute(
                "SELECT id FROM corpus_known_bugs WHERE kind = ? AND "
                "signature = ? AND responsible = ?",
                (kind, signature, responsible)).fetchone()["id"])
            bucket = self._conn.execute(
                "SELECT id FROM corpus_buckets WHERE kind = ? AND "
                "signature = ?", (kind, signature)).fetchone()
            self._conn.execute(
                "INSERT OR REPLACE INTO corpus_attributions (known_bug_id, "
                "bucket_id, observed_version, introduced_event, fixed_event, "
                "probes, campaign_id, recorded_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (known_bug_id, bucket["id"] if bucket is not None else None,
                 observed_version, introduced_event, fixed_event, probes,
                 campaign_id, stamp))
        return known_bug_id

    def known_bugs(self) -> List[dict]:
        """Every attributed bug with its bisection evidence and how many
        campaigns its suppression saved a re-file in."""
        rows = self._conn.execute(
            "SELECT k.id, k.kind, k.signature, k.compiler, k.responsible, "
            "k.introduced_version, k.fixed_version, k.status, k.window, "
            "k.first_attributed_at, b.slug, b.count AS bucket_count, "
            "a.observed_version, a.introduced_event, a.fixed_event, "
            "a.probes, a.recorded_at AS attributed_at, "
            "(SELECT COUNT(*) FROM corpus_suppressions s "
            " WHERE s.known_bug_id = k.id) AS suppressed_campaigns, "
            "(SELECT COALESCE(SUM(s.hits), 0) FROM corpus_suppressions s "
            " WHERE s.known_bug_id = k.id) AS suppressed_hits "
            "FROM corpus_known_bugs k "
            "LEFT JOIN corpus_attributions a ON a.known_bug_id = k.id "
            "LEFT JOIN corpus_buckets b ON b.id = a.bucket_id "
            "ORDER BY k.id")
        return [dict(row) for row in rows]

    def known_bug_index(self) -> Dict[Tuple[str, str], dict]:
        """Attributed signatures → known-bug row, the campaign-side
        suppression lookup (one query at campaign start)."""
        index: Dict[Tuple[str, str], dict] = {}
        for row in self.known_bugs():
            index.setdefault((row["kind"], row["signature"]), row)
        return index

    def record_suppressions(self, campaign_id: int,
                            entries: Iterable[dict],
                            now: Optional[float] = None) -> int:
        """Ledger one campaign's suppressed re-finds.

        *entries* are ``{"kind", "signature", "hits"}`` dicts with the
        campaign's cumulative hit count per suppressed bucket; re-flushing
        keeps the maximum, so resumed deltas never double-count."""
        stamp = time.time() if now is None else now
        entries = list(entries)
        if not entries:
            return 0
        recorded = 0
        with immediate(self._conn):
            for entry in entries:
                row = self._conn.execute(
                    "SELECT id FROM corpus_known_bugs WHERE kind = ? AND "
                    "signature = ? ORDER BY id LIMIT 1",
                    (entry["kind"], entry["signature"])).fetchone()
                if row is None:
                    continue
                self._conn.execute(
                    "INSERT INTO corpus_suppressions (known_bug_id, "
                    "campaign_id, hits, recorded_at) VALUES (?, ?, ?, ?) "
                    "ON CONFLICT (known_bug_id, campaign_id) DO UPDATE SET "
                    "hits = MAX(hits, excluded.hits)",
                    (row["id"], campaign_id,
                     int(entry.get("hits", 1)), stamp))
                recorded += 1
        return recorded

    def suppression_ledger(self, campaign_id: Optional[int] = None
                           ) -> List[dict]:
        """The suppression ledger (optionally one campaign's slice): which
        known bug suppressed which campaign's re-find, with hit counts."""
        sql = ("SELECT s.known_bug_id, s.campaign_id, s.hits, "
               "s.recorded_at, c.key AS campaign_key, k.kind, k.signature, "
               "k.responsible, k.status, b.slug "
               "FROM corpus_suppressions s "
               "JOIN corpus_known_bugs k ON k.id = s.known_bug_id "
               "JOIN corpus_campaigns c ON c.id = s.campaign_id "
               "LEFT JOIN corpus_attributions a ON a.known_bug_id = k.id "
               "LEFT JOIN corpus_buckets b ON b.id = a.bucket_id ")
        params: List = []
        if campaign_id is not None:
            sql += "WHERE s.campaign_id = ? "
            params.append(campaign_id)
        sql += "ORDER BY s.known_bug_id, s.campaign_id"
        return [dict(row) for row in self._conn.execute(sql, params)]

    # -- marker campaigns -------------------------------------------------------

    def ingest_marker_result(self, campaign_key: str, result,
                             fingerprint: Optional[str] = None,
                             now: Optional[float] = None) -> int:
        """Persist a finished marker campaign's deduplicated findings.

        *result* is a :class:`~repro.markers.engine.MarkerCampaignResult`
        (duck-typed: ``buckets`` mapping to objects with a
        ``representative`` :class:`MarkerFinding` and per-bucket counters).
        Each bucket lands under its marker signature with the
        representative's source as the stored program; re-ingesting the
        same campaign key and findings is idempotent.  Returns the
        campaign id.
        """
        campaign_id = self.open_campaign(campaign_key,
                                         fingerprint=fingerprint,
                                         mode="markers", now=now)
        programs: List[dict] = []
        hits: List[dict] = []
        outcomes: List[dict] = []
        for bucket in result.buckets.values():
            finding = bucket.representative
            digest = program_digest(finding.source)
            program_id = (f"s{finding.seed_index:05d}-"
                          f"{finding.marker.name.strip('_')}")
            programs.append({
                "program_id": program_id,
                "seed_index": finding.seed_index,
                "position": 0,
                "source": finding.source,
                "ub_type": None,
                "generator": "marker",
            })
            signature = marker_signature(
                finding.kind, finding.compiler, finding.marker.function,
                finding.marker.context, finding.marker.name,
                finding.responsible_pass)
            site = (f"{finding.marker.function}:{finding.marker.context}:"
                    f"{finding.marker.name}")
            config = f"{finding.compiler}-{finding.version} {finding.opt_level}"
            hits.append({
                "kind": finding.kind,
                "signature": signature,
                "subject": site,
                "responsible_pass": finding.responsible_pass,
                "compiler": finding.compiler,
                "slug": finding.bucket_slug,
                "program_id": program_id,
                "program_digest": digest,
                "config": config,
            })
            outcomes.append({
                "program_digest": digest,
                "compiler": finding.compiler,
                "version": str(finding.version),
                "pipeline": finding.opt_level,
                "sanitizer": "",
                "status": finding.kind,
                "detail": finding.describe(),
            })
        self.ingest_delta(campaign_id, programs=programs, hits=hits,
                          outcomes=outcomes, now=now)
        # Auto-suppression: marker buckets the known-bug patch database
        # already attributes are ledgered against this campaign.
        attributed = self.known_bug_index()
        self.record_suppressions(
            campaign_id,
            ({"kind": hit["kind"], "signature": hit["signature"], "hits": 1}
             for hit in hits
             if (hit["kind"], hit["signature"]) in attributed),
            now=now)
        return campaign_id
