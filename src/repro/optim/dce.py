"""Dead code elimination.

Removes code that cannot affect the observable behaviour of a *UB-free*
program:

* statements after an unconditional ``return`` / ``break`` / ``continue``
  in the same block,
* expression statements with no side effects (a bare ``*p;`` or ``x + 1;``),
* empty compound statements and empty ``if`` bodies.

Dropping a pure expression statement is precisely what erases the
``*b;`` overflow read in the paper's Figure 3: the optimizer is allowed to
assume the read cannot trap, so removing it is legal — and the sanitizer
pass that runs afterwards never sees the UB.
"""

from __future__ import annotations

from repro.cdsl import ast_nodes as ast
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.visitor import NodeTransformer
from repro.optim.passes import OptimizationContext, OptimizationPass, is_pure_expr


class DeadCodeEliminationPass(OptimizationPass):
    name = "dce"

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> bool:
        eliminator = _Eliminator(ctx)
        for fn in unit.functions:
            if fn.body is not None:
                eliminator.visit(fn.body)
        return eliminator.changed


_TERMINATORS = (ast.ReturnStmt, ast.BreakStmt, ast.ContinueStmt)


class _Eliminator(NodeTransformer):
    def __init__(self, ctx: OptimizationContext) -> None:
        self.ctx = ctx
        self.changed = False

    def visit_CompoundStmt(self, node: ast.CompoundStmt):
        self.generic_visit(node)
        new_stmts = []
        terminated = False
        for stmt in node.stmts:
            if terminated:
                self.changed = True
                self.ctx.cover_point("dce.unreachable")
                continue
            if isinstance(stmt, ast.EmptyStmt):
                self.changed = True
                continue
            new_stmts.append(stmt)
            if isinstance(stmt, _TERMINATORS):
                terminated = True
        node.stmts = new_stmts
        return node

    def visit_ExprStmt(self, node: ast.ExprStmt):
        self.generic_visit(node)
        if is_pure_expr(node.expr):
            self.changed = True
            self.ctx.cover_branch("dce.pure_exprstmt", True)
            return None
        self.ctx.cover_branch("dce.pure_exprstmt", False)
        return node

    def visit_IfStmt(self, node: ast.IfStmt):
        self.generic_visit(node)
        then_empty = _is_empty(node.then)
        else_empty = node.otherwise is None or _is_empty(node.otherwise)
        if then_empty and else_empty and is_pure_expr(node.cond):
            self.changed = True
            self.ctx.cover_point("dce.empty_if")
            return None
        if node.otherwise is not None and _is_empty(node.otherwise):
            node.otherwise = None
            self.changed = True
        return node


def _is_empty(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.EmptyStmt):
        return True
    if isinstance(stmt, ast.CompoundStmt):
        return all(_is_empty(s) for s in stmt.stmts)
    return False
