"""Loop optimizations: deletion of side-effect-free loops and of loops whose
condition is statically false.

A loop whose body performs no store, no call and no declaration cannot
affect a UB-free program, so the compiler may delete it wholesale; if the
loop body contained the UB access (as in the paper's Figure 8 discussion),
deleting it also deletes the UB — another source of
optimization-caused discrepancies that the crash-site mapping oracle must
filter out.
"""

from __future__ import annotations

from repro.cdsl import ast_nodes as ast
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.visitor import NodeTransformer, walk
from repro.optim.passes import OptimizationContext, OptimizationPass, is_pure_expr


class LoopOptimizationPass(OptimizationPass):
    name = "loop-opts"

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> bool:
        optimizer = _LoopOptimizer(ctx)
        for fn in unit.functions:
            if fn.body is not None:
                optimizer.visit(fn.body)
        return optimizer.changed


def _stmt_is_pure(stmt: ast.Stmt) -> bool:
    """True if executing *stmt* cannot have observable side effects."""
    for node in walk(stmt):
        if isinstance(node, (ast.Assignment, ast.IncDec, ast.Call,
                             ast.ReturnStmt, ast.BreakStmt, ast.ContinueStmt,
                             ast.DeclStmt)):
            return False
    return True


class _LoopOptimizer(NodeTransformer):
    def __init__(self, ctx: OptimizationContext) -> None:
        self.ctx = ctx
        self.changed = False

    def visit_WhileStmt(self, node: ast.WhileStmt):
        self.generic_visit(node)
        if isinstance(node.cond, ast.IntLiteral) and node.cond.value == 0:
            self.changed = True
            self.ctx.cover_point("loop.while_false")
            return None
        if _stmt_is_pure(node.body) and is_pure_expr(node.cond):
            # The loop can only terminate or not; assuming UB-freedom (and
            # that our subset's loops terminate), it is removable.
            self.changed = True
            self.ctx.cover_point("loop.pure_while_removed")
            return None
        self.ctx.cover_branch("loop.while_kept", True)
        return node

    def visit_ForStmt(self, node: ast.ForStmt):
        self.generic_visit(node)
        cond_false = isinstance(node.cond, ast.IntLiteral) and node.cond.value == 0
        if cond_false:
            self.changed = True
            self.ctx.cover_point("loop.for_false")
            # The init clause still executes once.
            if isinstance(node.init, ast.Stmt):
                return node.init
            if isinstance(node.init, ast.Expr) and not is_pure_expr(node.init):
                return ast.ExprStmt(node.init, loc=node.loc)
            return None
        body_pure = _stmt_is_pure(node.body)
        cond_pure = is_pure_expr(node.cond) if node.cond is not None else False
        if body_pure and cond_pure and node.cond is not None:
            # A loop with a pure body whose only stores (the step) hit an
            # induction variable declared in the for-init is unobservable:
            # delete it wholesale.
            step_pure = node.step is None or is_pure_expr(node.step)
            if step_pure or _only_writes_induction(node):
                self.changed = True
                self.ctx.cover_point("loop.pure_for_removed")
                return None
        self.ctx.cover_branch("loop.for_kept", True)
        return node


def _only_writes_induction(node: ast.ForStmt) -> bool:
    """True if every store in the step/body targets a variable declared in
    the for-init (the induction variable), making the loop unobservable."""
    induction_uids = set()
    if isinstance(node.init, ast.DeclStmt):
        for decl in node.init.decls:
            if decl.symbol is not None:
                induction_uids.add(decl.symbol.uid)
    if not induction_uids:
        return False
    for root in (node.step, node.body):
        if root is None:
            continue
        for inner in walk(root):
            target = None
            if isinstance(inner, ast.Assignment):
                target = inner.target
            elif isinstance(inner, ast.IncDec):
                target = inner.operand
            elif isinstance(inner, ast.Call):
                return False
            if target is not None:
                if not (isinstance(target, ast.Identifier) and target.symbol is not None
                        and target.symbol.uid in induction_uids):
                    return False
    return True
