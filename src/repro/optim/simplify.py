"""Algebraic simplification (a small "instcombine").

Rewrites expressions using identities that hold for every *defined*
execution: ``x * 0 -> 0``, ``x * 1 -> x``, ``x + 0 -> x``, ``x - 0 -> x``,
``x / 1 -> x``, ``0 / x -> 0``, ``x & 0 -> 0``, ``x | 0 -> x``,
``x ^ 0 -> x``, ``x << 0 -> x``, ``!(!e) -> (e != 0)`` and double negation.

Several of these erase a subexpression whose evaluation would have been the
program's UB (e.g. an overflowing multiply under ``* 0``), so — like real
compilers — this pass can hide UB from the sanitizer pass that runs later.
The operand is only dropped when it is side-effect free.
"""

from __future__ import annotations

from repro.cdsl import ast_nodes as ast
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.visitor import NodeTransformer
from repro.optim.passes import (
    OptimizationContext,
    OptimizationPass,
    is_pure_expr,
    typed_literal,
)


class AlgebraicSimplifyPass(OptimizationPass):
    name = "simplify"

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> bool:
        simplifier = _Simplifier(ctx)
        for fn in unit.functions:
            if fn.body is not None:
                simplifier.visit(fn.body)
        return simplifier.changed


def _const(expr: ast.Expr) -> int | None:
    return expr.value if isinstance(expr, ast.IntLiteral) else None


class _Simplifier(NodeTransformer):
    def __init__(self, ctx: OptimizationContext) -> None:
        self.ctx = ctx
        self.changed = False

    def _mark(self, rule: str) -> None:
        self.changed = True
        self.ctx.cover_point(f"simplify.{rule}")

    def visit_BinaryOp(self, node: ast.BinaryOp):
        self.generic_visit(node)
        lhs_const = _const(node.lhs)
        rhs_const = _const(node.rhs)
        op = node.op

        if op == "*":
            if rhs_const == 0 and is_pure_expr(node.lhs):
                self._mark("mul_zero")
                return _zero_like(node)
            if lhs_const == 0 and is_pure_expr(node.rhs):
                self._mark("mul_zero")
                return _zero_like(node)
            if rhs_const == 1:
                self._mark("mul_one")
                return node.lhs
            if lhs_const == 1:
                self._mark("mul_one")
                return node.rhs
        elif op == "+":
            if rhs_const == 0:
                self._mark("add_zero")
                return node.lhs
            if lhs_const == 0:
                self._mark("add_zero")
                return node.rhs
        elif op == "-":
            if rhs_const == 0:
                self._mark("sub_zero")
                return node.lhs
        elif op == "/":
            if rhs_const == 1:
                self._mark("div_one")
                return node.lhs
            if lhs_const == 0 and is_pure_expr(node.rhs) and rhs_const != 0:
                self._mark("zero_div")
                return _zero_like(node)
        elif op == "&":
            if (rhs_const == 0 and is_pure_expr(node.lhs)) or \
                    (lhs_const == 0 and is_pure_expr(node.rhs)):
                self._mark("and_zero")
                return _zero_like(node)
        elif op == "|":
            if rhs_const == 0:
                self._mark("or_zero")
                return node.lhs
            if lhs_const == 0:
                self._mark("or_zero")
                return node.rhs
        elif op == "^":
            if rhs_const == 0:
                self._mark("xor_zero")
                return node.lhs
            if lhs_const == 0:
                self._mark("xor_zero")
                return node.rhs
        elif op in ("<<", ">>"):
            if rhs_const == 0:
                self._mark("shift_zero")
                return node.lhs
        elif op == "&&":
            if lhs_const == 0:
                self._mark("logical_false")
                return _zero_like(node)
        elif op == "||":
            if lhs_const is not None and lhs_const != 0:
                self._mark("logical_true")
                return _one_like(node)
        self.ctx.cover_branch("simplify.no_rule", True)
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        if node.op == "-" and isinstance(node.operand, ast.UnaryOp) \
                and node.operand.op == "-":
            self._mark("double_neg")
            return node.operand.operand
        if node.op == "!" and isinstance(node.operand, ast.UnaryOp) \
                and node.operand.op == "!":
            inner = node.operand.operand
            self._mark("double_not")
            cmp = ast.BinaryOp("!=", inner, ast.IntLiteral(0, loc=inner.loc),
                               loc=node.loc)
            cmp.ctype = node.ctype
            return cmp
        return node


def _zero_like(node: ast.Expr) -> ast.IntLiteral:
    # Suffixed so the replaced expression's type survives re-analysis.
    return typed_literal(0, node)


def _one_like(node: ast.Expr) -> ast.IntLiteral:
    return typed_literal(1, node)
