"""The optimization pass framework.

Simulated compilers run a pipeline of AST-level optimization passes *before*
the sanitizer instrumentation pass, mirroring the real pipeline of Figure 2
in the paper.  Because optimizers assume programs are UB-free, these passes
may legally delete or simplify away the very expression that triggers UB in
a mutated program — which is the paper's Challenge 2 and the reason the
crash-site mapping oracle exists.

Every pass must be semantics-preserving for *valid* programs; what it does
to a program whose execution has UB is unconstrained (and that freedom is
exactly what we are modelling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl.sema import SemanticInfo


@dataclass
class OptimizationContext:
    """Configuration shared by all passes of one compilation."""

    compiler: str = "gcc"
    version: int = 14
    opt_level: str = "-O0"
    coverage: object = None

    def cover_branch(self, site: str, taken: bool) -> None:
        if self.coverage is not None:
            self.coverage.hit_branch(f"optim.{site}", taken)

    def cover_point(self, site: str) -> None:
        if self.coverage is not None:
            self.coverage.hit_point(f"optim.{site}")


class OptimizationPass:
    """Base class for AST-level optimization passes."""

    name = "pass"

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> bool:
        """Transform *unit* in place; return True if anything changed."""
        raise NotImplementedError


class PassPipeline:
    """An ordered list of passes, optionally iterated to a fixed point."""

    def __init__(self, passes: List[OptimizationPass], max_iterations: int = 2) -> None:
        self.passes = list(passes)
        self.max_iterations = max_iterations

    @property
    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> List[str]:
        """Run the pipeline; returns the names of passes that changed the AST."""
        changed_passes: List[str] = []
        for _ in range(self.max_iterations):
            changed_this_round = False
            for opt_pass in self.passes:
                if opt_pass.run(unit, sema, ctx):
                    changed_this_round = True
                    changed_passes.append(opt_pass.name)
                    ctx.cover_point(f"{opt_pass.name}.changed")
            if not changed_this_round:
                break
        return changed_passes


# ---------------------------------------------------------------------------
# Shared helpers used by several passes
# ---------------------------------------------------------------------------

def is_pure_expr(expr: Optional[ast.Expr]) -> bool:
    """True if evaluating *expr* has no side effects (no stores or calls).

    Memory reads are considered pure: a UB-free program's reads cannot trap,
    so the optimizer may drop them — the key behaviour behind Figure 3.
    """
    if expr is None:
        return True
    if isinstance(expr, (ast.Assignment, ast.IncDec, ast.Call)):
        return False
    for child in expr.children():
        if isinstance(child, ast.Expr) and not is_pure_expr(child):
            return False
        if isinstance(child, ast.Node) and not isinstance(child, ast.Expr):
            # Initializer lists etc. — treat conservatively.
            if not all(is_pure_expr(c) for c in child.children()
                       if isinstance(c, ast.Expr)):
                return False
    return True


def literal_suffix(ctype) -> str:
    """The literal suffix that preserves *ctype* across re-analysis.

    Optimizer passes materialize constants whose type must survive the
    semantic re-analysis that follows every pipeline (sema derives an
    integer literal's type from its suffix alone).  Types at or below
    ``int`` promote to ``int`` value-preservingly, so a bare literal is
    fine; ``unsigned int``/``long``/``unsigned long`` need their suffix or
    a fold like ``(unsigned int)5 → 5`` silently flips the expression to
    signed arithmetic — a miscompilation the semantic-equivalence property
    suite caught on generated seeds.
    """
    from repro.cdsl import ctypes_ as ct
    if not isinstance(ctype, ct.IntType) or ctype.bits < 32:
        return ""
    if ctype.signed:
        return "l" if ctype.bits > 32 else ""
    return "ul" if ctype.bits > 32 else "u"


def typed_literal(value: int, template: ast.Expr) -> ast.IntLiteral:
    """An integer literal carrying *template*'s type, suffixed to keep it."""
    literal = ast.IntLiteral(value, suffix=literal_suffix(template.ctype),
                             loc=template.loc)
    literal.ctype = template.ctype
    return literal


def expr_constant(expr: Optional[ast.Expr]) -> Optional[int]:
    """Return the literal value of *expr* if it is an integer constant."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" \
            and isinstance(expr.operand, ast.IntLiteral):
        return -expr.operand.value
    if isinstance(expr, ast.Cast):
        return expr_constant(expr.operand)
    return None


def symbols_with_address_taken(root: ast.Node) -> set:
    """UIDs of symbols whose address is taken anywhere under *root*."""
    from repro.cdsl.visitor import walk
    taken = set()
    for node in walk(root):
        if isinstance(node, ast.AddressOf):
            target = node.operand
            # &x, &a[i], &s.f — the underlying variable escapes.
            base = target
            while isinstance(base, (ast.ArraySubscript, ast.MemberAccess)):
                base = base.base
            if isinstance(base, ast.Identifier) and base.symbol is not None:
                taken.add(base.symbol.uid)
    return taken


def symbols_read(root: ast.Node) -> set:
    """UIDs of symbols that appear in a value (non-store-target) position."""
    from repro.cdsl.visitor import walk
    reads = set()
    for node in walk(root):
        if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
            # The *simple* store target itself is not a read (unless compound).
            if node.op != "=" and node.target.symbol is not None:
                reads.add(node.target.symbol.uid)
            for child in walk(node.value):
                if isinstance(child, ast.Identifier) and child.symbol is not None:
                    reads.add(child.symbol.uid)
            # Continue walking handles nested nodes again; duplicates are fine.
        elif isinstance(node, ast.Identifier) and node.symbol is not None:
            reads.add(node.symbol.uid)
    # Remove pure store-target occurrences counted by the generic walk:
    # this over-approximation keeps the analysis sound (more reads = fewer
    # eliminations), which is what an optimizer must guarantee.
    return reads


def declared_volatile(symbol) -> bool:
    decl = getattr(symbol, "decl", None)
    qualifiers = getattr(decl, "qualifiers", ()) if decl is not None else ()
    return "volatile" in qualifiers
