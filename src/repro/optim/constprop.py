"""Local constant propagation.

Within each straight-line statement sequence, remembers local, non-escaping,
non-volatile scalar variables whose most recent assignment was an integer
literal, and replaces later reads with that literal.  Knowledge is dropped
at control-flow statements and calls, which keeps the pass conservative
enough to be trivially correct on valid programs, while still interacting
with UB programs the way real constant propagation does (a propagated
constant index can expose the overflow to later folding or make the
offending expression disappear entirely).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.sema import SemanticInfo
from repro.optim.passes import (
    OptimizationContext,
    OptimizationPass,
    declared_volatile,
    symbols_with_address_taken,
    typed_literal,
)


class ConstantPropagationPass(OptimizationPass):
    name = "constprop"

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> bool:
        changed = False
        for fn in unit.functions:
            if fn.body is None:
                continue
            escaping = symbols_with_address_taken(fn.body)
            propagator = _Propagator(ctx, escaping)
            propagator.process_block(fn.body)
            changed = changed or propagator.changed
        return changed


class _Propagator:
    def __init__(self, ctx: OptimizationContext, escaping: set) -> None:
        self.ctx = ctx
        self.escaping = escaping
        self.changed = False

    # -- statement walking ----------------------------------------------------

    def process_block(self, block: ast.CompoundStmt) -> None:
        known: Dict[int, int] = {}
        for stmt in block.stmts:
            self.process_stmt(stmt, known)

    def process_stmt(self, stmt: ast.Stmt, known: Dict[int, int]) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if isinstance(decl.init, ast.Expr):
                    decl.init = self.rewrite(decl.init, known)
                symbol = decl.symbol
                if symbol is not None and isinstance(decl.init, ast.IntLiteral) \
                        and self._trackable(symbol):
                    known[symbol.uid] = decl.init.value
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.rewrite(stmt.expr, known)
            self.update_facts(stmt.expr, known)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                stmt.value = self.rewrite(stmt.value, known)
        elif isinstance(stmt, ast.CompoundStmt):
            # A nested block inherits facts but contributes none back
            # (its stores may be conditional from the parent's view only
            # if it is a branch body; a plain nested block is fine to keep,
            # we stay conservative and drop everything afterwards).
            for inner in stmt.stmts:
                self.process_stmt(inner, known)
        elif isinstance(stmt, ast.IfStmt):
            stmt.cond = self.rewrite(stmt.cond, known)
            self.ctx.cover_branch("constprop.if", True)
            self.process_stmt(stmt.then, dict(known))
            if stmt.otherwise is not None:
                self.process_stmt(stmt.otherwise, dict(known))
            self._invalidate_written(stmt, known)
        elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
            # Loops: do not propagate into or across; invalidate facts about
            # anything the loop writes.
            self.ctx.cover_branch("constprop.loop", True)
            self._invalidate_written(stmt, known)
            self._process_loop_children(stmt, known)
        else:
            pass

    def _process_loop_children(self, stmt: ast.Stmt, known: Dict[int, int]) -> None:
        # Recurse with an empty fact set so nested straight-line code still
        # benefits from locally-established constants.
        if isinstance(stmt, ast.WhileStmt):
            self.process_stmt(stmt.body, {})
        elif isinstance(stmt, ast.ForStmt):
            if isinstance(stmt.init, ast.Stmt):
                self.process_stmt(stmt.init, {})
            self.process_stmt(stmt.body, {})

    # -- facts ----------------------------------------------------------------

    def _trackable(self, symbol) -> bool:
        return (symbol.storage == "local" and symbol.uid not in self.escaping
                and not declared_volatile(symbol)
                and isinstance(symbol.ctype, ct.IntType))

    def update_facts(self, expr: ast.Expr, known: Dict[int, int]) -> None:
        if isinstance(expr, ast.Assignment) and isinstance(expr.target, ast.Identifier):
            symbol = expr.target.symbol
            if symbol is None:
                return
            if expr.op == "=" and isinstance(expr.value, ast.IntLiteral) \
                    and self._trackable(symbol):
                known[symbol.uid] = expr.value.value
            else:
                known.pop(symbol.uid, None)
        elif isinstance(expr, (ast.Assignment, ast.IncDec, ast.Call, ast.CommaExpr)):
            # Stores through pointers or calls may change anything observable;
            # only locals that never escape survive (they cannot alias).
            if isinstance(expr, ast.IncDec) and isinstance(expr.operand, ast.Identifier):
                symbol = expr.operand.symbol
                if symbol is not None:
                    known.pop(symbol.uid, None)

    def _invalidate_written(self, stmt: ast.Stmt, known: Dict[int, int]) -> None:
        from repro.cdsl.visitor import walk
        for node in walk(stmt):
            target = None
            if isinstance(node, ast.Assignment):
                target = node.target
            elif isinstance(node, ast.IncDec):
                target = node.operand
            if isinstance(target, ast.Identifier) and target.symbol is not None:
                known.pop(target.symbol.uid, None)

    # -- expression rewriting --------------------------------------------------

    def rewrite(self, expr: ast.Expr, known: Dict[int, int]) -> ast.Expr:
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            if symbol is not None and symbol.uid in known:
                self.changed = True
                self.ctx.cover_point("constprop.replaced")
                # Suffixed so the variable's type survives re-analysis.
                return typed_literal(known[symbol.uid], expr)
            return expr
        if isinstance(expr, ast.Assignment):
            expr.value = self.rewrite(expr.value, known)
            # Only rewrite *reads* inside the target (indices), never the
            # stored-to variable itself.
            expr.target = self._rewrite_target(expr.target, known)
            return expr
        if isinstance(expr, ast.IncDec):
            return expr
        if isinstance(expr, ast.AddressOf):
            return expr
        for field_name in expr._fields:
            value = getattr(expr, field_name, None)
            if isinstance(value, ast.Expr):
                setattr(expr, field_name, self.rewrite(value, known))
            elif isinstance(value, list):
                for i, item in enumerate(value):
                    if isinstance(item, ast.Expr):
                        value[i] = self.rewrite(item, known)
        return expr

    def _rewrite_target(self, target: ast.Expr, known: Dict[int, int]) -> ast.Expr:
        if isinstance(target, ast.ArraySubscript):
            target.index = self.rewrite(target.index, known)
            target.base = self._rewrite_target(target.base, known)
        elif isinstance(target, ast.Deref):
            target.pointer = self.rewrite(target.pointer, known)
        elif isinstance(target, ast.MemberAccess):
            target.base = self._rewrite_target(target.base, known)
        return target
