"""Constant folding.

Folds arithmetic/logical/relational operations over integer literals into a
single literal, folds casts of literals, and simplifies branches whose
condition is a constant.  Folding follows the C abstract machine for defined
operations and deliberately refuses to fold operations whose result would be
undefined (division by zero, out-of-range shifts, signed overflow): real
compilers keep those expressions — and that is what leaves UB visible to the
sanitizer pass at higher optimization levels.
"""

from __future__ import annotations

from typing import Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.visitor import NodeTransformer
from repro.optim.passes import (
    OptimizationContext,
    OptimizationPass,
    typed_literal,
)


class ConstantFoldPass(OptimizationPass):
    name = "constant-fold"

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> bool:
        folder = _Folder(ctx)
        for fn in unit.functions:
            if fn.body is not None:
                folder.visit(fn.body)
        return folder.changed


class _Folder(NodeTransformer):
    def __init__(self, ctx: OptimizationContext) -> None:
        self.ctx = ctx
        self.changed = False

    # -- expressions ---------------------------------------------------------

    def visit_BinaryOp(self, node: ast.BinaryOp):
        self.generic_visit(node)
        lhs = _literal_value(node.lhs)
        rhs = _literal_value(node.rhs)
        if lhs is None or rhs is None:
            return node
        folded = _fold_binary(node.op, lhs, rhs, node.ctype)
        if folded is None:
            self.ctx.cover_branch("fold.binary_refused", True)
            return node
        self.ctx.cover_branch("fold.binary_refused", False)
        self.changed = True
        return _literal(folded, node)

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        value = _literal_value(node.operand)
        if value is None:
            return node
        if node.op == "-":
            result = -value
        elif node.op == "+":
            result = value
        elif node.op == "!":
            result = 0 if value else 1
        elif node.op == "~":
            result = ~value
        else:
            return node
        if isinstance(node.ctype, ct.IntType) and not node.ctype.contains(result):
            result = node.ctype.wrap(result)
        self.changed = True
        return _literal(result, node)

    def visit_Cast(self, node: ast.Cast):
        self.generic_visit(node)
        value = _literal_value(node.operand)
        if value is None or not isinstance(node.target_type, ct.IntType):
            return node
        self.changed = True
        return _literal(node.target_type.wrap(value), node)

    def visit_Conditional(self, node: ast.Conditional):
        self.generic_visit(node)
        cond = _literal_value(node.cond)
        if cond is None:
            return node
        self.changed = True
        self.ctx.cover_point("fold.ternary")
        return node.then if cond else node.otherwise

    # -- statements ----------------------------------------------------------

    def visit_IfStmt(self, node: ast.IfStmt):
        self.generic_visit(node)
        cond = _literal_value(node.cond)
        if cond is None:
            return node
        self.changed = True
        self.ctx.cover_point("fold.if_const")
        if cond:
            return node.then
        if node.otherwise is not None:
            return node.otherwise
        return None  # delete the statement entirely

    def visit_WhileStmt(self, node: ast.WhileStmt):
        self.generic_visit(node)
        cond = _literal_value(node.cond)
        if cond == 0:
            self.changed = True
            self.ctx.cover_point("fold.while_false")
            return None
        return node


# ---------------------------------------------------------------------------
# folding helpers
# ---------------------------------------------------------------------------

def _literal(value: int, template: ast.Expr) -> ast.IntLiteral:
    # Suffixed so the template's type survives semantic re-analysis (see
    # repro.optim.passes.literal_suffix).
    return typed_literal(value, template)


def _literal_value(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    return None


def _fold_binary(op: str, lhs: int, rhs: int, ctype) -> Optional[int]:
    """Fold a defined operation; return None when folding is not allowed."""
    int_type = ctype if isinstance(ctype, ct.IntType) else ct.INT
    if op == "+":
        result = lhs + rhs
    elif op == "-":
        result = lhs - rhs
    elif op == "*":
        result = lhs * rhs
    elif op in ("/", "%"):
        if rhs == 0:
            return None  # undefined: leave it for the sanitizer / runtime
        quotient = abs(lhs) // abs(rhs)
        if (lhs >= 0) != (rhs >= 0):
            quotient = -quotient
        result = quotient if op == "/" else lhs - quotient * rhs
    elif op in ("<<", ">>"):
        if rhs < 0 or rhs >= int_type.bits:
            return None  # undefined shift: do not fold
        result = lhs << rhs if op == "<<" else lhs >> rhs
    elif op == "&":
        result = lhs & rhs
    elif op == "|":
        result = lhs | rhs
    elif op == "^":
        result = lhs ^ rhs
    elif op == "&&":
        return 1 if (lhs and rhs) else 0
    elif op == "||":
        return 1 if (lhs or rhs) else 0
    elif op in ("==", "!=", "<", ">", "<=", ">="):
        table = {"==": lhs == rhs, "!=": lhs != rhs, "<": lhs < rhs,
                 ">": lhs > rhs, "<=": lhs <= rhs, ">=": lhs >= rhs}
        return int(table[op])
    else:
        return None
    if int_type.signed and not int_type.contains(result):
        return None  # signed overflow is UB: leave the expression alone
    return int_type.wrap(result)
