"""AST-level optimization passes and per-compiler pipelines."""

from repro.optim.constant_fold import ConstantFoldPass
from repro.optim.constprop import ConstantPropagationPass
from repro.optim.dce import DeadCodeEliminationPass
from repro.optim.dse import DeadStoreEliminationPass
from repro.optim.loop_opts import LoopOptimizationPass
from repro.optim.passes import (
    OptimizationContext,
    OptimizationPass,
    PassPipeline,
    expr_constant,
    is_pure_expr,
)
from repro.optim.pipelines import (
    DEFAULT_OPTIMIZER_DEFECTS,
    OPT_LEVELS,
    PASS_INTRODUCED,
    OptimizerDefect,
    effective_pass_names,
    pipeline_for,
)
from repro.optim.simplify import AlgebraicSimplifyPass

__all__ = [
    "ConstantFoldPass",
    "ConstantPropagationPass",
    "DeadCodeEliminationPass",
    "DeadStoreEliminationPass",
    "LoopOptimizationPass",
    "OptimizationContext",
    "OptimizationPass",
    "PassPipeline",
    "expr_constant",
    "is_pure_expr",
    "OPT_LEVELS",
    "PASS_INTRODUCED",
    "OptimizerDefect",
    "DEFAULT_OPTIMIZER_DEFECTS",
    "effective_pass_names",
    "pipeline_for",
    "AlgebraicSimplifyPass",
]
