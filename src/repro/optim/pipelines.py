"""Per-compiler, per-level optimization pipelines.

The two simulated compilers run the same pass *implementations* but differ —
like real GCC and LLVM — in which passes run at which level, their order and
how many times the pipeline is iterated.  These differences are what make
cross-compiler differential testing meaningful: the same UB program may keep
its UB under one compiler's pipeline and lose it under the other's.
"""

from __future__ import annotations

from typing import Dict, List

from repro.optim.constant_fold import ConstantFoldPass
from repro.optim.constprop import ConstantPropagationPass
from repro.optim.dce import DeadCodeEliminationPass
from repro.optim.dse import DeadStoreEliminationPass
from repro.optim.loop_opts import LoopOptimizationPass
from repro.optim.passes import OptimizationPass, PassPipeline
from repro.optim.simplify import AlgebraicSimplifyPass

OPT_LEVELS = ("-O0", "-O1", "-Os", "-O2", "-O3")


def _gcc_passes(opt_level: str) -> List[OptimizationPass]:
    if opt_level == "-O0":
        # GCC still folds constants at -O0 (the paper notes that even -O0
        # performs basic optimizations such as constant folding).
        return [ConstantFoldPass()]
    if opt_level == "-O1":
        return [ConstantFoldPass(), DeadCodeEliminationPass()]
    if opt_level == "-Os":
        return [ConstantFoldPass(), AlgebraicSimplifyPass(),
                DeadCodeEliminationPass(), DeadStoreEliminationPass()]
    if opt_level == "-O2":
        return [ConstantPropagationPass(), ConstantFoldPass(),
                AlgebraicSimplifyPass(), DeadStoreEliminationPass(),
                DeadCodeEliminationPass()]
    # -O3
    return [ConstantPropagationPass(), ConstantFoldPass(),
            AlgebraicSimplifyPass(), LoopOptimizationPass(),
            DeadStoreEliminationPass(), DeadCodeEliminationPass()]


def _llvm_passes(opt_level: str) -> List[OptimizationPass]:
    if opt_level == "-O0":
        return []
    if opt_level == "-O1":
        return [ConstantFoldPass(), AlgebraicSimplifyPass(),
                DeadCodeEliminationPass()]
    if opt_level == "-Os":
        return [ConstantFoldPass(), AlgebraicSimplifyPass(),
                DeadStoreEliminationPass(), DeadCodeEliminationPass()]
    if opt_level == "-O2":
        return [AlgebraicSimplifyPass(), ConstantPropagationPass(),
                ConstantFoldPass(), DeadStoreEliminationPass(),
                LoopOptimizationPass(), DeadCodeEliminationPass()]
    # -O3
    return [AlgebraicSimplifyPass(), ConstantPropagationPass(),
            ConstantFoldPass(), DeadStoreEliminationPass(),
            LoopOptimizationPass(), DeadCodeEliminationPass()]


_BUILDERS = {"gcc": _gcc_passes, "llvm": _llvm_passes}

_ITERATIONS: Dict[str, Dict[str, int]] = {
    "gcc": {"-O0": 1, "-O1": 1, "-Os": 2, "-O2": 2, "-O3": 3},
    "llvm": {"-O0": 1, "-O1": 1, "-Os": 2, "-O2": 3, "-O3": 3},
}


def pipeline_for(compiler: str, opt_level: str) -> PassPipeline:
    """Build the pass pipeline for a compiler at an optimization level."""
    if compiler not in _BUILDERS:
        raise KeyError(f"unknown compiler {compiler!r}")
    if opt_level not in OPT_LEVELS:
        raise KeyError(f"unknown optimization level {opt_level!r}")
    passes = _BUILDERS[compiler](opt_level)
    iterations = _ITERATIONS[compiler].get(opt_level, 1)
    return PassPipeline(passes, max_iterations=iterations)
