"""Per-compiler, per-level optimization pipelines.

The two simulated compilers run the same pass *implementations* but differ —
like real GCC and LLVM — in which passes run at which level, their order and
how many times the pipeline is iterated.  These differences are what make
cross-compiler differential testing meaningful: the same UB program may keep
its UB under one compiler's pipeline and lose it under the other's.

Pipelines are optionally **version-aware**: passing a ``version`` to
:func:`pipeline_for` models the optimizer's release history —

* each pass has an *introduction version* per compiler
  (:data:`PASS_INTRODUCED`): older releases simply do not run it;
* seeded :class:`OptimizerDefect` windows disable a pass at specific
  levels between an ``introduced`` and a ``fixed`` release, modelling the
  optimizer regressions the marker-based missed-optimization engine
  (:mod:`repro.markers`) exists to find.

``version=None`` (the default everywhere outside the marker engine) keeps
the historical flat behaviour: every pass of the level runs regardless of
release, so differential testing and defect bisection are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.optim.constant_fold import ConstantFoldPass
from repro.optim.constprop import ConstantPropagationPass
from repro.optim.dce import DeadCodeEliminationPass
from repro.optim.dse import DeadStoreEliminationPass
from repro.optim.loop_opts import LoopOptimizationPass
from repro.optim.passes import OptimizationPass, PassPipeline
from repro.optim.simplify import AlgebraicSimplifyPass

OPT_LEVELS = ("-O0", "-O1", "-Os", "-O2", "-O3")

#: First release of each compiler that runs a given pass (absent = always).
#: Mirrors how real optimizations land in some release and only exist from
#: then on; versions predate :data:`repro.compilers.versions` trunk.
PASS_INTRODUCED: Dict[str, Dict[str, int]] = {
    "gcc": {"dse": 7, "constprop": 8, "loop-opts": 9},
    "llvm": {"dse": 7, "constprop": 9, "loop-opts": 10},
}


@dataclass(frozen=True)
class OptimizerDefect:
    """A seeded optimizer regression: *pass_name* stops running for
    *compiler* at *opt_levels* from release ``introduced`` until (but not
    including) release ``fixed``.

    These are quality regressions, not miscompilations — a disabled pass
    only ever makes the compiler *retain* code it used to eliminate, which
    is exactly the cross-version signal the marker engine diffs for.
    """

    compiler: str
    pass_name: str
    opt_levels: Tuple[str, ...]
    introduced: int
    fixed: int

    def active_for(self, compiler: str, version: int, opt_level: str) -> bool:
        return (compiler == self.compiler
                and opt_level in self.opt_levels
                and self.introduced <= version < self.fixed)


#: The seeded optimizer-regression windows.  All are fixed before trunk, so
#: default (trunk-version) compilers never see them; the marker engine's
#: cross-version sweep rediscovers each as a regression finding.  Every
#: seeded pass is one that can eliminate a planted marker (marker calls are
#: impure, so only dead-branch folding, constant propagation feeding it,
#: and whole-loop deletion ever remove one).
DEFAULT_OPTIMIZER_DEFECTS: Tuple[OptimizerDefect, ...] = (
    OptimizerDefect("gcc", "constprop", ("-O2",), introduced=11, fixed=12),
    OptimizerDefect("gcc", "constant-fold", ("-O3",), introduced=12, fixed=13),
    OptimizerDefect("llvm", "loop-opts", ("-O3",), introduced=14, fixed=16),
)


def _gcc_passes(opt_level: str) -> List[OptimizationPass]:
    if opt_level == "-O0":
        # GCC still folds constants at -O0 (the paper notes that even -O0
        # performs basic optimizations such as constant folding).
        return [ConstantFoldPass()]
    if opt_level == "-O1":
        return [ConstantFoldPass(), DeadCodeEliminationPass()]
    if opt_level == "-Os":
        return [ConstantFoldPass(), AlgebraicSimplifyPass(),
                DeadCodeEliminationPass(), DeadStoreEliminationPass()]
    if opt_level == "-O2":
        return [ConstantPropagationPass(), ConstantFoldPass(),
                AlgebraicSimplifyPass(), DeadStoreEliminationPass(),
                DeadCodeEliminationPass()]
    # -O3
    return [ConstantPropagationPass(), ConstantFoldPass(),
            AlgebraicSimplifyPass(), LoopOptimizationPass(),
            DeadStoreEliminationPass(), DeadCodeEliminationPass()]


def _llvm_passes(opt_level: str) -> List[OptimizationPass]:
    if opt_level == "-O0":
        return []
    if opt_level == "-O1":
        return [ConstantFoldPass(), AlgebraicSimplifyPass(),
                DeadCodeEliminationPass()]
    if opt_level == "-Os":
        return [ConstantFoldPass(), AlgebraicSimplifyPass(),
                DeadStoreEliminationPass(), DeadCodeEliminationPass()]
    if opt_level == "-O2":
        return [AlgebraicSimplifyPass(), ConstantPropagationPass(),
                ConstantFoldPass(), DeadStoreEliminationPass(),
                LoopOptimizationPass(), DeadCodeEliminationPass()]
    # -O3
    return [AlgebraicSimplifyPass(), ConstantPropagationPass(),
            ConstantFoldPass(), DeadStoreEliminationPass(),
            LoopOptimizationPass(), DeadCodeEliminationPass()]


_BUILDERS = {"gcc": _gcc_passes, "llvm": _llvm_passes}

_ITERATIONS: Dict[str, Dict[str, int]] = {
    "gcc": {"-O0": 1, "-O1": 1, "-Os": 2, "-O2": 2, "-O3": 3},
    "llvm": {"-O0": 1, "-O1": 1, "-Os": 2, "-O2": 3, "-O3": 3},
}


def pipeline_for(compiler: str, opt_level: str,
                 version: Optional[int] = None,
                 defects: Sequence[OptimizerDefect] = DEFAULT_OPTIMIZER_DEFECTS
                 ) -> PassPipeline:
    """Build the pass pipeline for a compiler at an optimization level.

    With ``version=None`` (the default) the flat, release-independent
    pipeline is returned.  With a version, passes not yet introduced at
    that release (:data:`PASS_INTRODUCED`) and passes inside an active
    :class:`OptimizerDefect` window are removed — the version-aware mode
    the marker engine compiles its config matrix under.
    """
    if compiler not in _BUILDERS:
        raise KeyError(f"unknown compiler {compiler!r}")
    if opt_level not in OPT_LEVELS:
        raise KeyError(f"unknown optimization level {opt_level!r}")
    passes = _BUILDERS[compiler](opt_level)
    if version is not None:
        introduced = PASS_INTRODUCED.get(compiler, {})
        passes = [p for p in passes
                  if introduced.get(p.name, 0) <= version
                  and not any(d.pass_name == p.name
                              and d.active_for(compiler, version, opt_level)
                              for d in defects)]
    iterations = _ITERATIONS[compiler].get(opt_level, 1)
    return PassPipeline(passes, max_iterations=iterations)


def effective_pass_names(compiler: str, opt_level: str,
                         version: Optional[int] = None,
                         defects: Sequence[OptimizerDefect] = DEFAULT_OPTIMIZER_DEFECTS
                         ) -> List[str]:
    """Names of the passes :func:`pipeline_for` would run for this config.

    The marker engine diffs these between adjacent releases to attribute a
    cross-version regression to the pass that stopped running.
    """
    return pipeline_for(compiler, opt_level, version, defects).pass_names
