"""Dead store elimination.

Two flavours, both conservative:

* stores to *local scalar* variables that are never read anywhere in the
  function and whose address is never taken — the store is dropped, keeping
  the right-hand side only if it has side effects;
* stores into *local arrays* that are never read and never escape — the
  whole statement is dropped.  This is the transformation that deletes the
  ``d[1] = 1`` overflow in the paper's Figure 3.

Eliminating such a store is only observable in a program whose execution has
UB (e.g. the store was an out-of-bounds write that would have clobbered a
neighbour), so the pass is safe for valid seeds and "dangerous" for UB
programs — exactly the behaviour crash-site mapping must recognise.
"""

from __future__ import annotations

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.visitor import NodeTransformer, walk
from repro.optim.passes import (
    OptimizationContext,
    OptimizationPass,
    declared_volatile,
    is_pure_expr,
    symbols_with_address_taken,
)


class DeadStoreEliminationPass(OptimizationPass):
    name = "dse"

    def run(self, unit: ast.TranslationUnit, sema: SemanticInfo,
            ctx: OptimizationContext) -> bool:
        changed = False
        for fn in unit.functions:
            if fn.body is None:
                continue
            # Iterate to a fixpoint within the function: removing the last
            # use of a variable (e.g. a dead pointer initialized from an
            # array) can make further variables dead in turn.
            for _ in range(5):
                dead = _dead_symbols(fn)
                if not dead:
                    break
                eliminator = _StoreEliminator(ctx, dead)
                eliminator.visit(fn.body)
                if not eliminator.changed:
                    break
                changed = True
        return changed


def _dead_symbols(fn: ast.FunctionDecl) -> set:
    """Local variables that are written but never read (and never escape)."""
    escaping = symbols_with_address_taken(fn.body)
    reads: set = set()
    declared: dict = {}

    def note_reads(node: ast.Node) -> None:
        """Collect symbols read by *node*, skipping pure store-target bases."""
        if isinstance(node, ast.Assignment):
            note_reads(node.value)
            if node.op != "=":
                # Compound assignment also reads the target.
                _collect_identifiers(node.target, reads)
            else:
                _note_target_index_reads(node.target, reads)
            return
        if isinstance(node, ast.IncDec):
            # x++ both reads and writes x; treat as a read to stay sound.
            _collect_identifiers(node.operand, reads)
            return
        if isinstance(node, ast.Identifier):
            if node.symbol is not None:
                reads.add(node.symbol.uid)
            return
        for child in node.children():
            note_reads(child)

    for node in walk(fn.body):
        if isinstance(node, ast.VarDecl) and node.symbol is not None:
            declared[node.symbol.uid] = node.symbol

    note_reads(fn.body)

    dead = set()
    for uid, symbol in declared.items():
        if uid in reads or uid in escaping or declared_volatile(symbol):
            continue
        if symbol.storage != "local":
            continue
        if isinstance(symbol.ctype, (ct.ArrayType, ct.IntType, ct.PointerType)):
            dead.add(uid)
    return dead


def _collect_identifiers(expr: ast.Node, into: set) -> None:
    for node in walk(expr):
        if isinstance(node, ast.Identifier) and node.symbol is not None:
            into.add(node.symbol.uid)


def _note_target_index_reads(target: ast.Expr, into: set) -> None:
    """For a store target like ``a[i].f``, the index/pointer expressions are
    reads but the stored-to base variable itself is not."""
    if isinstance(target, ast.ArraySubscript):
        _collect_identifiers(target.index, into)
        _note_target_index_reads(target.base, into)
    elif isinstance(target, ast.MemberAccess):
        if target.arrow:
            # p->f reads the pointer p.
            _collect_identifiers(target.base, into)
        else:
            _note_target_index_reads(target.base, into)
    elif isinstance(target, ast.Deref):
        _collect_identifiers(target.pointer, into)
    # A plain Identifier target is a pure write: no reads recorded.


class _StoreEliminator(NodeTransformer):
    def __init__(self, ctx: OptimizationContext, dead: set) -> None:
        self.ctx = ctx
        self.dead = dead
        self.changed = False

    def visit_ExprStmt(self, node: ast.ExprStmt):
        self.generic_visit(node)
        expr = node.expr
        if isinstance(expr, ast.Assignment) and self._targets_dead(expr.target):
            self.changed = True
            self.ctx.cover_branch("dse.removed_store", True)
            if is_pure_expr(expr.value):
                return None
            # Keep the side effects of the right-hand side.
            return ast.ExprStmt(expr.value, loc=node.loc)
        self.ctx.cover_branch("dse.removed_store", False)
        return node

    def visit_DeclStmt(self, node: ast.DeclStmt):
        self.generic_visit(node)
        kept: list = []
        side_effects: list = []
        for decl in node.decls:
            symbol = decl.symbol
            is_dead = (symbol is not None and symbol.uid in self.dead)
            if not is_dead:
                kept.append(decl)
                continue
            self.changed = True
            self.ctx.cover_branch("dse.removed_decl", True)
            if decl.init is not None and isinstance(decl.init, ast.Expr) \
                    and not is_pure_expr(decl.init):
                side_effects.append(ast.ExprStmt(decl.init, loc=decl.loc))
        if len(kept) == len(node.decls):
            return node
        out: list = side_effects
        if kept:
            node.decls = kept
            out.append(node)
        if not out:
            return None
        if len(out) == 1:
            return out[0]
        return out

    def _targets_dead(self, target: ast.Expr) -> bool:
        base = target
        while isinstance(base, (ast.ArraySubscript, ast.MemberAccess)):
            if isinstance(base, ast.ArraySubscript) and not is_pure_expr(base.index):
                return False
            base = base.base
        return (isinstance(base, ast.Identifier) and base.symbol is not None
                and base.symbol.uid in self.dead)
