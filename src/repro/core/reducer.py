"""Backward-compatible alias of :mod:`repro.reduction`.

The test-case reducer grew into its own package (hierarchical multi-pass
reduction with parallel candidate evaluation); this module keeps the
historical import path ``repro.core.reducer`` working.
"""

from repro.reduction import (
    HierarchicalReducer,
    ProgramReducer,
    ReductionResult,
    make_fn_bug_predicate,
)

__all__ = ["HierarchicalReducer", "ProgramReducer", "ReductionResult",
           "make_fn_bug_predicate"]
