"""Test-case reduction (the paper uses C-Reduce before reporting bugs).

A simple delta-debugging reducer over statements and top-level declarations:
repeatedly try removing program elements while a caller-supplied predicate
("the reduced program still triggers the same sanitizer FN bug") keeps
holding.  The default predicate re-runs the differential test for the bug's
detecting and missing configurations and re-applies crash-site mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl.parser import parse_program
from repro.cdsl.printer import print_program
from repro.cdsl.sema import analyze
from repro.cdsl.visitor import clone, find_nodes
from repro.core.crash_site import is_sanitizer_bug_from_results
from repro.core.differential import DifferentialTester, TestConfig
from repro.core.insertion import UBProgram
from repro.core.ub_types import detects

Predicate = Callable[[str], bool]


@dataclass
class ReductionResult:
    """Outcome of one reduction: the final source and some counters."""

    original_source: str
    reduced_source: str
    attempts: int
    removed_statements: int

    @property
    def reduction_ratio(self) -> float:
        before = max(1, len(self.original_source.splitlines()))
        after = len(self.reduced_source.splitlines())
        return 1.0 - after / before


class ProgramReducer:
    """Greedy statement-level delta debugging."""

    def __init__(self, predicate: Predicate, max_rounds: int = 6) -> None:
        self.predicate = predicate
        self.max_rounds = max_rounds

    def reduce(self, source: str) -> ReductionResult:
        attempts = 0
        removed = 0
        current = source
        for _ in range(self.max_rounds):
            progress = False
            candidates = self._removal_candidates(current)
            for candidate in candidates:
                attempts += 1
                if not self._is_valid(candidate):
                    continue
                if self.predicate(candidate):
                    current = candidate
                    removed += 1
                    progress = True
                    break  # recompute candidates against the smaller program
            if not progress:
                break
        return ReductionResult(original_source=source, reduced_source=current,
                               attempts=attempts, removed_statements=removed)

    # -- candidate generation ---------------------------------------------------------

    def _removal_candidates(self, source: str) -> List[str]:
        """All programs obtained by deleting one statement or declaration."""
        try:
            unit = parse_program(source)
        except Exception:
            return []
        candidates: List[str] = []
        blocks = find_nodes(unit, ast.CompoundStmt)
        for block_index, block in enumerate(blocks):
            for stmt_index in range(len(block.stmts)):
                mutated = clone(unit)
                mutated_blocks = find_nodes(mutated, ast.CompoundStmt)
                target = mutated_blocks[block_index]
                if isinstance(target.stmts[stmt_index], ast.ReturnStmt):
                    continue
                del target.stmts[stmt_index]
                candidates.append(print_program(mutated))
        # Also try dropping whole top-level declarations (globals, functions).
        for decl_index, decl in enumerate(unit.decls):
            if isinstance(decl, ast.FunctionDecl) and decl.name == "main":
                continue
            mutated = clone(unit)
            del mutated.decls[decl_index]
            candidates.append(print_program(mutated))
        return candidates

    @staticmethod
    def _is_valid(source: str) -> bool:
        try:
            unit = parse_program(source)
            analyze(unit)
        except Exception:
            return False
        return True


def make_fn_bug_predicate(program: UBProgram, detecting: TestConfig,
                          missing: TestConfig,
                          tester: Optional[DifferentialTester] = None) -> Predicate:
    """Build the "still triggers this FN bug" predicate for reduction."""
    tester = tester or DifferentialTester()

    def predicate(source: str) -> bool:
        candidate = UBProgram(source=source, ub_type=program.ub_type,
                              seed_index=program.seed_index,
                              description=program.description)
        detecting_outcome = tester.run_config(candidate, detecting)
        missing_outcome = tester.run_config(candidate, missing)
        if detecting_outcome.result is None or missing_outcome.result is None:
            return False
        if not detecting_outcome.detected:
            return False
        if not detects(program.ub_type, detecting_outcome.result.report.kind):
            return False
        if not missing_outcome.result.exited_normally:
            return False
        verdict = is_sanitizer_bug_from_results(detecting_outcome.result,
                                                missing_outcome.result)
        return verdict.is_bug

    return predicate
