"""Bug reports, deduplication and root-cause triage.

The fuzzing campaign turns oracle-confirmed discrepancies
(:class:`~repro.core.differential.FNBugCandidate`) into
:class:`BugReport` objects, mirroring how the paper's authors reduced and
reported their findings:

* **deduplication** — many UB programs trigger the same underlying compiler
  defect; candidates are grouped so one report corresponds to one distinct
  bug;
* **triage** — the responsible defect is located by *bisection over the
  defect registry*: the program is recompiled for the silent configuration
  with one seeded defect disabled at a time, and the defect whose removal
  makes the sanitizer detect the UB again is the root cause.  This mirrors
  the "confirmed by developers / root-cause analysis" step of §4.6 and gives
  us the ground truth for Table 6, Figures 10 and 11;
* **status** — a report is *confirmed* when triage identifies a seeded
  defect, *fixed* when that defect has a ``fixed_version``, and *invalid*
  when no defect explains it (the tool's false alarm — the paper had exactly
  one such report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.compilers.compiler import make_compiler
from repro.compilers.options import ALL_OPT_LEVELS, CompileOptions
from repro.compilers.versions import stable_versions, trunk_version
from repro.core.crash_site import is_sanitizer_bug_from_results
from repro.core.differential import FNBugCandidate, WrongReportCandidate
from repro.core.insertion import UBProgram
from repro.core.ub_types import UBType, detects
from repro.sanitizers.defects import Defect, default_defects
from repro.utils.errors import CompilationError

STATUS_REPORTED = "reported"
STATUS_CONFIRMED = "confirmed"
STATUS_FIXED = "fixed"
STATUS_INVALID = "invalid"


@dataclass
class BugReport:
    """One deduplicated sanitizer bug found by the campaign.

    ``bug_id`` names the seeded defect triage attributed the bug to (or an
    ``unexplained-…`` placeholder); ``status`` is one of the ``STATUS_*``
    constants; ``affected_opt_levels`` / ``affected_versions`` reproduce
    Figures 10-11; ``metadata`` carries the detecting/missing configuration
    labels and, when reduction ran, its quality stats.
    """

    bug_id: str
    compiler: str
    sanitizer: str
    ub_type: UBType
    program: UBProgram
    crash_site: Optional[tuple]
    is_false_negative: bool = True
    defect: Optional[Defect] = None
    status: str = STATUS_REPORTED
    category: Optional[str] = None
    affected_opt_levels: List[str] = field(default_factory=list)
    affected_versions: List[int] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def confirmed(self) -> bool:
        return self.status in (STATUS_CONFIRMED, STATUS_FIXED)


class BugTriager:
    """Attributes FN bug candidates to seeded defects and builds reports.

    Args:
        registry: defect registry to bisect over (default: the seeded one).
        max_steps: VM step budget per probe execution.
        compilation_cache: optional shared
            :class:`~repro.compilers.cache.CompilationCache`.
        reduce: reduce every FN candidate's program to a minimal reproducer
            (via :func:`repro.reduction.reduce_fn_candidate`) before
            bisection and deduplication — smaller programs make every
            bisection probe cheaper and the filed report minimal.
        reduce_jobs: worker processes for reduction candidate evaluation.
    """

    def __init__(self, registry: Optional[Sequence[Defect]] = None,
                 max_steps: int = 200_000,
                 compilation_cache=None,
                 reduce: bool = False,
                 reduce_jobs: int = 1,
                 vm: str = "compiled") -> None:
        self.registry = list(registry) if registry is not None else default_defects()
        self.max_steps = max_steps
        # Sharing the campaign's CompilationCache pays off heavily here:
        # bisection probes the same program once per (version, opt level,
        # disabled defect), and the cached phases are keyed on exactly
        # (source, compiler, version, opt level) — defect registries only
        # affect the uncached sanitizer overlay.
        self.compilation_cache = compilation_cache
        self.reduce = reduce
        self.reduce_jobs = reduce_jobs
        self.vm = vm
        self._reduction_tester = None

    # -- public ------------------------------------------------------------------

    def triage_fn_candidate(self, candidate: FNBugCandidate) -> BugReport:
        reduction = None
        if self.reduce:
            candidate, reduction = self._reduce_candidate(candidate)
        config = candidate.missing.config
        defect = self._bisect_defect(candidate)
        status = STATUS_INVALID
        category = None
        if defect is not None:
            status = STATUS_FIXED if defect.fixed_version is not None else STATUS_CONFIRMED
            category = defect.category
        bug_id = defect.defect_id if defect is not None else (
            f"unexplained-{config.compiler}-{config.sanitizer}-"
            f"{candidate.program.ub_type.value}")
        report = BugReport(
            bug_id=bug_id, compiler=config.compiler, sanitizer=config.sanitizer,
            ub_type=candidate.program.ub_type, program=candidate.program,
            crash_site=candidate.crash_site, defect=defect, status=status,
            category=category, is_false_negative=True,
            metadata={"missing_config": config.label,
                      "detecting_config": candidate.detecting.config.label})
        if reduction is not None:
            report.metadata["reduction"] = {
                "original_tokens": reduction.original_tokens,
                "reduced_tokens": reduction.reduced_tokens,
                "token_reduction": round(reduction.token_reduction, 4),
                "predicate_evaluations": reduction.predicate_evaluations,
                "duration_seconds": round(reduction.duration_seconds, 3)}
        report.affected_opt_levels = self._affected_opt_levels(report)
        report.affected_versions = self._affected_versions(report)
        return report

    def triage_wrong_report(self, candidate: WrongReportCandidate) -> BugReport:
        config = candidate.second.config
        defect = self._find_wrong_report_defect(candidate)
        status = STATUS_CONFIRMED if defect is not None else STATUS_REPORTED
        bug_id = defect.defect_id if defect is not None else (
            f"wrong-report-{config.compiler}-{config.sanitizer}")
        return BugReport(
            bug_id=bug_id, compiler=config.compiler, sanitizer=config.sanitizer,
            ub_type=candidate.program.ub_type, program=candidate.program,
            crash_site=None, defect=defect, status=status,
            category=defect.category if defect is not None else None,
            is_false_negative=False,
            affected_opt_levels=[candidate.first.config.opt_level,
                                 candidate.second.config.opt_level],
            affected_versions=self._wrong_report_versions(defect, config),
            metadata={"difference": candidate.difference})

    def deduplicate(self, reports: List[BugReport]) -> List[BugReport]:
        """Keep one report per distinct bug id (defect)."""
        unique: Dict[str, BugReport] = {}
        for report in reports:
            existing = unique.get(report.bug_id)
            if existing is None:
                unique[report.bug_id] = report
                continue
            # Merge affected levels/versions observed through other programs.
            existing.affected_opt_levels = sorted(
                set(existing.affected_opt_levels) | set(report.affected_opt_levels),
                key=ALL_OPT_LEVELS.index)
            existing.affected_versions = sorted(
                set(existing.affected_versions) | set(report.affected_versions))
            self._merge_metadata(existing, report)
        return list(unique.values())

    @staticmethod
    def _merge_metadata(existing: BugReport, report: BugReport) -> None:
        """Fold a duplicate's metadata into the kept report: count the
        merge and keep the best (smallest) reduced reproducer, so reduction
        work done on any duplicate survives deduplication."""
        existing.metadata["merged_duplicates"] = (
            existing.metadata.get("merged_duplicates", 0) + 1)
        theirs = report.metadata.get("reduction")
        if theirs is not None:
            ours = existing.metadata.get("reduction")
            if ours is None or (theirs.get("reduced_tokens", float("inf"))
                                < ours.get("reduced_tokens", float("inf"))):
                existing.metadata["reduction"] = dict(theirs)

    # -- internals ---------------------------------------------------------------

    def _reduce_candidate(self, candidate: FNBugCandidate):
        """Shrink the candidate's program before bisection (lazy import:
        :mod:`repro.reduction` sits above :mod:`repro.core`)."""
        from repro.core.differential import DifferentialTester
        from repro.reduction import reduce_fn_candidate

        if self._reduction_tester is None:
            cache = (self.compilation_cache
                     if self.compilation_cache is not None else True)
            self._reduction_tester = DifferentialTester(max_steps=self.max_steps,
                                                        cache=cache,
                                                        vm=self.vm)
        return reduce_fn_candidate(candidate, tester=self._reduction_tester,
                                   jobs=self.reduce_jobs)

    def _run(self, program: UBProgram, compiler_name: str, version: int,
             sanitizer: str, opt_level: str, registry: Sequence[Defect]):
        compiler = make_compiler(compiler_name, version=version,
                                 defect_registry=registry,
                                 cache=self.compilation_cache)
        try:
            binary = compiler.compile(program.source,
                                      CompileOptions(opt_level=opt_level,
                                                     sanitizer=sanitizer))
        except CompilationError:
            return None
        return binary.run(max_steps=self.max_steps, vm=self.vm)

    def _bisect_defect(self, candidate: FNBugCandidate) -> Optional[Defect]:
        """Disable one defect at a time until the sanitizer detects the UB.

        Each defect is probed at the newest release it is *active* on —
        probing only at trunk could never attribute a defect whose window
        closed at or before trunk (its removal changes nothing there), so
        fixed bugs came back ``unexplained-…`` instead of
        ``STATUS_FIXED``.  Sweeping the timeline needs a guard the
        trunk-only probe got implicitly from the campaign's observation:
        the UB must actually be *missed* with the full registry at the
        probed release, otherwise any defect probed at a release where
        nothing hides the UB would take credit."""
        config = candidate.missing.config
        program = candidate.program
        trunk = trunk_version(config.compiler)
        missed_at: Dict[int, bool] = {}

        def missed(version: int) -> bool:
            if version not in missed_at:
                result = self._run(program, config.compiler, version,
                                   config.sanitizer, config.opt_level,
                                   self.registry)
                missed_at[version] = not self._detected(result,
                                                        program.ub_type)
            return missed_at[version]

        for defect in self.registry:
            if defect.compiler != config.compiler or defect.sanitizer != config.sanitizer:
                continue
            version = self._newest_active_version(defect, trunk)
            if version is None or not missed(version):
                continue
            reduced = [d for d in self.registry if d is not defect]
            result = self._run(program, config.compiler, version,
                               config.sanitizer, config.opt_level, reduced)
            if self._detected(result, program.ub_type):
                return defect
        return None

    @staticmethod
    def _detected(result, ub_type: UBType) -> bool:
        return (result is not None and result.crashed
                and result.report is not None
                and detects(ub_type, result.report.kind))

    @staticmethod
    def _newest_active_version(defect: Defect, trunk: int) -> Optional[int]:
        """The newest release a defect is live on: trunk for open defects,
        the release before the fix otherwise (None when the window is
        empty — the defect never shipped)."""
        version = trunk
        if defect.fixed_version is not None:
            version = min(version, defect.fixed_version - 1)
        if version < defect.introduced_version:
            return None
        return version

    def _wrong_report_versions(self, defect: Optional[Defect],
                               config) -> List[int]:
        """The releases a wrong-report bug actually affects.

        Bisected over the responsible defect's activity window (lazy
        import: :mod:`repro.triage` sits above :mod:`repro.core`) instead
        of hardcoding ``[trunk]`` — line-skew defects introduced releases
        ago mis-report on every release of their window, and Figure 10
        needs the real range."""
        trunk = trunk_version(config.compiler)
        if defect is None:
            return [trunk]
        anchor = self._newest_active_version(defect, trunk)
        if anchor is None:
            return [trunk]
        opt_level = config.opt_level
        if defect.opt_levels and opt_level not in defect.opt_levels:
            opt_level = defect.opt_levels[0]
        from repro.triage import RevisionBisector

        bisector = RevisionBisector(config.compiler)
        result = bisector.bisect(
            lambda version: defect.active_for(config.compiler, version,
                                              config.sanitizer, opt_level),
            anchor)
        return result.affected_versions

    def _find_wrong_report_defect(self, candidate: WrongReportCandidate) -> Optional[Defect]:
        config = candidate.second.config
        for defect in self.registry:
            if defect.compiler == config.compiler \
                    and defect.sanitizer == config.sanitizer and defect.line_skew:
                return defect
        return None

    def _affected_opt_levels(self, report: BugReport) -> List[str]:
        """Optimization levels at which the bug hides the UB (Figure 11)."""
        affected: List[str] = []
        version = trunk_version(report.compiler)
        for opt_level in ALL_OPT_LEVELS:
            result = self._run(report.program, report.compiler, version,
                               report.sanitizer, opt_level, self.registry)
            if result is not None and result.exited_normally:
                affected.append(opt_level)
        return affected

    def _affected_versions(self, report: BugReport) -> List[int]:
        """Stable compiler versions affected by the bug (Figure 10)."""
        if report.defect is not None:
            versions = []
            for version in stable_versions(report.compiler):
                if report.defect.active_for(report.compiler, version,
                                            report.sanitizer,
                                            report.affected_opt_levels[0]
                                            if report.affected_opt_levels else "-O2"):
                    versions.append(version)
            return versions
        # Unexplained reports: measure empirically on a single opt level.
        opt_level = report.affected_opt_levels[0] if report.affected_opt_levels else "-O2"
        affected = []
        for version in stable_versions(report.compiler):
            result = self._run(report.program, report.compiler, version,
                               report.sanitizer, opt_level, self.registry)
            if result is not None and result.exited_normally:
                affected.append(version)
        return affected
