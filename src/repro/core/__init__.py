"""UBfuzz core: UB generation (Algorithm 1), crash-site mapping (Algorithm 2),
differential testing, the fuzzing campaign, triage and reduction."""

from repro.core.bugs import (
    STATUS_CONFIRMED,
    STATUS_FIXED,
    STATUS_INVALID,
    STATUS_REPORTED,
    BugReport,
    BugTriager,
)
from repro.core.crash_site import (
    OracleVerdict,
    classify_discrepancy,
    is_sanitizer_bug,
    is_sanitizer_bug_from_results,
)
from repro.core.differential import (
    ConfigOutcome,
    DifferentialResult,
    DifferentialTester,
    FNBugCandidate,
    TestConfig,
    WrongReportCandidate,
    default_configs,
)
from repro.core.fuzzer import (CampaignConfig, CampaignResult, CampaignStats,
                               FuzzingCampaign, SeedBatch)
from repro.core.insertion import UBProgram, apply_mutation
from repro.core.matching import MatchedExpr, get_matched_exprs
from repro.core.profile import ExecutionProfile, Profiler
from repro.core.reducer import (HierarchicalReducer, ProgramReducer,
                                ReductionResult, make_fn_bug_predicate)
from repro.core.synthesis import ShadowMutation, synthesize
from repro.core.ub_types import (
    ALL_UB_TYPES,
    EXPECTED_REPORT_KINDS,
    SANITIZERS_FOR_UB,
    UBType,
    detects,
    sanitizers_for,
    ub_type_of_report,
    ub_types_for_sanitizer,
)
from repro.core.ubgen import GenerationStats, UBGenerator

__all__ = [
    "STATUS_CONFIRMED", "STATUS_FIXED", "STATUS_INVALID", "STATUS_REPORTED",
    "BugReport", "BugTriager",
    "OracleVerdict", "classify_discrepancy", "is_sanitizer_bug",
    "is_sanitizer_bug_from_results",
    "ConfigOutcome", "DifferentialResult", "DifferentialTester",
    "FNBugCandidate", "TestConfig", "WrongReportCandidate", "default_configs",
    "CampaignConfig", "CampaignResult", "CampaignStats", "FuzzingCampaign",
    "SeedBatch",
    "UBProgram", "apply_mutation",
    "MatchedExpr", "get_matched_exprs",
    "ExecutionProfile", "Profiler",
    "HierarchicalReducer", "ProgramReducer", "ReductionResult",
    "make_fn_bug_predicate",
    "ShadowMutation", "synthesize",
    "ALL_UB_TYPES", "EXPECTED_REPORT_KINDS", "SANITIZERS_FOR_UB", "UBType",
    "detects", "sanitizers_for", "ub_type_of_report", "ub_types_for_sanitizer",
    "GenerationStats", "UBGenerator",
]
