"""The undefined behaviours UBfuzz generates (paper Tables 1 and 2).

Each :class:`UBType` corresponds to one row of Table 1 and knows

* which sanitizers can detect it (Table 2), and
* which sanitizer report kinds count as a successful detection.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

from repro.sanitizers import report as rk


class UBType(str, Enum):
    """The nine UB types supported by the generator (the paper's Table 1).

    Values are kebab-case strings (``UBType("use-after-free")`` round-trips
    through JSON); ``display_name`` gives the paper's spelling and
    :func:`sanitizers_for` the sanitizers able to detect each type.
    """

    BUFFER_OVERFLOW_ARRAY = "buffer-overflow-array"
    BUFFER_OVERFLOW_POINTER = "buffer-overflow-pointer"
    USE_AFTER_FREE = "use-after-free"
    USE_AFTER_SCOPE = "use-after-scope"
    NULL_POINTER_DEREF = "null-pointer-dereference"
    INTEGER_OVERFLOW = "integer-overflow"
    SHIFT_OVERFLOW = "shift-overflow"
    DIVIDE_BY_ZERO = "divide-by-zero"
    USE_OF_UNINIT_MEMORY = "use-of-uninitialized-memory"

    @property
    def display_name(self) -> str:
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES: Dict[UBType, str] = {
    UBType.BUFFER_OVERFLOW_ARRAY: "Buf. Overflow (Array)",
    UBType.BUFFER_OVERFLOW_POINTER: "Buf. Overflow (Pointer)",
    UBType.USE_AFTER_FREE: "Use After Free",
    UBType.USE_AFTER_SCOPE: "Use After Scope",
    UBType.NULL_POINTER_DEREF: "Null Ptr. Deref.",
    UBType.INTEGER_OVERFLOW: "Integer Overflow",
    UBType.SHIFT_OVERFLOW: "Shift Overflow",
    UBType.DIVIDE_BY_ZERO: "Divide by Zero",
    UBType.USE_OF_UNINIT_MEMORY: "Use of Uninit. Memory",
}

#: Table 2: the sanitizers that support detection of each UB type.
SANITIZERS_FOR_UB: Dict[UBType, Tuple[str, ...]] = {
    UBType.BUFFER_OVERFLOW_ARRAY: (rk.ASAN, rk.UBSAN),
    UBType.BUFFER_OVERFLOW_POINTER: (rk.ASAN,),
    UBType.USE_AFTER_FREE: (rk.ASAN,),
    UBType.USE_AFTER_SCOPE: (rk.ASAN,),
    UBType.NULL_POINTER_DEREF: (rk.UBSAN,),
    UBType.INTEGER_OVERFLOW: (rk.UBSAN,),
    UBType.SHIFT_OVERFLOW: (rk.UBSAN,),
    UBType.DIVIDE_BY_ZERO: (rk.UBSAN,),
    UBType.USE_OF_UNINIT_MEMORY: (rk.MSAN,),
}

#: Report kinds that count as a *detection* of each UB type.
EXPECTED_REPORT_KINDS: Dict[UBType, Tuple[str, ...]] = {
    UBType.BUFFER_OVERFLOW_ARRAY: (rk.STACK_BUFFER_OVERFLOW,
                                   rk.GLOBAL_BUFFER_OVERFLOW,
                                   rk.HEAP_BUFFER_OVERFLOW,
                                   rk.ARRAY_INDEX_OUT_OF_BOUNDS),
    UBType.BUFFER_OVERFLOW_POINTER: (rk.STACK_BUFFER_OVERFLOW,
                                     rk.GLOBAL_BUFFER_OVERFLOW,
                                     rk.HEAP_BUFFER_OVERFLOW),
    UBType.USE_AFTER_FREE: (rk.HEAP_USE_AFTER_FREE,),
    UBType.USE_AFTER_SCOPE: (rk.STACK_USE_AFTER_SCOPE,),
    UBType.NULL_POINTER_DEREF: (rk.NULL_POINTER_DEREFERENCE,),
    UBType.INTEGER_OVERFLOW: (rk.SIGNED_INTEGER_OVERFLOW,),
    UBType.SHIFT_OVERFLOW: (rk.SHIFT_OUT_OF_BOUNDS,),
    UBType.DIVIDE_BY_ZERO: (rk.DIVISION_BY_ZERO,),
    UBType.USE_OF_UNINIT_MEMORY: (rk.USE_OF_UNINITIALIZED_VALUE,),
}

ALL_UB_TYPES: Tuple[UBType, ...] = tuple(UBType)


def sanitizers_for(ub_type: UBType) -> Tuple[str, ...]:
    """Sanitizers that can detect *ub_type* (Table 2)."""
    return SANITIZERS_FOR_UB[ub_type]


def ub_types_for_sanitizer(sanitizer: str) -> List[UBType]:
    """The UB types a sanitizer is expected to detect (Table 2, transposed)."""
    return [ub for ub, sans in SANITIZERS_FOR_UB.items() if sanitizer in sans]


def detects(ub_type: UBType, report_kind: str) -> bool:
    """Does a report of *report_kind* count as detecting *ub_type*?"""
    return report_kind in EXPECTED_REPORT_KINDS[ub_type]


def ub_type_of_report(report_kind: str) -> UBType | None:
    """Best-effort inverse mapping from a report kind to a UB type.

    Used when classifying programs produced by baseline generators (MUSIC,
    Csmith-NoSafe), whose UB type is not known by construction — the paper
    does the same by reading the sanitizer report (§4.3, footnote 4).
    """
    priority = [
        (rk.HEAP_USE_AFTER_FREE, UBType.USE_AFTER_FREE),
        (rk.STACK_USE_AFTER_SCOPE, UBType.USE_AFTER_SCOPE),
        (rk.NULL_POINTER_DEREFERENCE, UBType.NULL_POINTER_DEREF),
        (rk.SIGNED_INTEGER_OVERFLOW, UBType.INTEGER_OVERFLOW),
        (rk.SHIFT_OUT_OF_BOUNDS, UBType.SHIFT_OVERFLOW),
        (rk.DIVISION_BY_ZERO, UBType.DIVIDE_BY_ZERO),
        (rk.USE_OF_UNINITIALIZED_VALUE, UBType.USE_OF_UNINIT_MEMORY),
        (rk.ARRAY_INDEX_OUT_OF_BOUNDS, UBType.BUFFER_OVERFLOW_ARRAY),
        (rk.STACK_BUFFER_OVERFLOW, UBType.BUFFER_OVERFLOW_POINTER),
        (rk.GLOBAL_BUFFER_OVERFLOW, UBType.BUFFER_OVERFLOW_POINTER),
        (rk.HEAP_BUFFER_OVERFLOW, UBType.BUFFER_OVERFLOW_POINTER),
    ]
    for kind, ub in priority:
        if report_kind == kind:
            return ub
    return None
