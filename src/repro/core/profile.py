"""Execution profiling — ``Profile`` of Algorithm 1 (paper §3.2.2).

The profiler instruments a *clone* of the seed program with
:class:`~repro.cdsl.ast_nodes.ProfileHook` wrappers around every operand of
every matched expression, runs it once on the VM, and packages the
observations as an :class:`ExecutionProfile` exposing the paper's queries:

* ``Q_liv`` — was the matched expression executed (is it in the live region)?
* ``Q_val`` — the observed value of an operand;
* ``Q_mem`` — the memory object (buffer range, kind, freed/dead state) an
  observed pointer points into;
* ``Q_scp`` — scope information, via the statement-level execution order.

One profiling run serves every UB type (the paper's implementation note:
"the profiling overhead for all UB types is identical").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl.sema import analyze
from repro.cdsl.visitor import clone, replace_node, walk
from repro.core.matching import MatchedExpr
from repro.utils.errors import ProfilingError
from repro.vm.errors import ExecutionResult
from repro.vm.interpreter import Interpreter
from repro.vm.profiler import ObservedBuffer, ProfileCollector, ValueObservation


@dataclass
class ExecutionProfile:
    """The dynamic profile of one seed program run (Definition 1)."""

    collector: ProfileCollector
    result: ExecutionResult
    hooked_keys: Dict[str, List[str]] = field(default_factory=dict)

    # -- the paper's queries -----------------------------------------------------

    def q_liv(self, match: MatchedExpr) -> bool:
        """True if the matched expression was executed on the profiled input."""
        for key in self.hooked_keys.get(match.key, []):
            if self.collector.was_executed(key):
                return True
        if match.stmt is not None and match.stmt.loc.is_known:
            return match.stmt.loc.site() in self.result.executed_sites
        return False

    def q_val(self, match: MatchedExpr, role: str) -> Optional[int]:
        """The first observed value of one operand of the match."""
        obs = self._first(match, role)
        return obs.value if obs is not None else None

    def q_mem(self, match: MatchedExpr, role: str) -> Optional[ObservedBuffer]:
        """The memory object the observed operand points into (or None)."""
        obs = self._first(match, role)
        return obs.buffer if obs is not None else None

    def q_scp_executed(self, stmt: ast.Stmt) -> bool:
        """Was *stmt* executed during the profiled run?"""
        return stmt.loc.is_known and stmt.loc.site() in self.result.executed_sites

    def q_scp_order(self, stmt: ast.Stmt) -> Optional[int]:
        """Index of the first execution of *stmt* in the run, or None."""
        if not stmt.loc.is_known:
            return None
        site = stmt.loc.site()
        for i, executed in enumerate(self.result.site_trace):
            if executed == site:
                return i
        return None

    # -- helpers --------------------------------------------------------------------

    def _first(self, match: MatchedExpr, role: str) -> Optional[ValueObservation]:
        return self.collector.first_observation(f"{match.key}:{role}")

    def observations(self, match: MatchedExpr, role: str) -> List[ValueObservation]:
        return self.collector.observations(f"{match.key}:{role}")


class Profiler:
    """Instruments and runs a seed program to collect its execution profile."""

    def __init__(self, max_steps: int = 200_000) -> None:
        self.max_steps = max_steps

    def profile(self, unit: ast.TranslationUnit,
                matches: Iterable[MatchedExpr]) -> ExecutionProfile:
        """Profile *unit* with hooks for every operand of every match.

        The unit is cloned before instrumentation, so the caller's AST is
        untouched; node ids are preserved by the clone, which is how hooks
        attached in the clone map back to the caller's matches.
        """
        matches = list(matches)
        instrumented = clone(unit)
        hooked_keys: Dict[str, List[str]] = {}
        by_id = {node.node_id: node for node in walk(instrumented)}

        for match in matches:
            keys: List[str] = []
            for role, operand in match.operands.items():
                if not isinstance(operand, ast.Expr):
                    continue
                target = by_id.get(operand.node_id)
                if target is None:
                    continue
                key = f"{match.key}:{role}"
                hook = ast.ProfileHook(key, target, loc=target.loc)
                if replace_node(instrumented, target, hook):
                    by_id[operand.node_id] = hook
                    keys.append(key)
            hooked_keys[match.key] = keys

        try:
            sema = analyze(instrumented)
        except Exception as exc:
            raise ProfilingError(f"profiling instrumentation broke the "
                                 f"program: {exc}") from exc
        collector = ProfileCollector()
        interpreter = Interpreter(instrumented, sema, max_steps=self.max_steps,
                                  profile_collector=collector)
        result = interpreter.run()
        if result.status == "vm_error":
            raise ProfilingError(f"profiling run failed: {result.error}")
        return ExecutionProfile(collector=collector, result=result,
                                hooked_keys=hooked_keys)
