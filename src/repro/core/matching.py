"""Expression matching — ``GetMatchedExpr`` of Algorithm 1 (paper §3.2.1).

Given a seed program and a target UB type, statically scan the program for
every expression whose *code construct* matches the second column of
Table 1: array subscripts for array buffer overflow, pointer dereferences
for the pointer/memory UB types, arithmetic operators for the arithmetic UB
types, and branch conditions for use-of-uninitialized-memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.visitor import enclosing_statement, walk
from repro.core.ub_types import UBType


@dataclass
class MatchedExpr:
    """One matched code construct and where it lives in the program."""

    ub_type: UBType
    expr: ast.Expr
    function: ast.FunctionDecl
    stmt: Optional[ast.Stmt]
    #: role-specific sub-expressions used by profiling/synthesis, keyed by
    #: role name ("index", "pointer", "lhs", "rhs", ...).
    operands: dict

    @property
    def key(self) -> str:
        """Stable profiling key for this match (based on node identity)."""
        return f"m{self.expr.node_id}"


def get_matched_exprs(unit: ast.TranslationUnit, ub_type: UBType) -> List[MatchedExpr]:
    """Find all expressions matching *ub_type*'s code construct (Table 1)."""
    matches: List[MatchedExpr] = []
    for fn in unit.functions:
        if fn.body is None:
            continue
        for node in walk(fn.body):
            operands = _match_node(node, ub_type)
            if operands is None:
                continue
            stmt = enclosing_statement(fn.body, node)
            matches.append(MatchedExpr(ub_type=ub_type, expr=node, function=fn,
                                       stmt=stmt, operands=operands))
        if ub_type == UBType.USE_OF_UNINIT_MEMORY:
            matches.extend(_match_conditions(fn))
    return matches


# ---------------------------------------------------------------------------
# per-UB-type matchers
# ---------------------------------------------------------------------------

def _match_node(node: ast.Node, ub_type: UBType) -> Optional[dict]:
    if not isinstance(node, ast.Expr):
        return None
    if ub_type == UBType.BUFFER_OVERFLOW_ARRAY:
        return _match_array_subscript(node)
    if ub_type == UBType.BUFFER_OVERFLOW_POINTER:
        return _match_pointer_deref(node, require_identifier=False)
    if ub_type == UBType.USE_AFTER_FREE:
        return _match_pointer_deref(node, require_identifier=True)
    if ub_type == UBType.USE_AFTER_SCOPE:
        return _match_pointer_deref(node, require_identifier=True)
    if ub_type == UBType.NULL_POINTER_DEREF:
        return _match_pointer_deref(node, require_identifier=True)
    if ub_type == UBType.INTEGER_OVERFLOW:
        return _match_arith(node)
    if ub_type == UBType.SHIFT_OVERFLOW:
        return _match_shift(node)
    if ub_type == UBType.DIVIDE_BY_ZERO:
        return _match_division(node)
    # USE_OF_UNINIT_MEMORY is matched at statement level (_match_conditions).
    return None


def _match_array_subscript(node: ast.Expr) -> Optional[dict]:
    """``a[x]`` where ``a`` is a declared array (known compile-time size)."""
    if not isinstance(node, ast.ArraySubscript):
        return None
    base = node.base
    if not isinstance(base, ast.Identifier) or base.symbol is None:
        return None
    ctype = base.symbol.ctype
    if not isinstance(ctype, ct.ArrayType):
        return None
    return {"base": base, "index": node.index, "length": ctype.length,
            "element_size": ctype.element.sizeof()}


def _match_pointer_deref(node: ast.Expr, require_identifier: bool) -> Optional[dict]:
    """``*p`` (and ``p[i]`` where ``p`` is a pointer variable)."""
    if isinstance(node, ast.Deref):
        pointer = node.pointer
        if require_identifier and not (isinstance(pointer, ast.Identifier)
                                       and pointer.symbol is not None
                                       and isinstance(ct.decay(pointer.symbol.ctype),
                                                      ct.PointerType)):
            return None
        elem_size = node.ctype.sizeof() if node.ctype is not None else 4
        return {"pointer": pointer, "element_size": elem_size}
    if isinstance(node, ast.ArraySubscript):
        base = node.base
        if not (isinstance(base, ast.Identifier) and base.symbol is not None
                and isinstance(base.symbol.ctype, ct.PointerType)):
            return None
        elem_size = node.ctype.sizeof() if node.ctype is not None else 4
        return {"pointer": base, "index": node.index, "element_size": elem_size}
    return None


def _match_arith(node: ast.Expr) -> Optional[dict]:
    """``x op y`` with a signed integer result (op in +, -, *)."""
    if not isinstance(node, ast.BinaryOp) or node.op not in ("+", "-", "*"):
        return None
    ctype = node.ctype
    if not (isinstance(ctype, ct.IntType) and ctype.signed and ctype.bits >= 32):
        return None
    return {"lhs": node.lhs, "rhs": node.rhs, "op": node.op, "bits": ctype.bits}


def _match_shift(node: ast.Expr) -> Optional[dict]:
    if not isinstance(node, ast.BinaryOp) or node.op not in ("<<", ">>"):
        return None
    lhs_type = ct.integer_promote(node.lhs.ctype or ct.INT)
    bits = lhs_type.bits if isinstance(lhs_type, ct.IntType) else 32
    return {"lhs": node.lhs, "rhs": node.rhs, "op": node.op, "bits": bits}


def _match_division(node: ast.Expr) -> Optional[dict]:
    if not isinstance(node, ast.BinaryOp) or node.op not in ("/", "%"):
        return None
    return {"lhs": node.lhs, "rhs": node.rhs, "op": node.op}


def _match_conditions(fn: ast.FunctionDecl) -> List[MatchedExpr]:
    """``if (x)`` / ``while (x)`` conditions of integer type (Table 1 row 9)."""
    matches: List[MatchedExpr] = []
    for node in walk(fn.body):
        cond = None
        if isinstance(node, (ast.IfStmt, ast.WhileStmt)):
            cond = node.cond
        elif isinstance(node, ast.ForStmt):
            cond = node.cond
        if cond is None:
            continue
        if cond.ctype is not None and not isinstance(cond.ctype, ct.IntType):
            continue
        matches.append(MatchedExpr(
            ub_type=UBType.USE_OF_UNINIT_MEMORY, expr=cond, function=fn,
            stmt=node, operands={"condition": cond}))
    return matches
