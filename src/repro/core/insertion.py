"""Shadow statement insertion — ``Insert`` of Algorithm 1 (§3.2.3).

Takes a seed program and one :class:`~repro.core.synthesis.ShadowMutation`
and produces a new, self-contained UB program:

1. clone the seed AST (node ids are preserved by the clone),
2. locate the matched expression and its enclosing statement in the clone,
3. apply the expression rewrite (``a[x]`` → ``a[x + hat]`` ...),
4. insert the shadow statements immediately before the enclosing statement
   (or append them to a named block for use-after-scope), and
5. print the mutated AST back to C source, which the compilers under test
   re-parse — exactly like the real tool writes out a mutated ``.c`` file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl.parser import parse_program
from repro.cdsl.printer import print_program
from repro.cdsl.sema import analyze
from repro.cdsl.visitor import clone, insert_before, replace_node, walk
from repro.core.synthesis import ShadowMutation
from repro.core.ub_types import UBType, sanitizers_for
from repro.utils.errors import GenerationError


@dataclass
class UBProgram:
    """A generated program containing (by construction) exactly one UB."""

    source: str
    ub_type: UBType
    seed_index: int = -1
    description: str = ""
    generator: str = "ubfuzz"
    metadata: dict = field(default_factory=dict)

    @property
    def target_sanitizers(self) -> tuple:
        """The sanitizers that should detect this program's UB (Table 2)."""
        return sanitizers_for(self.ub_type)

    def parse(self) -> ast.TranslationUnit:
        return parse_program(self.source)


def apply_mutation(unit: ast.TranslationUnit, mutation: ShadowMutation,
                   seed_index: int = -1, validate: bool = True) -> UBProgram:
    """Apply *mutation* to a clone of *unit* and return the UB program."""
    mutated = clone(unit)
    by_id: Dict[int, ast.Node] = {node.node_id: node for node in walk(mutated)}

    expr = by_id.get(mutation.match.expr.node_id)
    if expr is None:
        raise GenerationError("matched expression not found in the clone")

    _apply_augmentations(mutated, expr, mutation)

    if mutation.new_stmts:
        anchor = by_id.get(mutation.match.stmt.node_id) \
            if mutation.match.stmt is not None else None
        if anchor is None or not insert_before(mutated, anchor, mutation.new_stmts):
            raise GenerationError("could not insert shadow statements")

    if mutation.append_to_block is not None:
        block_id, stmts = mutation.append_to_block
        block = by_id.get(block_id)
        if not isinstance(block, ast.CompoundStmt):
            raise GenerationError("target block for insertion not found")
        block.stmts.extend(stmts)

    source = print_program(mutated)
    if validate:
        _check_still_valid(source)
    return UBProgram(source=source, ub_type=mutation.ub_type,
                     seed_index=seed_index, description=mutation.description,
                     metadata={"match_node": mutation.match.expr.node_id})


def _apply_augmentations(root: ast.Node, expr: ast.Expr,
                         mutation: ShadowMutation) -> None:
    for field_name, aux_name in mutation.augment:
        aux_ref = ast.Identifier(aux_name)
        if field_name == "__self__":
            replacement = ast.BinaryOp("+", expr, aux_ref, loc=expr.loc)
            if not replace_node(root, expr, replacement):
                raise GenerationError("could not rewrite the matched expression")
            expr = replacement
            continue
        current = getattr(expr, field_name, None)
        if not isinstance(current, ast.Expr):
            raise GenerationError(f"matched expression has no operand "
                                  f"{field_name!r} to augment")
        setattr(expr, field_name,
                ast.BinaryOp("+", current, aux_ref, loc=current.loc))


def _check_still_valid(source: str) -> None:
    """The mutated program must still be statically valid C (it only has
    *runtime* undefined behaviour)."""
    try:
        unit = parse_program(source)
        analyze(unit)
    except Exception as exc:
        raise GenerationError(f"mutation produced an invalid program: {exc}") from exc
