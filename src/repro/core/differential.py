"""Differential testing of sanitizers across compilers and optimization levels.

For one UB program, compile it with every (compiler, optimization level)
configuration whose sanitizer can detect the UB type (Table 2), run all
binaries, and look for discrepancies:

* some configuration reports the UB while another exits normally → apply the
  crash-site mapping oracle to decide whether the silent configuration has a
  sanitizer false-negative bug;
* two configurations both report the UB but disagree on the report (kind or
  source line) → a *wrong report* candidate (the paper found 2 such bugs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.compilers.cache import CompilationCache
from repro.compilers.compiler import SimulatedCompiler, make_compiler
from repro.compilers.options import ALL_OPT_LEVELS, CompileOptions
from repro.core.crash_site import OracleVerdict, is_sanitizer_bug_from_results
from repro.core.insertion import UBProgram
from repro.core.ub_types import detects, sanitizers_for
from repro.sanitizers.registry import sanitizers_supported_by
from repro.telemetry import runtime as telemetry
from repro.utils.errors import CompilationError
from repro.vm.batch import run_binaries
from repro.vm.errors import ExecutionResult


@dataclass(frozen=True)
class TestConfig:
    """One tested configuration: compiler name, sanitizer, opt level."""

    compiler: str
    sanitizer: str
    opt_level: str

    @property
    def label(self) -> str:
        return f"{self.compiler} {self.opt_level} -fsanitize={self.sanitizer}"


@dataclass
class ConfigOutcome:
    """Result of compiling + running one UB program under one configuration."""

    config: TestConfig
    result: Optional[ExecutionResult]
    error: Optional[str] = None

    @property
    def detected(self) -> bool:
        return (self.result is not None and self.result.crashed
                and self.result.report is not None)


@dataclass
class FNBugCandidate:
    """A discrepancy the oracle attributes to a sanitizer FN bug."""

    program: UBProgram
    detecting: ConfigOutcome
    missing: ConfigOutcome
    verdict: OracleVerdict

    @property
    def crash_site(self) -> Optional[tuple[int, int]]:
        return self.verdict.crash_site


@dataclass
class WrongReportCandidate:
    """Two configurations detect the UB but disagree about the report."""

    program: UBProgram
    first: ConfigOutcome
    second: ConfigOutcome
    difference: str


@dataclass
class DifferentialResult:
    """Everything observed while differentially testing one UB program."""

    program: UBProgram
    outcomes: List[ConfigOutcome]
    fn_candidates: List[FNBugCandidate] = field(default_factory=list)
    wrong_report_candidates: List[WrongReportCandidate] = field(default_factory=list)
    optimization_discrepancies: int = 0

    @property
    def has_discrepancy(self) -> bool:
        return bool(self.fn_candidates or self.wrong_report_candidates
                    or self.optimization_discrepancies)

    @property
    def any_detection(self) -> bool:
        return any(o.detected for o in self.outcomes)


def default_configs(ub_type, compilers: Sequence[str] = ("gcc", "llvm"),
                    opt_levels: Sequence[str] = ALL_OPT_LEVELS) -> List[TestConfig]:
    """The configurations relevant for one UB type (Table 2 × §4.1 setup)."""
    configs: List[TestConfig] = []
    for sanitizer in sanitizers_for(ub_type):
        for compiler in compilers:
            if sanitizer not in sanitizers_supported_by(compiler):
                continue
            for opt_level in opt_levels:
                configs.append(TestConfig(compiler, sanitizer, opt_level))
    return configs


class DifferentialTester:
    """Compiles and runs UB programs across configurations and applies the
    crash-site mapping oracle to every discrepancy.

    A single :class:`CompilationCache` is shared by all the tester's
    compilers (``cache=True``, the default), so one program's N-config
    matrix performs one parse and one optimizer run per opt level instead of
    N full compiles.  ``cache=False`` selects the uncached behaviour.  With
    caller-provided *compilers*, the default never touches them (each keeps
    whatever cache it was built with); passing an explicit
    :class:`CompilationCache` instance attaches it to any provided compiler
    that has none.
    """

    def __init__(self, compilers: Optional[Dict[str, SimulatedCompiler]] = None,
                 opt_levels: Sequence[str] = ALL_OPT_LEVELS,
                 max_steps: int = 200_000,
                 cache: Union[CompilationCache, bool] = True,
                 vm: str = "compiled") -> None:
        explicit_cache = isinstance(cache, CompilationCache)
        if compilers is None:
            if cache is True:
                cache = CompilationCache()
            elif cache is False:
                cache = None
            self.cache = cache
            compilers = {"gcc": make_compiler("gcc", cache=cache),
                         "llvm": make_compiler("llvm", cache=cache)}
        elif explicit_cache:
            self.cache = cache
            for compiler in compilers.values():
                if compiler.cache is None:
                    compiler.cache = cache
        else:
            # Caller-provided compilers keep whatever cache they were built
            # with; without an explicit instance there is nothing to attach.
            self.cache = None
        self.compilers = compilers
        self.opt_levels = tuple(opt_levels)
        self.max_steps = max_steps
        #: Executor selection (``"compiled"`` or ``"interp"``), forwarded to
        #: every ``CompiledBinary.run``.  Batch deduplication of identical
        #: executions is only enabled on the compiled path so that
        #: ``vm="interp"`` stays an honest per-config baseline.
        self.vm = vm

    # -- running --------------------------------------------------------------------

    def compile_config(self, program: UBProgram,
                       config: TestConfig) -> tuple:
        """Compile one configuration; returns (binary, outcome-on-error)."""
        compiler = self.compilers[config.compiler]
        try:
            binary = compiler.compile(program.source,
                                      CompileOptions(opt_level=config.opt_level,
                                                     sanitizer=config.sanitizer))
        except CompilationError as exc:
            telemetry.inc("compile.errors")
            return None, ConfigOutcome(config, None, error=str(exc))
        return binary, None

    def run_config(self, program: UBProgram, config: TestConfig) -> ConfigOutcome:
        outcomes = self.run_configs(program, [config])
        return outcomes[0]

    def run_configs(self, program: UBProgram,
                    configs: Sequence[TestConfig]) -> List[ConfigOutcome]:
        """Compile and execute one program's whole configuration batch.

        Execution goes through :func:`repro.vm.batch.run_binaries`, which
        compiles closures once per effective pipeline and (on the compiled
        path) runs each distinct execution signature once — configurations
        whose instrumented units converged share a result.
        """
        binaries: List[Optional[object]] = []
        outcomes: List[Optional[ConfigOutcome]] = []
        for config in configs:
            binary, error_outcome = self.compile_config(program, config)
            binaries.append(binary)
            outcomes.append(error_outcome)
        results = run_binaries(binaries, max_steps=self.max_steps, vm=self.vm,
                               dedupe=(self.vm == "compiled"))
        registry = telemetry.metrics()
        for i, (config, result) in enumerate(zip(configs, results)):
            if outcomes[i] is not None:
                continue
            if registry is not None:
                if result.crashed and result.report is not None:
                    registry.inc("verdict.report")
                elif result.exited_normally:
                    registry.inc("verdict.silent")
                else:
                    registry.inc("verdict.abnormal")
            outcomes[i] = ConfigOutcome(config, result)
        return outcomes

    def test(self, program: UBProgram,
             configs: Optional[Sequence[TestConfig]] = None) -> DifferentialResult:
        """Differentially test one UB program across all configurations."""
        if configs is None:
            configs = default_configs(program.ub_type,
                                      compilers=tuple(self.compilers),
                                      opt_levels=self.opt_levels)
        outcomes = self.run_configs(program, configs)
        return self.analyze(program, outcomes)

    # -- analysis -------------------------------------------------------------------

    def analyze(self, program: UBProgram,
                outcomes: List[ConfigOutcome]) -> DifferentialResult:
        result = DifferentialResult(program=program, outcomes=outcomes)
        detectors = [o for o in outcomes if self._valid_detection(program, o)]
        silent = [o for o in outcomes
                  if o.result is not None and o.result.exited_normally]

        for missing in silent:
            verdict = None
            for detecting in detectors:
                verdict = is_sanitizer_bug_from_results(detecting.result,
                                                        missing.result)
                if verdict.is_bug:
                    result.fn_candidates.append(FNBugCandidate(
                        program=program, detecting=detecting, missing=missing,
                        verdict=verdict))
                    break
            if detectors and (verdict is None or not verdict.is_bug):
                result.optimization_discrepancies += 1

        result.wrong_report_candidates.extend(
            self._wrong_reports(program, detectors))
        registry = telemetry.metrics()
        if registry is not None:
            registry.inc("diff.programs")
            registry.inc("diff.fn_candidates", len(result.fn_candidates))
            registry.inc("diff.wrong_reports",
                         len(result.wrong_report_candidates))
            registry.inc("diff.opt_discrepancies",
                         result.optimization_discrepancies)
        return result

    @staticmethod
    def _valid_detection(program: UBProgram, outcome: ConfigOutcome) -> bool:
        if not outcome.detected:
            return False
        return detects(program.ub_type, outcome.result.report.kind)

    @staticmethod
    def _wrong_reports(program: UBProgram,
                       detectors: List[ConfigOutcome]) -> List[WrongReportCandidate]:
        """Report-content mismatches between two detecting configurations of
        the *same* compiler+sanitizer (different levels)."""
        candidates: List[WrongReportCandidate] = []
        seen_pairs = set()
        for i, first in enumerate(detectors):
            for second in detectors[i + 1:]:
                if (first.config.compiler != second.config.compiler
                        or first.config.sanitizer != second.config.sanitizer):
                    continue
                key = (first.config, second.config)
                if key in seen_pairs:
                    continue
                difference = _report_difference(first, second)
                if difference is not None:
                    seen_pairs.add(key)
                    candidates.append(WrongReportCandidate(
                        program=program, first=first, second=second,
                        difference=difference))
        return candidates


def _report_difference(first: ConfigOutcome, second: ConfigOutcome) -> Optional[str]:
    a, b = first.result.report, second.result.report
    if a.kind != b.kind:
        return f"report kind {a.kind} vs {b.kind}"
    if a.location.is_known and b.location.is_known and a.location.line != b.location.line:
        return f"report line {a.location.line} vs {b.location.line}"
    return None
