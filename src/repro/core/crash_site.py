"""Crash-site mapping — the test oracle of the paper (§3.3, Algorithm 2).

Given two binaries compiled from the same UB program, where running one
(``b_c``) crashes with a sanitizer report and the other (``b_n``) exits
normally, decide whether the discrepancy is a **sanitizer false-negative
bug** or merely the effect of **compiler optimization**:

* extract the crash site — the ``(line, offset)`` of the last executed
  instruction of ``b_c`` (Definition 2);
* if that site is also executed by ``b_n``, the optimizer did not remove the
  UB expression, so the sanitizer in ``b_n`` missed it → a bug;
* otherwise the UB was optimized away → not a sanitizer bug.

Two implementations are provided: :func:`is_sanitizer_bug` follows
Algorithm 2 literally (driving the LLDB-like :class:`~repro.vm.trace.Debugger`
over both binaries), while :func:`is_sanitizer_bug_from_results` reuses
already-collected execution results, which is what the fuzzing campaign uses
to avoid re-running binaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vm.errors import ExecutionResult
from repro.vm.trace import Debugger, get_executed_sites


@dataclass
class OracleVerdict:
    """The oracle's decision for one (crashing, non-crashing) binary pair."""

    is_bug: bool
    crash_site: Optional[tuple[int, int]]
    reason: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_bug


def format_crash_site(crash_site: Optional[tuple]) -> str:
    """Canonical string form of a crash site: ``"line:col"`` or ``"?"``.

    The single spelling used everywhere a site becomes part of an
    identifier — corpus dedup bucket keys, reduction records, report
    labels — so the producers and consumers can never drift apart.
    """
    return f"{crash_site[0]}:{crash_site[1]}" if crash_site else "?"


def is_sanitizer_bug(crashing_binary, normal_binary) -> bool:
    """Algorithm 2, literally: debug both binaries and map the crash site."""
    crash_sites = get_executed_sites(crashing_binary)
    if not crash_sites:
        return False
    crash_site = crash_sites[-1]

    debugger = Debugger()
    debugger.init(normal_binary)
    while debugger.is_alive():
        if (debugger.curr_line, debugger.curr_offset) == crash_site:
            return True
        debugger.next_instruction()
    return False


def is_sanitizer_bug_from_results(crashing: ExecutionResult,
                                  normal: ExecutionResult) -> OracleVerdict:
    """Crash-site mapping over already-collected execution results."""
    if not crashing.crashed:
        return OracleVerdict(False, None, "the reference binary did not crash")
    if normal.crashed:
        return OracleVerdict(False, normal.crash_site,
                             "both binaries crashed: no discrepancy")
    crash_site = crashing.crash_site
    if crash_site is None and crashing.site_trace:
        if crashing.trace_truncated:
            # The trace hit the recording cap, so its tail is some arbitrary
            # mid-execution site, not the crash site.  Mapping it could
            # mis-attribute an optimization discrepancy as a sanitizer bug,
            # so the oracle declines to flag one (conservative).
            return OracleVerdict(False, None,
                                 "site trace truncated: the recorded tail is "
                                 "not the crash site")
        crash_site = crashing.site_trace[-1]
    if crash_site is None:
        return OracleVerdict(False, None, "no crash site information (missing -g?)")
    if crash_site in normal.executed_sites:
        return OracleVerdict(True, crash_site,
                             "crash site executed by the non-crashing binary: "
                             "the sanitizer missed the UB")
    return OracleVerdict(False, crash_site,
                         "crash site not executed: the optimizer removed the UB")


def classify_discrepancy(crashing: ExecutionResult,
                         normal: ExecutionResult) -> str:
    """Convenience label: "sanitizer-bug", "optimization" or "no-discrepancy"."""
    if not crashing.crashed or normal.crashed:
        return "no-discrepancy"
    verdict = is_sanitizer_bug_from_results(crashing, normal)
    return "sanitizer-bug" if verdict.is_bug else "optimization"
