"""The UB program generator — Algorithm 1 of the paper.

Given a seed program and a target UB type:

1. ``GetMatchedExpr`` — statically find all code constructs matching the UB
   (:mod:`repro.core.matching`);
2. ``Profile`` — instrument and run the seed once, collecting the dynamic
   profile (:mod:`repro.core.profile`);
3. ``SynShadowStmt`` + ``Insert`` — for every live matched expression,
   synthesize a shadow statement and insert it, yielding one UB program per
   match (:mod:`repro.core.synthesis`, :mod:`repro.core.insertion`).

As in the paper, a single profiling run serves all UB types of one seed, and
every generated program contains exactly one UB of the requested type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.cdsl import ast_nodes as ast
from repro.cdsl.parser import parse_program
from repro.cdsl.sema import analyze
from repro.core.insertion import UBProgram, apply_mutation
from repro.core.matching import MatchedExpr, get_matched_exprs
from repro.core.profile import ExecutionProfile, Profiler
from repro.core.synthesis import synthesize
from repro.core.ub_types import ALL_UB_TYPES, UBType
from repro.seedgen.csmith import SeedProgram
from repro.utils.errors import GenerationError, ProfilingError
from repro.utils.rng import RandomSource, derive_seed

SeedLike = Union[str, SeedProgram, ast.TranslationUnit]


@dataclass
class GenerationStats:
    """Bookkeeping for one seed: matches found / mutations synthesized."""

    matches: Dict[UBType, int] = field(default_factory=dict)
    live_matches: Dict[UBType, int] = field(default_factory=dict)
    generated: Dict[UBType, int] = field(default_factory=dict)
    profile_failed: bool = False


class UBGenerator:
    """Shadow-statement-insertion UB generator (the paper's Algorithm 1).

    Args:
        seed: master RNG seed; generation is a pure function of
            ``(seed, seed program, UB types)``.
        max_programs_per_type: cap on UB programs per (seed, UB type).
        profiler: execution profiler used to pick mutation sites.

    Example::

        programs = UBGenerator(seed=1).generate(seed_program,
                                                UBType.USE_AFTER_FREE)
    """

    def __init__(self, seed: int = 0, max_programs_per_type: Optional[int] = None,
                 profiler: Optional[Profiler] = None) -> None:
        self.seed = seed
        self.max_programs_per_type = max_programs_per_type
        self.profiler = profiler or Profiler()

    # -- public API ------------------------------------------------------------------

    def generate(self, seed_program: SeedLike, ub_type: UBType,
                 seed_index: int = 0) -> List[UBProgram]:
        """Generate UB programs of one type from one seed (Algorithm 1)."""
        programs, _stats = self._generate_types(seed_program, [ub_type], seed_index)
        return programs.get(ub_type, [])

    def generate_all(self, seed_program: SeedLike,
                     ub_types: Sequence[UBType] = ALL_UB_TYPES,
                     seed_index: int = 0) -> Dict[UBType, List[UBProgram]]:
        """Generate UB programs for every requested type from one seed."""
        programs, _stats = self._generate_types(seed_program, ub_types, seed_index)
        return programs

    def generate_with_stats(self, seed_program: SeedLike,
                            ub_types: Sequence[UBType] = ALL_UB_TYPES,
                            seed_index: int = 0
                            ) -> tuple[Dict[UBType, List[UBProgram]], GenerationStats]:
        return self._generate_types(seed_program, ub_types, seed_index)

    # -- internals --------------------------------------------------------------------

    def _generate_types(self, seed_program: SeedLike, ub_types: Sequence[UBType],
                        seed_index: int
                        ) -> tuple[Dict[UBType, List[UBProgram]], GenerationStats]:
        unit, resolved_index = self._resolve_seed(seed_program, seed_index)
        stats = GenerationStats()
        rng = RandomSource(derive_seed(self.seed, resolved_index))

        matches_by_type: Dict[UBType, List[MatchedExpr]] = {}
        all_matches: List[MatchedExpr] = []
        for ub_type in ub_types:
            matches = get_matched_exprs(unit, ub_type)
            matches_by_type[ub_type] = matches
            stats.matches[ub_type] = len(matches)
            all_matches.extend(matches)

        programs: Dict[UBType, List[UBProgram]] = {ub: [] for ub in ub_types}
        if not all_matches:
            return programs, stats

        try:
            profile = self.profiler.profile(unit, all_matches)
        except ProfilingError:
            stats.profile_failed = True
            return programs, stats

        for ub_type in ub_types:
            live = 0
            for match in matches_by_type[ub_type]:
                if not profile.q_liv(match):
                    continue
                live += 1
                if (self.max_programs_per_type is not None
                        and len(programs[ub_type]) >= self.max_programs_per_type):
                    continue
                # Fork the RNG on the match's *source position* (stable
                # across re-parses of the same seed), not on node ids (a
                # process-global counter), so generation is reproducible.
                loc = match.expr.loc
                mutation = synthesize(match, profile,
                                      rng.fork(loc.line * 1009 + loc.col),
                                      function_body=match.function.body)
                if mutation is None:
                    continue
                try:
                    program = apply_mutation(unit, mutation, seed_index=resolved_index)
                except GenerationError:
                    continue
                programs[ub_type].append(program)
            stats.live_matches[ub_type] = live
            stats.generated[ub_type] = len(programs[ub_type])
        return programs, stats

    @staticmethod
    def _resolve_seed(seed_program: SeedLike, seed_index: int
                      ) -> tuple[ast.TranslationUnit, int]:
        if isinstance(seed_program, SeedProgram):
            unit = parse_program(seed_program.source)
            analyze(unit)
            return unit, seed_program.index
        if isinstance(seed_program, str):
            unit = parse_program(seed_program)
            analyze(unit)
            return unit, seed_index
        if isinstance(seed_program, ast.TranslationUnit):
            analyze(seed_program)
            return seed_program, seed_index
        raise TypeError(f"unsupported seed type {type(seed_program).__name__}")
