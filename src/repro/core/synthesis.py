"""Shadow statement synthesis — ``SynShadowStmt`` of Algorithm 1 (§3.2.3).

For each matched expression, consult the execution profile and build a
:class:`ShadowMutation`: the statements to insert before the expression's
enclosing statement (auxiliary variable definitions, ``free(p)``,
``p = (void*)0`` ...), plus a description of how the matched expression
itself is rewritten (``a[x]`` → ``a[x + hat]`` etc.), following the
instantiation column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.visitor import walk
from repro.core.matching import MatchedExpr
from repro.core.profile import ExecutionProfile
from repro.core.ub_types import UBType
from repro.sanitizers.base import ASAN_REDZONE
from repro.utils.rng import RandomSource


@dataclass
class ShadowMutation:
    """Everything the inserter needs to turn one match into a UB program.

    * ``new_stmts`` — shadow statements (self-contained ASTs referring to
      variables by name) inserted immediately before the matched
      expression's enclosing statement;
    * ``augment`` — (field, aux_name) pairs: rewrite the given child field of
      the matched expression to ``<field> + aux_name`` ("__self__" augments
      the matched expression itself, used for branch conditions);
    * ``append_to_block`` — (block_node_id, stmts) for mutations that must be
      placed inside another block (use-after-scope).
    """

    match: MatchedExpr
    ub_type: UBType
    description: str
    new_stmts: List[ast.Stmt] = field(default_factory=list)
    augment: List[Tuple[str, str]] = field(default_factory=list)
    append_to_block: Optional[Tuple[int, List[ast.Stmt]]] = None


def _aux_name(index: int = 0) -> str:
    """Name of the index-th auxiliary ("hat") variable of one mutation.

    Each generated program carries a single mutation, and a mutation uses at
    most two auxiliary variables, so fixed names keep the output fully
    deterministic (the seed programs never use this reserved prefix).
    """
    return f"__ub_hat_{index}"


def _decl(name: str, ctype: ct.CType, value: Optional[int]) -> ast.DeclStmt:
    init = None if value is None else _signed_literal(value)
    return ast.DeclStmt([ast.VarDecl(name, ctype, init)])


def _signed_literal(value: int) -> ast.Expr:
    if value < 0:
        return ast.UnaryOp("-", ast.IntLiteral(-value))
    return ast.IntLiteral(value)


def synthesize(match: MatchedExpr, profile: ExecutionProfile,
               rng: RandomSource,
               function_body: Optional[ast.CompoundStmt] = None) -> Optional[ShadowMutation]:
    """Synthesize a shadow mutation for *match*, or None if impossible.

    Returns None when the match is not in the live region, when the profile
    lacks the needed observations, or when no valid shadow statement exists
    (e.g. no out-of-scope variable of the right type for use-after-scope).
    """
    if not profile.q_liv(match):
        return None
    handler = _HANDLERS.get(match.ub_type)
    if handler is None:
        return None
    return handler(match, profile, rng, function_body)


# ---------------------------------------------------------------------------
# Per-UB-type synthesizers (Table 1, last column)
# ---------------------------------------------------------------------------

def _synth_array_overflow(match: MatchedExpr, profile: ExecutionProfile,
                          rng: RandomSource, _body) -> Optional[ShadowMutation]:
    index_value = profile.q_val(match, "index")
    if index_value is None:
        return None
    length = match.operands.get("length", 0)
    elem_size = max(1, match.operands.get("element_size", 4))
    if length <= 0:
        return None
    # ASan only detects overflows within its red zone (32 bytes), so pick a
    # target index just past the end of the array (paper §2.1).
    slack_elems = max(1, ASAN_REDZONE // elem_size)
    target = length + rng.randint(0, slack_elems - 1)
    delta = target - index_value
    aux = _aux_name()
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=f"index {index_value} -> {target} (length {length})",
        new_stmts=[_decl(aux, ct.LONG, delta)],
        augment=[("index", aux)])


def _synth_pointer_overflow(match: MatchedExpr, profile: ExecutionProfile,
                            rng: RandomSource, _body) -> Optional[ShadowMutation]:
    pointer_value = profile.q_val(match, "pointer")
    buffer = profile.q_mem(match, "pointer")
    if pointer_value is None or buffer is None or buffer.freed or buffer.dead:
        return None
    elem_size = max(1, match.operands.get("element_size", 4))
    if pointer_value < buffer.base or pointer_value >= buffer.end:
        return None
    # First element boundary at or past the end of the buffer, staying
    # within the detectable red zone.
    to_end = buffer.end - pointer_value
    base_elems = (to_end + elem_size - 1) // elem_size
    extra = rng.randint(0, max(0, ASAN_REDZONE // elem_size - 1))
    delta_elems = base_elems + extra
    if delta_elems <= 0:
        delta_elems = 1
    aux = _aux_name()
    field_name = "index" if isinstance(match.expr, ast.ArraySubscript) else "pointer"
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=f"pointer +{delta_elems} elements past {buffer.name}",
        new_stmts=[_decl(aux, ct.LONG, delta_elems)],
        augment=[(field_name, aux)])


def _synth_use_after_free(match: MatchedExpr, profile: ExecutionProfile,
                          rng: RandomSource, _body) -> Optional[ShadowMutation]:
    pointer = match.operands.get("pointer")
    if not isinstance(pointer, ast.Identifier):
        return None
    pointer_value = profile.q_val(match, "pointer")
    buffer = profile.q_mem(match, "pointer")
    if pointer_value is None or buffer is None:
        return None
    if buffer.kind != "heap" or buffer.freed:
        return None
    if pointer_value != buffer.base:
        # free() must receive the allocation's base pointer to be a
        # use-after-free (anything else would be an invalid-free instead).
        return None
    free_stmt = ast.ExprStmt(ast.Call("free", [ast.Identifier(pointer.name)]))
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=f"free({pointer.name}) before the access",
        new_stmts=[free_stmt])


def _synth_use_after_scope(match: MatchedExpr, profile: ExecutionProfile,
                           rng: RandomSource,
                           body: Optional[ast.CompoundStmt]) -> Optional[ShadowMutation]:
    pointer = match.operands.get("pointer")
    if not isinstance(pointer, ast.Identifier) or pointer.symbol is None or body is None:
        return None
    pointee = ct.decay(pointer.symbol.ctype)
    if not isinstance(pointee, ct.PointerType):
        return None
    target_type = pointee.pointee
    anchor_order = profile.q_scp_order(match.stmt) if match.stmt is not None else None
    if anchor_order is None:
        return None

    candidates = []
    for block in walk(body):
        if not isinstance(block, ast.CompoundStmt) or block is body:
            continue
        if match.stmt is not None and any(n is match.stmt for n in walk(block)):
            continue  # the block encloses the dereference: not out of scope
        for stmt in block.stmts:
            if not isinstance(stmt, ast.DeclStmt):
                continue
            for decl in stmt.decls:
                if decl.ctype != target_type:
                    continue
                order = profile.q_scp_order(stmt)
                if order is None or order >= anchor_order:
                    continue
                candidates.append((block, decl))
    if not candidates:
        return None
    block, decl = rng.choice(candidates)
    # The program keeps indexing through the redirected pointer with the
    # offsets that were valid for the *original* buffer, so the dead slot
    # must cover that whole range: declare a shadow array spanning the
    # pointed-to object inside the chosen block and retarget the pointer to
    # it (Table 1: "{ T tmp[n]; p = tmp; }").  Retargeting to an existing
    # scalar would put later accesses past the dead slot's shadow granule,
    # where ASan correctly reports a buffer overflow instead — a false
    # negative for the use-after-scope oracle.
    buffer = profile.q_mem(match, "pointer")
    elem_size = max(1, target_type.sizeof())
    span = buffer.size if buffer is not None else elem_size
    length = max(1, -(-span // elem_size))
    aux = _aux_name()
    shadow_decl = ast.DeclStmt([ast.VarDecl(aux, ct.ArrayType(target_type, length))])
    assign = ast.ExprStmt(ast.Assignment(
        "=", ast.Identifier(pointer.name),
        ast.AddressOf(ast.ArraySubscript(ast.Identifier(aux),
                                         ast.IntLiteral(0)))))
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=(f"{pointer.name} = &{aux}[0] "
                     f"({target_type} [{length}] in the scope of {decl.name})"),
        append_to_block=(block.node_id, [shadow_decl, assign]))


def _synth_null_deref(match: MatchedExpr, profile: ExecutionProfile,
                      rng: RandomSource, _body) -> Optional[ShadowMutation]:
    pointer = match.operands.get("pointer")
    if not isinstance(pointer, ast.Identifier) or pointer.symbol is None:
        return None
    if pointer.symbol.storage == "param":
        return None  # assigning a parameter is fine, but keep mutations local
    null_assign = ast.ExprStmt(ast.Assignment(
        "=", ast.Identifier(pointer.name),
        ast.Cast(ct.PointerType(ct.VOID), ast.IntLiteral(0))))
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=f"{pointer.name} = (void*)0 before the dereference",
        new_stmts=[null_assign])


def _synth_integer_overflow(match: MatchedExpr, profile: ExecutionProfile,
                            rng: RandomSource, _body) -> Optional[ShadowMutation]:
    lhs_value = profile.q_val(match, "lhs")
    rhs_value = profile.q_val(match, "rhs")
    if lhs_value is None or rhs_value is None:
        return None
    op = match.operands.get("op", "+")
    bits = match.operands.get("bits", 32)
    int_type = ct.INT if bits <= 32 else ct.LONG
    sample = _sample_overflowing_operands(op, lhs_value, rhs_value, int_type, rng)
    if sample is None:
        return None
    v0, v1 = sample
    aux_lhs, aux_rhs = _aux_name(0), _aux_name(1)
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=f"operands -> ({v0}, {v1}) so {op} overflows {int_type}",
        new_stmts=[_decl(aux_lhs, int_type, v0 - lhs_value),
                   _decl(aux_rhs, int_type, v1 - rhs_value)],
        augment=[("lhs", aux_lhs), ("rhs", aux_rhs)])


def _sample_overflowing_operands(op: str, lhs: int, rhs: int,
                                 int_type: ct.IntType,
                                 rng: RandomSource) -> Optional[tuple[int, int]]:
    """Monte-Carlo sampling of target operand values (paper §3.2.3).

    The returned (v0, v1) satisfy: both deltas ``v - observed`` fit in the
    operand type (so the auxiliary additions do not themselves overflow) and
    ``v0 op v1`` falls outside the type's range.
    """
    low, high = int_type.min_value, int_type.max_value

    def fits(delta: int) -> bool:
        return low <= delta <= high

    for _ in range(400):
        v0 = rng.randint(low, high)
        v1 = rng.randint(low, high)
        if not fits(v0 - lhs) or not fits(v1 - rhs):
            continue
        exact = {"+": v0 + v1, "-": v0 - v1, "*": v0 * v1}[op]
        if not int_type.contains(exact):
            return v0, v1
    # Deterministic fall-backs for the common cases.
    fallbacks = {
        "+": (high, high // 2),
        "-": (low, high // 2),
        "*": (high, 3),
    }
    v0, v1 = fallbacks[op]
    if fits(v0 - lhs) and fits(v1 - rhs) \
            and not int_type.contains({"+": v0 + v1, "-": v0 - v1, "*": v0 * v1}[op]):
        return v0, v1
    return None


def _synth_shift_overflow(match: MatchedExpr, profile: ExecutionProfile,
                          rng: RandomSource, _body) -> Optional[ShadowMutation]:
    rhs_value = profile.q_val(match, "rhs")
    if rhs_value is None:
        return None
    bits = match.operands.get("bits", 32)
    if rng.flip(0.8):
        target = rng.randint(bits, bits + 24)
    else:
        target = -rng.randint(1, 16)
    delta = target - rhs_value
    if not ct.INT.contains(delta):
        return None
    aux = _aux_name()
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=f"shift amount {rhs_value} -> {target} ({bits}-bit lhs)",
        new_stmts=[_decl(aux, ct.INT, delta)],
        augment=[("rhs", aux)])


def _synth_divide_by_zero(match: MatchedExpr, profile: ExecutionProfile,
                          rng: RandomSource, _body) -> Optional[ShadowMutation]:
    rhs_value = profile.q_val(match, "rhs")
    if rhs_value is None:
        return None
    delta = -rhs_value
    if not ct.LONG.contains(delta):
        return None
    aux_type = ct.INT if ct.INT.contains(delta) else ct.LONG
    aux = _aux_name()
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description=f"divisor {rhs_value} -> 0",
        new_stmts=[_decl(aux, aux_type, delta)],
        augment=[("rhs", aux)])


def _synth_uninit_use(match: MatchedExpr, profile: ExecutionProfile,
                      rng: RandomSource, _body) -> Optional[ShadowMutation]:
    aux = _aux_name()
    # "int hat;" with no initializer: adding it to the condition makes the
    # branch depend on uninitialized memory (Table 1, last row).
    return ShadowMutation(
        match=match, ub_type=match.ub_type,
        description="condition mixed with an uninitialized variable",
        new_stmts=[_decl(aux, ct.INT, None)],
        augment=[("__self__", aux)])


_HANDLERS = {
    UBType.BUFFER_OVERFLOW_ARRAY: _synth_array_overflow,
    UBType.BUFFER_OVERFLOW_POINTER: _synth_pointer_overflow,
    UBType.USE_AFTER_FREE: _synth_use_after_free,
    UBType.USE_AFTER_SCOPE: _synth_use_after_scope,
    UBType.NULL_POINTER_DEREF: _synth_null_deref,
    UBType.INTEGER_OVERFLOW: _synth_integer_overflow,
    UBType.SHIFT_OVERFLOW: _synth_shift_overflow,
    UBType.DIVIDE_BY_ZERO: _synth_divide_by_zero,
    UBType.USE_OF_UNINIT_MEMORY: _synth_uninit_use,
}
