"""The end-to-end fuzzing campaign (paper §4.1 "Testing process").

The loop is exactly the paper's:

1. use the Csmith-like generator to produce a well-formed seed program;
2. for every supported UB type, run the UB generator on the seed;
3. compile every UB program with every relevant (compiler, sanitizer,
   optimization level) configuration and run the binaries;
4. on a discrepancy, apply crash-site mapping to decide whether it is a
   sanitizer FN bug;
5. triage, deduplicate and record the resulting bug reports.

A :class:`CampaignConfig` controls the scale so the same code serves both
the quick unit tests and the benchmark harness that regenerates the paper's
tables.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.compilers.cache import CompilationCache
from repro.compilers.compiler import make_compiler
from repro.compilers.options import ALL_OPT_LEVELS
from repro.core.bugs import BugReport, BugTriager
from repro.core.differential import (
    DifferentialResult,
    DifferentialTester,
    FNBugCandidate,
    WrongReportCandidate,
    default_configs,
)
from repro.corpusdb.db import program_digest
from repro.core.insertion import UBProgram
from repro.core.ub_types import ALL_UB_TYPES, UBType
from repro.core.ubgen import UBGenerator
from repro.sanitizers.defects import Defect, default_defects
from repro.seedgen.config import GeneratorConfig
from repro.seedgen.csmith import CsmithGenerator
from repro.telemetry import runtime as telemetry
from repro.utils.errors import GenerationError

logger = logging.getLogger(__name__)


@dataclass
class CampaignConfig:
    """Scale and behaviour knobs for one fuzzing campaign.

    The campaign is a pure function of this config: ``num_seeds`` seeds are
    derived from ``rng_seed``, mutated into at most
    ``max_programs_per_type`` UB programs per type, differentially tested
    over ``compilers`` × ``opt_levels``, and (with ``triage=True``) the
    resulting candidates are triaged and deduplicated into bug reports —
    after reduction to minimal reproducers when ``reduce=True``.
    """

    num_seeds: int = 10
    rng_seed: int = 0
    ub_types: Sequence[UBType] = ALL_UB_TYPES
    opt_levels: Sequence[str] = ALL_OPT_LEVELS
    compilers: Sequence[str] = ("gcc", "llvm")
    max_programs_per_type: Optional[int] = 2
    max_programs_total: Optional[int] = None
    triage: bool = True
    #: Reduce each triaged FN candidate to a minimal reproducer before
    #: bisection/dedup (see :mod:`repro.reduction`); ``reduce_jobs`` fans
    #: candidate evaluation out over worker processes.  This triage-time
    #: knob is independent of ``OrchestratedCampaign(reduce=True)``, which
    #: instead reduces one representative per corpus crash bucket after the
    #: merge; enabling both reduces bucket representatives twice.
    reduce: bool = False
    reduce_jobs: int = 1
    defect_registry: Optional[Sequence[Defect]] = None
    max_steps: int = 150_000
    #: VM executor for every run in this campaign (``"compiled"`` closure
    #: bytecode — the default — or the ``"interp"`` AST walker).
    vm: str = "compiled"


@dataclass
class CampaignStats:
    """Aggregate counters collected during a campaign."""

    seeds_used: int = 0
    programs_generated: Dict[UBType, int] = field(default_factory=dict)
    programs_tested: int = 0
    discrepant_programs: int = 0
    optimization_discrepancies: int = 0
    fn_candidates: int = 0
    wrong_report_candidates: int = 0
    duration_seconds: float = 0.0

    def total_programs(self) -> int:
        return sum(self.programs_generated.values())


@dataclass
class CampaignResult:
    """Everything a campaign produced: stats, candidates and bug reports.

    ``bug_reports`` holds the deduplicated, triaged reports; the raw
    ``fn_candidates`` / ``wrong_report_candidates`` and per-program
    ``differential_results`` feed the analysis layer (Tables 3-6).
    """

    config: CampaignConfig
    stats: CampaignStats
    bug_reports: List[BugReport]
    fn_candidates: List[FNBugCandidate] = field(default_factory=list)
    wrong_report_candidates: List[WrongReportCandidate] = field(default_factory=list)
    differential_results: List[DifferentialResult] = field(default_factory=list)

    # -- convenience aggregations used by the analysis/benchmark layer --------------

    def bugs_by_compiler_sanitizer(self) -> Dict[tuple, List[BugReport]]:
        grouped: Dict[tuple, List[BugReport]] = {}
        for report in self.bug_reports:
            grouped.setdefault((report.compiler, report.sanitizer), []).append(report)
        return grouped

    def bugs_by_ub_type(self) -> Dict[UBType, List[BugReport]]:
        grouped: Dict[UBType, List[BugReport]] = {}
        for report in self.bug_reports:
            grouped.setdefault(report.ub_type, []).append(report)
        return grouped

    def bugs_by_category(self) -> Dict[str, List[BugReport]]:
        grouped: Dict[str, List[BugReport]] = {}
        for report in self.bug_reports:
            grouped.setdefault(report.category or "Unknown", []).append(report)
        return grouped


@dataclass
class SeedBatch:
    """Everything one seed work-item produced.

    A batch is the unit of parallel execution: generating the seed, mutating
    it into UB programs and differentially testing those programs depend only
    on ``(config, seed_index)``, so batches can be computed in any process in
    any order and merged back deterministically by seed index.
    """

    seed_index: int
    generated: bool
    programs_generated: Dict[UBType, int] = field(default_factory=dict)
    diff_results: List[DifferentialResult] = field(default_factory=list)
    duration_seconds: float = 0.0
    #: Incremental re-run accounting: how many (program, config) outcome
    #: cells this seed actually surveyed vs. skipped because the findings
    #: database already recorded them (``--resurvey``).  Both stay 0 when
    #: no skip set is installed.
    surveyed_cells: int = 0
    skipped_cells: int = 0
    #: Telemetry captured while this seed ran (see
    #: :func:`repro.telemetry.seed_scope`); ``None`` when telemetry is
    #: disabled or the batch was restored from a checkpoint record.
    telemetry: Optional[dict] = None

    @property
    def programs_tested(self) -> int:
        return len(self.diff_results)


class FuzzingCampaign:
    """Drives seeds → UB programs → differential testing → bug reports."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()
        registry = (list(self.config.defect_registry)
                    if self.config.defect_registry is not None
                    else default_defects())
        self.registry = registry
        self.seed_generator = CsmithGenerator(
            GeneratorConfig(seed=self.config.rng_seed))
        self.ub_generator = UBGenerator(
            seed=self.config.rng_seed,
            max_programs_per_type=self.config.max_programs_per_type)
        # One compilation cache per campaign (per orchestrator worker
        # process): every (compiler, sanitizer, opt level) configuration of
        # one generated program shares the parse and optimizer artifacts.
        self.compilation_cache = CompilationCache()
        compilers = {name: make_compiler(name, defect_registry=registry,
                                         cache=self.compilation_cache)
                     for name in self.config.compilers}
        self.tester = DifferentialTester(compilers=compilers,
                                         opt_levels=self.config.opt_levels,
                                         max_steps=self.config.max_steps,
                                         cache=self.compilation_cache,
                                         vm=self.config.vm)
        self.triager = BugTriager(registry=registry,
                                  max_steps=self.config.max_steps,
                                  compilation_cache=self.compilation_cache,
                                  reduce=self.config.reduce,
                                  reduce_jobs=self.config.reduce_jobs,
                                  vm=self.config.vm)
        #: Incremental re-runs: already-surveyed ``(program digest,
        #: compiler, version, pipeline, sanitizer)`` cells to skip.  Set by
        #: the orchestrator (``--resurvey``), never part of the config — the
        #: skip set changes which work *re-executes*, not what the campaign
        #: is, so checkpoint fingerprints stay comparable.
        self.survey_skip: frozenset = frozenset()

    # -- public ---------------------------------------------------------------------

    def run(self, executor=None) -> CampaignResult:
        """Run the whole campaign, optionally through a pluggable executor.

        Without an executor, seeds are processed lazily in-process (the
        original serial behaviour).  An executor — e.g.
        :class:`repro.orchestrator.SerialExecutor` or
        :class:`repro.orchestrator.PoolExecutor` — receives the config plus
        the seed indices and yields :class:`SeedBatch` objects in seed order;
        because every batch depends only on ``(config, seed_index)``, the
        merged result is identical no matter which executor ran it.
        """
        seed_indices = range(self.config.num_seeds)
        if executor is None:
            batches: Iterable[SeedBatch] = self._serial_batches(seed_indices)
        else:
            batches = executor.map_seeds(self.config, seed_indices)
        return self.collect(batches)

    def _serial_batches(self, seed_indices) -> Iterator[SeedBatch]:
        """In-process batches with the global test budget threaded through.

        Unlike pool workers, the serial path can see ``max_programs_total``,
        so — as before the refactor — it never differentially tests programs
        past the cap."""
        remaining = self.config.max_programs_total
        for index in seed_indices:
            batch = self.run_seed(index, test_budget=remaining)
            yield batch
            if remaining is not None:
                remaining -= batch.programs_tested
                if remaining <= 0:
                    return

    def run_seed(self, seed_index: int,
                 test_budget: Optional[int] = None) -> SeedBatch:
        """Process one seed work-item: generate, mutate and test.

        ``test_budget`` caps how many of the generated programs are
        differentially tested (generation counts always cover the whole
        seed); pool workers leave it unset since they cannot see the global
        budget — :meth:`collect` truncates their excess instead.
        """
        with telemetry.seed_scope(seed_index) as scope:
            with telemetry.span("seed", seed=seed_index):
                batch = self._run_seed(seed_index, test_budget)
            if scope is not None:
                # Liveness pulse: rides back in the batch payload so the
                # parent's merged metrics always carry the latest heartbeat.
                telemetry.heartbeat(seed_index)
                batch.telemetry = scope.payload()
        return batch

    def _run_seed(self, seed_index: int,
                  test_budget: Optional[int]) -> SeedBatch:
        start = time.time()
        try:
            with telemetry.stage("generate", seed=seed_index):
                seed = self.seed_generator.generate(seed_index)
        except GenerationError:
            return SeedBatch(seed_index=seed_index, generated=False,
                             duration_seconds=time.time() - start)
        with telemetry.stage("generate", seed=seed_index, kind="ub"):
            by_type = self.ub_generator.generate_all(seed, self.config.ub_types)
        counts: Dict[UBType, int] = {}
        programs: List[UBProgram] = []
        for ub_type, generated in by_type.items():
            counts[ub_type] = len(generated)
            programs.extend(generated)
        if test_budget is not None:
            programs = programs[:test_budget]
        diff_results = []
        surveyed_cells = skipped_cells = 0
        for program in programs:
            kept, skipped = self._partition_configs(program)
            skipped_cells += skipped
            if not kept:
                # Every cell of this program is already in the findings
                # database: nothing left to survey, drop the program.
                continue
            surveyed_cells += len(kept)
            with telemetry.span("test", ub=program.ub_type.value):
                diff_results.append(self.tester.test(program, configs=kept))
        logger.debug("seed %d: %d programs in %.2fs", seed_index,
                     len(programs), time.time() - start)
        return SeedBatch(seed_index=seed_index, generated=True,
                         programs_generated=counts, diff_results=diff_results,
                         duration_seconds=time.time() - start,
                         surveyed_cells=surveyed_cells,
                         skipped_cells=skipped_cells)

    def _partition_configs(self, program: UBProgram):
        """Split a program's config matrix into (to survey, skipped count).

        Without a skip set the fast path hands the tester ``None`` (its own
        default matrix) — zero overhead and byte-identical behaviour."""
        configs = default_configs(program.ub_type,
                                  compilers=tuple(self.tester.compilers),
                                  opt_levels=self.tester.opt_levels)
        if not self.survey_skip:
            return configs, 0
        digest = program_digest(program.source)
        kept = [config for config in configs
                if (digest, config.compiler, "", config.opt_level,
                    config.sanitizer) not in self.survey_skip]
        return kept, len(configs) - len(kept)

    def collect(self, batches: Iterable[SeedBatch]) -> CampaignResult:
        """Merge per-seed batches (in seed order) into the campaign result.

        Consumption stops as soon as ``max_programs_total`` is reached, so a
        lazy serial iterator never generates seeds past the cap, and the
        result (stats, candidates, reports) is identical to the pre-refactor
        loop.  A batch is always a *whole* seed, though — workers cannot see
        the global budget — so excess programs of the final consumed seed
        (and of any seeds a pool prefetched) are tested and then discarded.
        """
        start = time.time()
        stats = CampaignStats(programs_generated={ub: 0 for ub in self.config.ub_types})
        fn_candidates: List[FNBugCandidate] = []
        wrong_reports: List[WrongReportCandidate] = []
        diff_results: List[DifferentialResult] = []
        remaining = self.config.max_programs_total

        for batch in batches:
            # The single telemetry merge point, in seed order: worker-side
            # scope payloads fold into the parent session here.
            telemetry.merge_batch(batch.telemetry)
            if not batch.generated:
                continue
            stats.seeds_used += 1
            for ub_type, count in batch.programs_generated.items():
                stats.programs_generated[ub_type] = (
                    stats.programs_generated.get(ub_type, 0) + count)
            kept = (batch.diff_results if remaining is None
                    else batch.diff_results[:remaining])
            for result in kept:
                diff_results.append(result)
                stats.programs_tested += 1
                if result.has_discrepancy:
                    stats.discrepant_programs += 1
                stats.optimization_discrepancies += result.optimization_discrepancies
                fn_candidates.extend(result.fn_candidates)
                wrong_reports.extend(result.wrong_report_candidates)
            if remaining is not None:
                remaining -= len(kept)
                if remaining <= 0:
                    break

        stats.fn_candidates = len(fn_candidates)
        stats.wrong_report_candidates = len(wrong_reports)

        bug_reports = self._build_reports(fn_candidates, wrong_reports)
        stats.duration_seconds = time.time() - start
        return CampaignResult(config=self.config, stats=stats,
                              bug_reports=bug_reports,
                              fn_candidates=fn_candidates,
                              wrong_report_candidates=wrong_reports,
                              differential_results=diff_results)

    # -- reporting -------------------------------------------------------------------

    def _build_reports(self, fn_candidates: List[FNBugCandidate],
                       wrong_reports: List[WrongReportCandidate]) -> List[BugReport]:
        reports: List[BugReport] = []
        if not self.config.triage:
            return reports
        # Many programs expose the same defect; triage (defect bisection) is
        # expensive, so only one representative candidate per behavioural
        # signature is triaged.  Deduplication by defect id then merges any
        # signatures that turn out to share a root cause.
        for candidate in self._representative_fn_candidates(fn_candidates):
            reports.append(self.triager.triage_fn_candidate(candidate))
        for candidate in self._representative_wrong_reports(wrong_reports):
            reports.append(self.triager.triage_wrong_report(candidate))
        return self.triager.deduplicate(reports)

    @staticmethod
    def _representative_fn_candidates(
            candidates: List[FNBugCandidate]) -> List[FNBugCandidate]:
        seen = set()
        representatives: List[FNBugCandidate] = []
        for candidate in candidates:
            config = candidate.missing.config
            report = candidate.detecting.result.report
            signature = (config.compiler, config.sanitizer, config.opt_level,
                         candidate.program.ub_type,
                         report.kind if report is not None else None)
            if signature in seen:
                continue
            seen.add(signature)
            representatives.append(candidate)
        return representatives

    @staticmethod
    def _representative_wrong_reports(
            candidates: List[WrongReportCandidate]) -> List[WrongReportCandidate]:
        seen = set()
        representatives: List[WrongReportCandidate] = []
        for candidate in candidates:
            signature = (candidate.second.config.compiler,
                         candidate.second.config.sanitizer,
                         candidate.difference.split()[0] if candidate.difference else "")
            if signature in seen:
                continue
            seen.add(signature)
            representatives.append(candidate)
        return representatives
