"""MemorySanitizer: instrumentation pass and runtime.

MSan tracks whether memory is initialized (the VM's taint substrate,
:mod:`repro.vm.values`) and reports when an uninitialized value influences
control flow.  The pass wraps every branch condition (``if``, ``while``,
``for``, the ternary operator) in an ``msan_use`` check; the runtime simply
reports when the checked value carries taint.

The seeded LLVM defect in this sanitizer models the paper's Fig. 12f:
subtracting a constant from an uninitialized value is (incorrectly) treated
as producing a fully-defined value, so the branch check never fires.
"""

from __future__ import annotations

from typing import Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.source import SourceLocation
from repro.sanitizers import report as rk
from repro.sanitizers.base import (
    InstrumentationContext,
    SanitizerPass,
    make_check,
    make_report,
)
from repro.vm.errors import SanitizerReport
from repro.vm.memory import Memory, MemoryObject


class MsanPass(SanitizerPass):
    """The compile-time half of MSan."""

    name = rk.MSAN

    def instrument(self, unit: ast.TranslationUnit, sema: SemanticInfo,
                   ctx: InstrumentationContext) -> ast.TranslationUnit:
        for fn in unit.functions:
            if fn.body is not None:
                _instrument_stmt(fn.body, ctx)
        return unit

    def build_runtime(self, ctx: InstrumentationContext) -> "MsanRuntime":
        return MsanRuntime(ctx)


def _wrap_condition(cond: ast.Expr, ctx: InstrumentationContext) -> ast.Expr:
    ctx.cover_branch("msan.wrap_condition", True)
    return make_check("msan_use", cond, ctx, {"use": "branch"})


def _instrument_stmt(stmt: ast.Stmt, ctx: InstrumentationContext) -> None:
    if isinstance(stmt, ast.CompoundStmt):
        for inner in stmt.stmts:
            _instrument_stmt(inner, ctx)
    elif isinstance(stmt, ast.IfStmt):
        stmt.cond = _wrap_condition(stmt.cond, ctx)
        _instrument_stmt(stmt.then, ctx)
        if stmt.otherwise is not None:
            _instrument_stmt(stmt.otherwise, ctx)
    elif isinstance(stmt, ast.WhileStmt):
        stmt.cond = _wrap_condition(stmt.cond, ctx)
        _instrument_stmt(stmt.body, ctx)
    elif isinstance(stmt, ast.ForStmt):
        if stmt.cond is not None:
            stmt.cond = _wrap_condition(stmt.cond, ctx)
        _instrument_stmt(stmt.body, ctx)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = _instrument_expr(stmt.expr, ctx)
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None and _in_main(ctx):
            stmt.value = make_check("msan_use", stmt.value, ctx, {"use": "return"})


def _in_main(ctx: InstrumentationContext) -> bool:
    # MSan also flags returning uninitialized values from main; we apply the
    # check unconditionally since the subset's programs return from main.
    return True


def _instrument_expr(expr: ast.Expr, ctx: InstrumentationContext) -> ast.Expr:
    # The ternary operator's condition is also a "use" of the value.
    if isinstance(expr, ast.Conditional):
        expr.cond = _wrap_condition(expr.cond, ctx)
    for field_name in expr._fields:
        value = getattr(expr, field_name, None)
        if isinstance(value, ast.Expr) and field_name != "cond":
            setattr(expr, field_name, _instrument_expr(value, ctx))
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, ast.Expr):
                    value[i] = _instrument_expr(item, ctx)
    return expr


class MsanRuntime:
    """Evaluates MSan checks against the VM's taint bits."""

    def __init__(self, ctx: InstrumentationContext) -> None:
        self.ctx = ctx
        overrides = ctx.runtime_overrides()
        self.ignore_taint = bool(overrides.get("msan_ignore_taint", False))

    def attach(self, memory: Memory) -> None:
        return None

    def on_alloc(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_free(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_scope_enter(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_scope_exit(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def check(self, kind: str, detail: dict, operands: dict,
              memory: Memory, loc: SourceLocation) -> Optional[SanitizerReport]:
        if kind != "msan_use" or self.ignore_taint:
            return None
        if not operands.get("tainted"):
            self.ctx.cover_branch("msan.value_defined", True)
            return None
        self.ctx.cover_branch("msan.value_defined", False)
        return make_report(rk.MSAN, rk.USE_OF_UNINITIALIZED_VALUE, loc,
                           message="conditional depends on uninitialized value")
