"""Sanitizer implementations: ASan, UBSan, MSan passes, runtimes and defects."""

from repro.sanitizers import report
from repro.sanitizers.asan import AsanPass, AsanRuntime
from repro.sanitizers.base import (
    ASAN_REDZONE,
    InstrumentationContext,
    SanitizerPass,
    make_check,
    make_report,
)
from repro.sanitizers.defects import (
    CATEGORIES,
    Defect,
    default_defects,
    defect_by_id,
    defects_for,
)
from repro.sanitizers.msan import MsanPass, MsanRuntime
from repro.sanitizers.registry import (
    available_sanitizers,
    build_pass,
    report_kinds_of,
    sanitizers_supported_by,
)
from repro.sanitizers.ubsan import UbsanPass, UbsanRuntime

__all__ = [
    "report",
    "AsanPass",
    "AsanRuntime",
    "ASAN_REDZONE",
    "InstrumentationContext",
    "SanitizerPass",
    "make_check",
    "make_report",
    "CATEGORIES",
    "Defect",
    "default_defects",
    "defect_by_id",
    "defects_for",
    "MsanPass",
    "MsanRuntime",
    "available_sanitizers",
    "build_pass",
    "report_kinds_of",
    "sanitizers_supported_by",
    "UbsanPass",
    "UbsanRuntime",
]
