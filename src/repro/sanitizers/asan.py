"""AddressSanitizer: instrumentation pass and runtime.

The pass wraps every memory access (pointer dereference, array subscript,
``->`` member access) in an ``asan_access`` check.  The runtime keeps the
shadow/poison state in the VM memory:

* allocation poisons a red zone of :data:`~repro.sanitizers.base.ASAN_REDZONE`
  bytes on each side of the object (so, as in the paper, overflows are only
  detectable up to 32 bytes past the object);
* ``free`` poisons the heap block (use-after-free);
* leaving a lexical scope poisons the stack slot (use-after-scope), and
  re-entering it unpoisons it.

Seeded defects can suppress individual checks (``No Sanitizer Check`` /
``Incorrect Sanitizer Check`` / ``Incorrect Sanitizer Optimization``
categories) or weaken the runtime (``Wrong Red-Zone Buffer``, scope/free
poisoning skips).
"""

from __future__ import annotations

from typing import Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.source import SourceLocation
from repro.sanitizers import report as rk
from repro.sanitizers.base import (
    ASAN_REDZONE,
    InstrumentationContext,
    SanitizerPass,
    make_check,
    make_report,
)
from repro.vm.errors import SanitizerReport
from repro.vm.memory import Memory, MemoryObject

#: ASan's shadow memory maps 8 application bytes to one shadow byte, so
#: scope-exit / free poisoning covers the object's slot rounded up to the
#: next granule boundary.  An access just past a dead object's end therefore
#: reads the use-after-scope/use-after-free poison value, not the redzone
#: value (cf. the paper's §2.1 shadow-memory discussion).
SHADOW_GRANULE = 8


def _granule_end(obj: MemoryObject) -> int:
    return obj.base + -(-obj.size // SHADOW_GRANULE) * SHADOW_GRANULE


class AsanPass(SanitizerPass):
    """The compile-time half of ASan."""

    name = rk.ASAN

    def instrument(self, unit: ast.TranslationUnit, sema: SemanticInfo,
                   ctx: InstrumentationContext) -> ast.TranslationUnit:
        for fn in unit.functions:
            if fn.body is not None:
                _instrument_stmt(fn.body, ctx)
        return unit

    def build_runtime(self, ctx: InstrumentationContext) -> "AsanRuntime":
        return AsanRuntime(ctx)


# ---------------------------------------------------------------------------
# Instrumentation walker
# ---------------------------------------------------------------------------

def _instrument_stmt(stmt: ast.Stmt, ctx: InstrumentationContext) -> None:
    if isinstance(stmt, ast.CompoundStmt):
        for inner in stmt.stmts:
            _instrument_stmt(inner, ctx)
    elif isinstance(stmt, ast.DeclStmt):
        for decl in stmt.decls:
            if isinstance(decl.init, ast.Expr):
                decl.init = _instrument_expr(decl.init, ctx)
            elif isinstance(decl.init, ast.InitList):
                _instrument_init_list(decl.init, ctx)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = _instrument_expr(stmt.expr, ctx)
    elif isinstance(stmt, ast.IfStmt):
        stmt.cond = _instrument_expr(stmt.cond, ctx)
        _instrument_stmt(stmt.then, ctx)
        if stmt.otherwise is not None:
            _instrument_stmt(stmt.otherwise, ctx)
    elif isinstance(stmt, ast.WhileStmt):
        stmt.cond = _instrument_expr(stmt.cond, ctx)
        _instrument_stmt(stmt.body, ctx)
    elif isinstance(stmt, ast.ForStmt):
        if isinstance(stmt.init, ast.Stmt):
            _instrument_stmt(stmt.init, ctx)
        elif isinstance(stmt.init, ast.Expr):
            stmt.init = _instrument_expr(stmt.init, ctx)
        if stmt.cond is not None:
            stmt.cond = _instrument_expr(stmt.cond, ctx)
        if stmt.step is not None:
            stmt.step = _instrument_expr(stmt.step, ctx)
        _instrument_stmt(stmt.body, ctx)
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            stmt.value = _instrument_expr(stmt.value, ctx)
    # break/continue/empty statements carry no expressions.


def _instrument_init_list(init: ast.InitList, ctx: InstrumentationContext) -> None:
    for i, item in enumerate(init.items):
        if isinstance(item, ast.InitList):
            _instrument_init_list(item, ctx)
        elif isinstance(item, ast.Expr):
            init.items[i] = _instrument_expr(item, ctx)


def _instrument_expr(expr: ast.Expr, ctx: InstrumentationContext,
                     is_write: bool = False, skip_wrap: bool = False) -> ast.Expr:
    """Recursively instrument *expr*, wrapping memory accesses in checks."""
    if isinstance(expr, ast.Assignment):
        expr.value = _instrument_expr(expr.value, ctx)
        expr.target = _instrument_expr(expr.target, ctx, is_write=True)
        return expr
    if isinstance(expr, ast.IncDec):
        expr.operand = _instrument_expr(expr.operand, ctx, is_write=True)
        return expr
    if isinstance(expr, ast.AddressOf):
        # Taking an address performs no access: do not wrap the operand
        # itself, but still instrument accesses nested deeper (e.g. the
        # index of &a[b[i]]).
        expr.operand = _instrument_expr(expr.operand, ctx, skip_wrap=True)
        return expr

    # Instrument children first (bottom-up), then consider wrapping self.
    _instrument_children(expr, ctx)

    if skip_wrap or not _is_memory_access(expr):
        return expr
    detail = _access_detail(expr, is_write)
    ctx.cover_branch("asan.wrap_access", True)
    return make_check("asan_access", expr, ctx, detail)


def _instrument_children(expr: ast.Expr, ctx: InstrumentationContext) -> None:
    for field_name in expr._fields:
        value = getattr(expr, field_name, None)
        if isinstance(value, ast.Expr):
            setattr(expr, field_name, _instrument_expr(value, ctx))
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, ast.Expr):
                    value[i] = _instrument_expr(item, ctx)


def _is_memory_access(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Deref):
        return True
    if isinstance(expr, ast.ArraySubscript):
        return True
    if isinstance(expr, ast.MemberAccess):
        return expr.arrow
    return False


def _access_detail(expr: ast.Expr, is_write: bool) -> dict:
    size = expr.ctype.sizeof() if expr.ctype is not None else 1
    detail = {"size": size, "is_write": is_write}
    if isinstance(expr, ast.MemberAccess) and expr.arrow:
        base_type = ct.decay(expr.base.ctype) if expr.base.ctype else None
        if isinstance(base_type, ct.PointerType) and isinstance(base_type.pointee, ct.StructType):
            field_info = base_type.pointee.field_named(expr.field)
            if field_info is not None:
                detail["offset"] = field_info.offset
    return detail


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------

class AsanRuntime:
    """The run-time half of ASan: shadow poisoning and check evaluation."""

    def __init__(self, ctx: InstrumentationContext) -> None:
        self.ctx = ctx
        overrides = ctx.runtime_overrides()
        self.redzone = int(overrides.get("redzone", ASAN_REDZONE))
        self.skip_scope_poisoning = bool(overrides.get("skip_scope_poisoning", False))
        self.skip_free_poisoning = bool(overrides.get("skip_free_poisoning", False))
        self.struct_array_redzone_min_fields = int(
            overrides.get("struct_array_redzone_min_fields", 0))
        self.global_array_padding_slack = int(
            overrides.get("global_array_padding_slack", 0))
        self._scope_exited_once: set = set()

    # -- allocation events -----------------------------------------------------

    def attach(self, memory: Memory) -> None:
        return None

    def on_alloc(self, memory: Memory, obj: MemoryObject) -> None:
        if (self.struct_array_redzone_min_fields and obj.kind == "global"
                and isinstance(obj.ctype, ct.ArrayType)
                and isinstance(obj.ctype.element, ct.StructType)
                and len(obj.ctype.element.fields) >= self.struct_array_redzone_min_fields):
            # Wrong Red-Zone Buffer defect: this object gets no protection.
            return
        if (self.global_array_padding_slack and obj.kind == "global"
                and isinstance(obj.ctype, ct.ArrayType)):
            # The defect treats the first few bytes past the array as padding
            # (cf. Fig. 12d): poison only beyond the slack.
            slack = self.global_array_padding_slack
            memory.poison(obj.base - self.redzone, self.redzone)
            memory.poison(obj.end + slack, max(0, self.redzone - slack))
            return
        memory.poison_redzones(obj, self.redzone)

    def on_free(self, memory: Memory, obj: MemoryObject) -> None:
        if self.skip_free_poisoning:
            return
        memory.poison(obj.base, _granule_end(obj) - obj.base)

    def on_scope_enter(self, memory: Memory, obj: MemoryObject) -> None:
        memory.unpoison(obj.base, obj.size)

    def on_scope_exit(self, memory: Memory, obj: MemoryObject) -> None:
        if self.skip_scope_poisoning:
            # The "Incorrect Sanitizer Optimization" scope defect (cf. the
            # paper's Fig. 12c): the scope check is dropped when a loop is
            # exited, i.e. from the second time the same slot leaves scope.
            if obj.oid in self._scope_exited_once:
                return
            self._scope_exited_once.add(obj.oid)
        memory.poison(obj.base, _granule_end(obj) - obj.base)

    # -- checks ------------------------------------------------------------------

    def check(self, kind: str, detail: dict, operands: dict,
              memory: Memory, loc: SourceLocation) -> Optional[SanitizerReport]:
        if kind != "asan_access":
            return None
        addr = operands.get("addr", 0)
        size = operands.get("size", detail.get("size", 1))
        if not memory.is_poisoned(addr, size):
            self.ctx.cover_branch("asan.check_clean", True)
            return None
        self.ctx.cover_branch("asan.check_clean", False)
        report_kind = self._classify(memory, addr)
        access = "WRITE" if operands.get("is_write") else "READ"
        return make_report(rk.ASAN, report_kind, loc,
                           message=f"{access} of size {size} at 0x{addr:x}",
                           address=addr, size=size)

    def _classify(self, memory: Memory, addr: int) -> str:
        obj = memory.object_at(addr)
        if obj is not None and obj.freed:
            return rk.HEAP_USE_AFTER_FREE
        if obj is not None and obj.dead:
            return rk.STACK_USE_AFTER_SCOPE
        nearest = memory.nearest_object(addr, self.redzone) if obj is None else obj
        if (obj is None and nearest is not None and not nearest.is_live
                and nearest.base <= addr < _granule_end(nearest)):
            # The access lands in the granule padding of a dead/freed slot:
            # its shadow byte carries the scope/free poison value, not the
            # redzone value, so real ASan headlines it as a use-after.
            return (rk.HEAP_USE_AFTER_FREE if nearest.freed
                    else rk.STACK_USE_AFTER_SCOPE)
        if nearest is None:
            return rk.STACK_BUFFER_OVERFLOW
        return {
            "global": rk.GLOBAL_BUFFER_OVERFLOW,
            "stack": rk.STACK_BUFFER_OVERFLOW,
            "heap": rk.HEAP_BUFFER_OVERFLOW,
        }.get(nearest.kind, rk.STACK_BUFFER_OVERFLOW)
