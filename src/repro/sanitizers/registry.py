"""Registry of available sanitizers and their capabilities (paper Table 2)."""

from __future__ import annotations

from typing import Dict, List

from repro.sanitizers import report as rk
from repro.sanitizers.asan import AsanPass
from repro.sanitizers.base import SanitizerPass
from repro.sanitizers.msan import MsanPass
from repro.sanitizers.ubsan import UbsanPass

_PASSES: Dict[str, type] = {
    rk.ASAN: AsanPass,
    rk.UBSAN: UbsanPass,
    rk.MSAN: MsanPass,
}


def available_sanitizers() -> List[str]:
    """All sanitizer names supported by the simulated compilers."""
    return list(_PASSES)


def build_pass(name: str) -> SanitizerPass:
    """Instantiate the instrumentation pass for a sanitizer name."""
    try:
        return _PASSES[name]()
    except KeyError as exc:
        raise KeyError(f"unknown sanitizer {name!r}; "
                       f"available: {sorted(_PASSES)}") from exc


def sanitizers_supported_by(compiler: str) -> List[str]:
    """Sanitizers a compiler supports.  GCC does not ship MSan (paper §4.1)."""
    if compiler == "gcc":
        return [rk.ASAN, rk.UBSAN]
    return [rk.ASAN, rk.UBSAN, rk.MSAN]


def report_kinds_of(name: str) -> tuple:
    """The report kinds a sanitizer can emit."""
    return rk.KINDS_BY_SANITIZER.get(name, ())
