"""Injected sanitizer defect models.

The paper finds 31 real false-negative (and wrong-report) bugs in GCC's and
LLVM's sanitizer implementations and categorises them by root cause
(Table 6).  Our simulated compilers cannot contain the *actual* GCC/LLVM
bugs, so we seed their sanitizer passes and runtimes with *defect models*:
small, precisely-scoped deviations from correct instrumentation that mirror
the paper's root-cause categories:

* ``NO_CHECK`` — the pass forgets to instrument certain accesses
  (paper: "No Sanitizer Check", Fig. 12a);
* ``INCORRECT_OPT`` — a sanitizer-internal optimisation removes valid checks
  or skips scope poisoning (Fig. 12c);
* ``WRONG_REDZONE`` — red zones are mis-sized for certain globals (Fig. 12d);
* ``INCORRECT_CHECK`` — a check is placed so that it cannot fire (Fig. 12e);
* ``FOLDING`` — operand widening/shortening confuses the check inserter
  (Fig. 12b);
* ``OPERATION_HANDLING`` — shadow propagation mishandles an operation
  (Fig. 12f);
* ``WRONG_LINE`` — the check fires but reports a wrong source location,
  producing the paper's two "wrong report" (non-FN) bugs.

Every defect is attached to a compiler, a sanitizer, a range of affected
versions and a set of optimization levels, which is what lets the
reproduction regenerate Figure 10 (affected stable versions) and Figure 11
(affected optimization levels).

The *fuzzing campaign does not know this registry*: it only observes binary
behaviour, exactly like the paper's tool observes GCC and LLVM.  The
registry doubles as ground truth when we evaluate precision/recall of the
crash-site mapping oracle (RQ3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct

# Root-cause categories (Table 6).
NO_CHECK = "No Sanitizer Check"
INCORRECT_OPT = "Incorrect Sanitizer Optimization"
WRONG_REDZONE = "Wrong Red-Zone Buffer"
INCORRECT_CHECK = "Incorrect Sanitizer Check"
FOLDING = "Incorrect Expression Folding/Shorten"
OPERATION_HANDLING = "Incorrect Operation Handling"
WRONG_LINE = "Wrong Line Information"

CATEGORIES = (NO_CHECK, INCORRECT_OPT, WRONG_REDZONE, INCORRECT_CHECK,
              FOLDING, OPERATION_HANDLING, WRONG_LINE)


@dataclass(frozen=True)
class Defect:
    """One seeded sanitizer bug.

    ``check_predicate`` decides, at instrumentation time, whether this defect
    suppresses the check that would guard *expr*; ``runtime_overrides`` are
    configuration tweaks applied to the sanitizer runtime (red-zone sizes,
    scope poisoning, shadow propagation); ``line_skew`` shifts the reported
    source line, modelling wrong-report (non-FN) bugs.
    """

    defect_id: str
    compiler: str                 # "gcc" or "llvm"
    sanitizer: str                # "asan", "ubsan", "msan"
    category: str
    ub_kinds: tuple               # report kinds this defect can hide
    opt_levels: tuple             # e.g. ("-O2", "-O3"); empty = all levels
    introduced_version: int
    fixed_version: Optional[int] = None
    check_kinds: tuple = ()       # which check kinds the predicate applies to
    check_predicate: Optional[Callable[[ast.Expr, dict], bool]] = None
    runtime_overrides: Dict[str, object] = field(default_factory=dict)
    line_skew: int = 0
    is_false_negative: bool = True

    def active_for(self, compiler: str, version: int, sanitizer: str,
                   opt_level: str) -> bool:
        if compiler != self.compiler or sanitizer != self.sanitizer:
            return False
        if version < self.introduced_version:
            return False
        if self.fixed_version is not None and version >= self.fixed_version:
            return False
        if self.opt_levels and opt_level not in self.opt_levels:
            return False
        return True

    def suppresses(self, check_kind: str, expr: ast.Expr, detail: dict) -> bool:
        if self.check_predicate is None:
            return False
        if self.check_kinds and check_kind not in self.check_kinds:
            return False
        try:
            return bool(self.check_predicate(expr, detail))
        except Exception:
            return False


# ---------------------------------------------------------------------------
# Predicate templates
# ---------------------------------------------------------------------------

def _is_write_through_global_pointer(expr: ast.Expr, detail: dict) -> bool:
    """A store through a pointer-typed *global* variable (cf. Fig. 12a)."""
    if not detail.get("is_write"):
        return False
    if not isinstance(expr, ast.Deref):
        return False
    pointer = expr.pointer
    return (isinstance(pointer, ast.Identifier) and pointer.symbol is not None
            and pointer.symbol.is_global
            and isinstance(ct.decay(pointer.symbol.ctype), ct.PointerType))


def _is_pointer_offset_access(expr: ast.Expr, detail: dict) -> bool:
    """An access of the form ``*(p + k)`` with a variable offset."""
    if not isinstance(expr, ast.Deref):
        return False
    pointer = expr.pointer
    return (isinstance(pointer, ast.BinaryOp) and pointer.op in ("+", "-")
            and not isinstance(pointer.rhs, ast.IntLiteral))


def _is_member_arrow_access(expr: ast.Expr, detail: dict) -> bool:
    """A ``p->field`` access with a non-zero field offset."""
    return isinstance(expr, ast.MemberAccess) and expr.arrow and detail.get("offset", 0) > 0


def _is_pointer_subscript_variable_index(expr: ast.Expr, detail: dict) -> bool:
    """``p[i]`` where ``p`` is a pointer variable and ``i`` is not constant.

    This is the access form ASan's (defective) redundant-check elimination
    drops at high optimization levels; heap accesses in generated seeds take
    exactly this shape, while Juliet-style suites index with constants.
    """
    if not isinstance(expr, ast.ArraySubscript):
        return False
    base = expr.base
    if not (isinstance(base, ast.Identifier) and base.symbol is not None
            and isinstance(ct.decay(base.symbol.ctype), ct.PointerType)
            and not isinstance(base.symbol.ctype, ct.ArrayType)):
        return False
    return not isinstance(expr.index, ast.IntLiteral)


def _is_subscript_with_param_index(expr: ast.Expr, detail: dict) -> bool:
    """``a[i]`` where the index is a function parameter (cf. Fig. 12d)."""
    if not isinstance(expr, ast.ArraySubscript):
        return False
    index = expr.index
    return (isinstance(index, ast.Identifier) and index.symbol is not None
            and index.symbol.storage == "param")


def _is_subscript_of_global_array(expr: ast.Expr, detail: dict) -> bool:
    """``g[i]`` where ``g`` is a global array and the index is not constant."""
    if not isinstance(expr, ast.ArraySubscript):
        return False
    base = expr.base
    return (isinstance(base, ast.Identifier) and base.symbol is not None
            and base.symbol.is_global
            and isinstance(base.symbol.ctype, ct.ArrayType)
            and not isinstance(expr.index, ast.IntLiteral))


def _has_narrowing_cast_of_bool(expr: ast.Expr, detail: dict) -> bool:
    """The guarded expression contains a comparison widened through a cast
    to a narrower integer type (cf. Fig. 12b)."""
    from repro.cdsl.visitor import walk
    for node in walk(expr):
        if isinstance(node, ast.Cast) and isinstance(node.target_type, ct.IntType) \
                and node.target_type.bits < 32:
            for inner in walk(node.operand):
                if isinstance(inner, ast.BinaryOp) and (
                        inner.op in ast.BinaryOp.RELATIONAL_OPS
                        or inner.op in ("|", "&")):
                    return True
    return False


def _is_incdec_null_deref(expr: ast.Expr, detail: dict) -> bool:
    """The null check guards a dereference used inside ``++``/``--``
    (cf. Fig. 12e: ``++(*a)`` misleads UBSan)."""
    return bool(detail.get("in_incdec"))


def _shift_amount_is_narrow(expr: ast.Expr, detail: dict) -> bool:
    """A shift whose amount has a narrow (char/short) type."""
    if not isinstance(expr, ast.BinaryOp) or expr.op not in ("<<", ">>"):
        return False
    rhs_type = expr.rhs.ctype
    return isinstance(rhs_type, ct.IntType) and rhs_type.bits < 32


def _mul_with_negative_constant(expr: ast.Expr, detail: dict) -> bool:
    """A multiplication with a negative constant operand."""
    if not isinstance(expr, ast.BinaryOp) or expr.op != "*":
        return False
    for side in (expr.lhs, expr.rhs):
        if isinstance(side, ast.UnaryOp) and side.op == "-" \
                and isinstance(side.operand, ast.IntLiteral):
            return True
        if isinstance(side, ast.IntLiteral) and side.value < 0:
            return True
    return False


def _arith_on_compound_assignment(expr: ast.Expr, detail: dict) -> bool:
    """Arithmetic that appears as part of a compound assignment."""
    return bool(detail.get("in_compound_assign"))


def _uninit_use_minus_constant(expr: ast.Expr, detail: dict) -> bool:
    """A branch condition of the form ``x - C`` (cf. Fig. 12f)."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "-" \
            and isinstance(expr.rhs, ast.IntLiteral):
        return True
    return False


def _div_by_variable(expr: ast.Expr, detail: dict) -> bool:
    """A division whose divisor is a plain variable (not a constant)."""
    if not isinstance(expr, ast.BinaryOp) or expr.op not in ("/", "%"):
        return False
    return isinstance(expr.rhs, ast.Identifier)


def _subscript_constant_index(expr: ast.Expr, detail: dict) -> bool:
    """``g[C]`` on a *global* array with a constant (possibly out-of-range)
    index.  Restricting the pattern to globals keeps it out of reach of the
    simple local-array programs of Juliet-style suites, mirroring the paper's
    finding that the existing test suites expose no sanitizer FN bug."""
    if not (isinstance(expr, ast.ArraySubscript)
            and isinstance(expr.index, ast.IntLiteral)):
        return False
    base = expr.base
    return (isinstance(base, ast.Identifier) and base.symbol is not None
            and base.symbol.is_global)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_O_HIGH = ("-O1", "-Os", "-O2", "-O3")
_O_TOP = ("-O2", "-O3")

def _default_registry() -> List[Defect]:
    from repro.sanitizers import report as rk

    defects: List[Defect] = []

    # ---- GCC ASan -----------------------------------------------------------
    defects.append(Defect(
        "gcc-asan-global-ptr-store", "gcc", "asan", NO_CHECK,
        (rk.STACK_BUFFER_OVERFLOW, rk.GLOBAL_BUFFER_OVERFLOW),
        _O_TOP, introduced_version=6, fixed_version=14,
        check_kinds=("asan_access",),
        check_predicate=_is_write_through_global_pointer))
    defects.append(Defect(
        "gcc-asan-pointer-offset-load", "gcc", "asan", INCORRECT_OPT,
        (rk.STACK_BUFFER_OVERFLOW, rk.GLOBAL_BUFFER_OVERFLOW,
         rk.HEAP_BUFFER_OVERFLOW),
        ("-O2", "-O3"), introduced_version=8,
        check_kinds=("asan_access",),
        check_predicate=_is_pointer_offset_access))
    defects.append(Defect(
        "gcc-asan-scope-loop", "gcc", "asan", INCORRECT_OPT,
        (rk.STACK_USE_AFTER_SCOPE,),
        ("-O3",), introduced_version=7,
        runtime_overrides={"skip_scope_poisoning": True}))
    defects.append(Defect(
        "gcc-asan-struct-global-redzone", "gcc", "asan", WRONG_REDZONE,
        (rk.GLOBAL_BUFFER_OVERFLOW,),
        (), introduced_version=5,
        # Global arrays whose element is a struct with at least two fields
        # get no red zone at all; single-field struct arrays (like the
        # paper's Figure 1) are still protected, so the bug is only visible
        # on richer seeds and is caught cross-compiler by LLVM ASan.
        runtime_overrides={"struct_array_redzone_min_fields": 2}))
    defects.append(Defect(
        "gcc-asan-member-offset", "gcc", "asan", INCORRECT_CHECK,
        (rk.STACK_BUFFER_OVERFLOW, rk.GLOBAL_BUFFER_OVERFLOW),
        ("-Os",), introduced_version=9,
        check_kinds=("asan_access",),
        check_predicate=_is_member_arrow_access))
    defects.append(Defect(
        "gcc-asan-uaf-opt", "gcc", "asan", INCORRECT_OPT,
        (rk.HEAP_USE_AFTER_FREE, rk.HEAP_BUFFER_OVERFLOW),
        ("-O2", "-O3"), introduced_version=10,
        check_kinds=("asan_access",),
        check_predicate=_is_pointer_subscript_variable_index))
    defects.append(Defect(
        "gcc-asan-line-info", "gcc", "asan", WRONG_LINE,
        (rk.STACK_BUFFER_OVERFLOW,),
        ("-O1",), introduced_version=11,
        line_skew=1, is_false_negative=False))

    # ---- GCC UBSan ----------------------------------------------------------
    defects.append(Defect(
        "gcc-ubsan-bool-widen-div", "gcc", "ubsan", FOLDING,
        (rk.DIVISION_BY_ZERO,),
        (), introduced_version=5,
        check_kinds=("ubsan_div",),
        check_predicate=_has_narrowing_cast_of_bool))
    defects.append(Defect(
        "gcc-ubsan-bool-widen-arith", "gcc", "ubsan", FOLDING,
        (rk.SIGNED_INTEGER_OVERFLOW,),
        (), introduced_version=5,
        check_kinds=("ubsan_arith",),
        check_predicate=_has_narrowing_cast_of_bool))
    defects.append(Defect(
        "gcc-ubsan-narrow-shift", "gcc", "ubsan", FOLDING,
        (rk.SHIFT_OUT_OF_BOUNDS,),
        _O_HIGH, introduced_version=7,
        check_kinds=("ubsan_shift",),
        check_predicate=_shift_amount_is_narrow))
    defects.append(Defect(
        "gcc-ubsan-neg-const-mul", "gcc", "ubsan", NO_CHECK,
        (rk.SIGNED_INTEGER_OVERFLOW,),
        _O_TOP, introduced_version=10,
        check_kinds=("ubsan_arith",),
        check_predicate=_mul_with_negative_constant))
    defects.append(Defect(
        "gcc-ubsan-compound-arith", "gcc", "ubsan", FOLDING,
        (rk.SIGNED_INTEGER_OVERFLOW, rk.SHIFT_OUT_OF_BOUNDS),
        ("-O2", "-O3", "-Os"), introduced_version=8,
        check_kinds=("ubsan_arith", "ubsan_shift"),
        check_predicate=_arith_on_compound_assignment))
    defects.append(Defect(
        "gcc-ubsan-bounds-param-index", "gcc", "ubsan", INCORRECT_CHECK,
        (rk.ARRAY_INDEX_OUT_OF_BOUNDS,),
        ("-O2", "-O3"), introduced_version=9,
        check_kinds=("ubsan_bounds",),
        check_predicate=_is_subscript_with_param_index))
    defects.append(Defect(
        "gcc-ubsan-line-info", "gcc", "ubsan", WRONG_LINE,
        (rk.SIGNED_INTEGER_OVERFLOW,),
        ("-O0",), introduced_version=12,
        line_skew=1, is_false_negative=False))
    defects.append(Defect(
        "gcc-ubsan-div-opt", "gcc", "ubsan", INCORRECT_OPT,
        (rk.DIVISION_BY_ZERO,),
        ("-O3",), introduced_version=11,
        check_kinds=("ubsan_div",),
        check_predicate=_div_by_variable))

    # ---- LLVM ASan ----------------------------------------------------------
    defects.append(Defect(
        "llvm-asan-global-array-padding", "llvm", "asan", WRONG_REDZONE,
        (rk.GLOBAL_BUFFER_OVERFLOW,),
        (), introduced_version=5,
        runtime_overrides={"global_array_padding_slack": 8}))
    defects.append(Defect(
        "llvm-asan-param-index", "llvm", "asan", INCORRECT_CHECK,
        (rk.GLOBAL_BUFFER_OVERFLOW, rk.STACK_BUFFER_OVERFLOW),
        (), introduced_version=5,
        check_kinds=("asan_access",),
        check_predicate=_is_subscript_with_param_index))
    defects.append(Defect(
        "llvm-asan-global-subscript", "llvm", "asan", NO_CHECK,
        (rk.GLOBAL_BUFFER_OVERFLOW,),
        ("-O2", "-O3"), introduced_version=9,
        check_kinds=("asan_access",),
        check_predicate=_is_subscript_of_global_array))
    defects.append(Defect(
        "llvm-asan-scope-opt", "llvm", "asan", INCORRECT_OPT,
        (rk.STACK_USE_AFTER_SCOPE,),
        ("-O2", "-O3"), introduced_version=8,
        runtime_overrides={"skip_scope_poisoning": True}))
    defects.append(Defect(
        "llvm-asan-member-offset", "llvm", "asan", INCORRECT_CHECK,
        (rk.STACK_BUFFER_OVERFLOW, rk.GLOBAL_BUFFER_OVERFLOW),
        ("-O1", "-Os"), introduced_version=10,
        check_kinds=("asan_access",),
        check_predicate=_is_member_arrow_access))
    defects.append(Defect(
        "llvm-asan-uaf-offset", "llvm", "asan", INCORRECT_OPT,
        (rk.HEAP_USE_AFTER_FREE,),
        ("-O3",), introduced_version=12,
        check_kinds=("asan_access",),
        check_predicate=_is_pointer_offset_access))

    # ---- LLVM UBSan ---------------------------------------------------------
    defects.append(Defect(
        "llvm-ubsan-incdec-null", "llvm", "ubsan", INCORRECT_CHECK,
        (rk.NULL_POINTER_DEREFERENCE,),
        (), introduced_version=5,
        check_kinds=("ubsan_null",),
        check_predicate=_is_incdec_null_deref))
    defects.append(Defect(
        "llvm-ubsan-narrow-shift", "llvm", "ubsan", INCORRECT_CHECK,
        (rk.SHIFT_OUT_OF_BOUNDS,),
        ("-O2", "-O3"), introduced_version=9,
        check_kinds=("ubsan_shift",),
        check_predicate=_shift_amount_is_narrow))
    defects.append(Defect(
        "llvm-ubsan-compound-arith", "llvm", "ubsan", INCORRECT_CHECK,
        (rk.SIGNED_INTEGER_OVERFLOW,),
        _O_HIGH, introduced_version=7,
        check_kinds=("ubsan_arith",),
        check_predicate=_arith_on_compound_assignment))
    defects.append(Defect(
        "llvm-ubsan-neg-const-mul", "llvm", "ubsan", NO_CHECK,
        (rk.SIGNED_INTEGER_OVERFLOW,),
        ("-O3",), introduced_version=11,
        check_kinds=("ubsan_arith",),
        check_predicate=_mul_with_negative_constant))
    defects.append(Defect(
        "llvm-ubsan-bounds-const", "llvm", "ubsan", INCORRECT_CHECK,
        (rk.ARRAY_INDEX_OUT_OF_BOUNDS,),
        ("-O2", "-O3", "-Os"), introduced_version=10,
        check_kinds=("ubsan_bounds",),
        check_predicate=_subscript_constant_index))
    defects.append(Defect(
        "llvm-ubsan-bool-widen-div", "llvm", "ubsan", FOLDING,
        (rk.DIVISION_BY_ZERO,),
        ("-O2", "-O3"), introduced_version=8,
        check_kinds=("ubsan_div",),
        check_predicate=_has_narrowing_cast_of_bool))

    # ---- LLVM MSan ----------------------------------------------------------
    # MSan exists only in LLVM, so this defect must leave -O0 clean:
    # otherwise no configuration could ever detect the UB and differential
    # testing would have nothing to compare against.
    defects.append(Defect(
        "llvm-msan-sub-const", "llvm", "msan", OPERATION_HANDLING,
        (rk.USE_OF_UNINITIALIZED_VALUE,),
        ("-O1", "-Os", "-O2", "-O3"), introduced_version=6,
        check_kinds=("msan_use",),
        check_predicate=_uninit_use_minus_constant))

    return defects


_REGISTRY: Optional[List[Defect]] = None


def default_defects() -> List[Defect]:
    """The full seeded defect registry (built lazily, shared, read-only)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _default_registry()
    return list(_REGISTRY)


def defects_for(compiler: str, version: int, sanitizer: str,
                opt_level: str,
                registry: Optional[Sequence[Defect]] = None) -> List[Defect]:
    """Select the defects active for one compilation configuration."""
    source = registry if registry is not None else default_defects()
    return [d for d in source
            if d.active_for(compiler, version, sanitizer, opt_level)]


def defect_by_id(defect_id: str,
                 registry: Optional[Sequence[Defect]] = None) -> Optional[Defect]:
    source = registry if registry is not None else default_defects()
    for defect in source:
        if defect.defect_id == defect_id:
            return defect
    return None
