"""Sanitizer report kinds and helpers.

The :class:`~repro.vm.errors.SanitizerReport` class itself is defined in the
VM (it is a runtime artifact); this module centralises the report *kinds*
each sanitizer can emit and which undefined behaviours they correspond to.
"""

from __future__ import annotations

from repro.vm.errors import SanitizerReport

ASAN = "asan"
UBSAN = "ubsan"
MSAN = "msan"

SANITIZER_NAMES = (ASAN, UBSAN, MSAN)

# AddressSanitizer report kinds.
STACK_BUFFER_OVERFLOW = "stack-buffer-overflow"
GLOBAL_BUFFER_OVERFLOW = "global-buffer-overflow"
HEAP_BUFFER_OVERFLOW = "heap-buffer-overflow"
HEAP_USE_AFTER_FREE = "heap-use-after-free"
STACK_USE_AFTER_SCOPE = "stack-use-after-scope"

ASAN_KINDS = (
    STACK_BUFFER_OVERFLOW,
    GLOBAL_BUFFER_OVERFLOW,
    HEAP_BUFFER_OVERFLOW,
    HEAP_USE_AFTER_FREE,
    STACK_USE_AFTER_SCOPE,
)

# UndefinedBehaviorSanitizer report kinds.
SIGNED_INTEGER_OVERFLOW = "signed-integer-overflow"
SHIFT_OUT_OF_BOUNDS = "shift-out-of-bounds"
DIVISION_BY_ZERO = "division-by-zero"
NULL_POINTER_DEREFERENCE = "null-pointer-dereference"
ARRAY_INDEX_OUT_OF_BOUNDS = "array-index-out-of-bounds"

UBSAN_KINDS = (
    SIGNED_INTEGER_OVERFLOW,
    SHIFT_OUT_OF_BOUNDS,
    DIVISION_BY_ZERO,
    NULL_POINTER_DEREFERENCE,
    ARRAY_INDEX_OUT_OF_BOUNDS,
)

# MemorySanitizer report kinds.
USE_OF_UNINITIALIZED_VALUE = "use-of-uninitialized-value"

MSAN_KINDS = (USE_OF_UNINITIALIZED_VALUE,)

KINDS_BY_SANITIZER = {
    ASAN: ASAN_KINDS,
    UBSAN: UBSAN_KINDS,
    MSAN: MSAN_KINDS,
}

__all__ = [
    "SanitizerReport",
    "ASAN", "UBSAN", "MSAN", "SANITIZER_NAMES",
    "STACK_BUFFER_OVERFLOW", "GLOBAL_BUFFER_OVERFLOW", "HEAP_BUFFER_OVERFLOW",
    "HEAP_USE_AFTER_FREE", "STACK_USE_AFTER_SCOPE", "ASAN_KINDS",
    "SIGNED_INTEGER_OVERFLOW", "SHIFT_OUT_OF_BOUNDS", "DIVISION_BY_ZERO",
    "NULL_POINTER_DEREFERENCE", "ARRAY_INDEX_OUT_OF_BOUNDS", "UBSAN_KINDS",
    "USE_OF_UNINITIALIZED_VALUE", "MSAN_KINDS",
    "KINDS_BY_SANITIZER",
]
