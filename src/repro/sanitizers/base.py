"""Shared infrastructure for sanitizer instrumentation passes.

A sanitizer in this reproduction consists of two cooperating halves, just
like in GCC/LLVM:

* an **instrumentation pass** that runs inside the compiler pipeline *after*
  the optimizer (paper Figure 2) and wraps the relevant expressions in
  :class:`~repro.cdsl.ast_nodes.SanitizerCheck` nodes, and
* a **runtime** attached to the produced binary that manages shadow state
  (red zones, scope poisoning, initialized-ness) and decides whether a check
  fires.

Both halves consult the :class:`InstrumentationContext`, which carries the
compilation configuration and — crucially for this paper — the *defect
models* seeded into the simulated compiler version
(:mod:`repro.sanitizers.defects`).  A defect can suppress checks at
instrumentation time, weaken the runtime, or skew report locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cdsl import ast_nodes as ast
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.source import SourceLocation
from repro.sanitizers.defects import Defect, defects_for
from repro.vm.errors import SanitizerReport

#: ASan's default red-zone size in this reproduction.  Matches the paper's
#: observation that overflows are only detectable within 32 bytes of the
#: object (§2.1).
ASAN_REDZONE = 32


@dataclass
class InstrumentationContext:
    """Everything a sanitizer pass/runtime needs to know about the build."""

    sanitizer: str
    compiler: str = "gcc"
    version: int = 14
    opt_level: str = "-O0"
    defects: List[Defect] = field(default_factory=list)
    coverage: object = None  # optional repro.coverage.tracker.CoverageTracker

    @classmethod
    def for_configuration(cls, sanitizer: str, compiler: str, version: int,
                          opt_level: str,
                          registry: Optional[Sequence[Defect]] = None,
                          coverage=None) -> "InstrumentationContext":
        """Build a context with the defects active for this configuration."""
        active = defects_for(compiler, version, sanitizer, opt_level, registry)
        return cls(sanitizer=sanitizer, compiler=compiler, version=version,
                   opt_level=opt_level, defects=active, coverage=coverage)

    # -- defect hooks ----------------------------------------------------------

    def should_skip_check(self, check_kind: str, expr: ast.Expr,
                          detail: dict) -> Optional[Defect]:
        """Return the defect that suppresses this check, if any."""
        for defect in self.defects:
            if defect.suppresses(check_kind, expr, detail):
                self._cover(f"defect.skip.{defect.category}")
                return defect
        return None

    def runtime_overrides(self) -> Dict[str, object]:
        overrides: Dict[str, object] = {}
        for defect in self.defects:
            overrides.update(defect.runtime_overrides)
        return overrides

    def line_skew(self, check_kind: str) -> int:
        for defect in self.defects:
            if defect.line_skew and (not defect.check_kinds
                                     or check_kind in defect.check_kinds):
                return defect.line_skew
        return 0

    # -- coverage hooks --------------------------------------------------------

    def _cover(self, point: str) -> None:
        if self.coverage is not None:
            self.coverage.hit_point(f"{self.sanitizer}.{point}")

    def cover_branch(self, site: str, taken: bool) -> None:
        if self.coverage is not None:
            self.coverage.hit_branch(f"{self.sanitizer}.{site}", taken)


class SanitizerPass:
    """Base class of the three instrumentation passes."""

    name = "sanitizer"

    def instrument(self, unit: ast.TranslationUnit, sema: SemanticInfo,
                   ctx: InstrumentationContext) -> ast.TranslationUnit:
        """Insert check nodes into *unit* (modified in place and returned)."""
        raise NotImplementedError

    def build_runtime(self, ctx: InstrumentationContext):
        """Create the runtime object attached to the compiled binary."""
        raise NotImplementedError


def make_check(kind: str, inner: ast.Expr, ctx: InstrumentationContext,
               detail: Optional[dict] = None) -> ast.Expr:
    """Wrap *inner* in a check of *kind*, honouring defects and line skew."""
    detail = dict(detail or {})
    defect = ctx.should_skip_check(kind, inner, detail)
    if defect is not None:
        # The defect "forgets" this check: leave the expression bare.
        return inner
    loc = inner.loc
    skew = ctx.line_skew(kind)
    if skew and loc.is_known:
        loc = SourceLocation(loc.line + skew, loc.col)
    check = ast.SanitizerCheck(kind, inner, ctx.sanitizer, detail, loc=loc)
    check.ctype = inner.ctype
    return check


def make_report(sanitizer: str, kind: str, loc: SourceLocation,
                message: str = "", **details) -> SanitizerReport:
    return SanitizerReport(sanitizer=sanitizer, kind=kind, location=loc,
                           message=message, details=dict(details))
