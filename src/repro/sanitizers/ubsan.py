"""UndefinedBehaviorSanitizer: instrumentation pass and runtime.

UBSan inserts tailored checks around individual operations (paper §5,
"Sanitization"): overflow checks on signed arithmetic, bound checks on
shifts, zero checks on divisions, null checks on pointer dereferences and
bound checks on constant-size array indexing.

Seeded defects model the folding/shortening and check-placement mistakes of
the paper's Table 6 (e.g. the boolean-widened division of Fig. 12b or the
``++(*p)`` null-check confusion of Fig. 12e).
"""

from __future__ import annotations

from typing import Optional

from repro.cdsl import ast_nodes as ast
from repro.cdsl import ctypes_ as ct
from repro.cdsl.sema import SemanticInfo
from repro.cdsl.source import SourceLocation
from repro.sanitizers import report as rk
from repro.sanitizers.base import (
    InstrumentationContext,
    SanitizerPass,
    make_check,
    make_report,
)
from repro.vm.errors import SanitizerReport
from repro.vm.memory import Memory, MemoryObject

#: Accesses below this address are reported as null dereferences, mirroring
#: the real runtimes' treatment of the zero page.  All VM segments start at
#: 0x1_0000 or above (:mod:`repro.vm.memory`), so only null-based pointer
#: arithmetic lands here.
_NULL_PAGE = 4096


class UbsanPass(SanitizerPass):
    """The compile-time half of UBSan."""

    name = rk.UBSAN

    def instrument(self, unit: ast.TranslationUnit, sema: SemanticInfo,
                   ctx: InstrumentationContext) -> ast.TranslationUnit:
        for fn in unit.functions:
            if fn.body is not None:
                _instrument_stmt(fn.body, ctx)
        return unit

    def build_runtime(self, ctx: InstrumentationContext) -> "UbsanRuntime":
        return UbsanRuntime(ctx)


def _instrument_stmt(stmt: ast.Stmt, ctx: InstrumentationContext) -> None:
    if isinstance(stmt, ast.CompoundStmt):
        for inner in stmt.stmts:
            _instrument_stmt(inner, ctx)
    elif isinstance(stmt, ast.DeclStmt):
        for decl in stmt.decls:
            if isinstance(decl.init, ast.Expr):
                decl.init = _instrument_expr(decl.init, ctx)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = _instrument_expr(stmt.expr, ctx)
    elif isinstance(stmt, ast.IfStmt):
        stmt.cond = _instrument_expr(stmt.cond, ctx)
        _instrument_stmt(stmt.then, ctx)
        if stmt.otherwise is not None:
            _instrument_stmt(stmt.otherwise, ctx)
    elif isinstance(stmt, ast.WhileStmt):
        stmt.cond = _instrument_expr(stmt.cond, ctx)
        _instrument_stmt(stmt.body, ctx)
    elif isinstance(stmt, ast.ForStmt):
        if isinstance(stmt.init, ast.Stmt):
            _instrument_stmt(stmt.init, ctx)
        elif isinstance(stmt.init, ast.Expr):
            stmt.init = _instrument_expr(stmt.init, ctx)
        if stmt.cond is not None:
            stmt.cond = _instrument_expr(stmt.cond, ctx)
        if stmt.step is not None:
            stmt.step = _instrument_expr(stmt.step, ctx)
        _instrument_stmt(stmt.body, ctx)
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            stmt.value = _instrument_expr(stmt.value, ctx)


def _instrument_expr(expr: ast.Expr, ctx: InstrumentationContext,
                     in_compound_assign: bool = False,
                     in_incdec: bool = False) -> ast.Expr:
    # Recurse with context flags first.
    if isinstance(expr, ast.Assignment):
        compound = expr.op != "="
        expr.value = _instrument_expr(expr.value, ctx,
                                      in_compound_assign=compound)
        expr.target = _instrument_expr(expr.target, ctx,
                                       in_compound_assign=compound)
        return expr
    if isinstance(expr, ast.IncDec):
        expr.operand = _instrument_expr(expr.operand, ctx, in_incdec=True)
        return expr
    if isinstance(expr, ast.AddressOf):
        # &expr performs no dereference; skip the null check on the operand
        # itself but instrument nested expressions.
        _instrument_children(expr.operand, ctx)
        return expr

    _instrument_children(expr, ctx, in_compound_assign, in_incdec)

    flags = {"in_compound_assign": in_compound_assign, "in_incdec": in_incdec}

    if isinstance(expr, ast.BinaryOp):
        result_type = expr.ctype
        if expr.op in ("+", "-", "*") and _is_signed_int(result_type):
            ctx.cover_branch("ubsan.wrap_arith", True)
            detail = {"op": expr.op, "bits": result_type.bits, **flags}
            return make_check("ubsan_arith", expr, ctx, detail)
        if expr.op in ("<<", ">>"):
            lhs_type = ct.integer_promote(expr.lhs.ctype or ct.INT)
            bits = lhs_type.bits if isinstance(lhs_type, ct.IntType) else 32
            ctx.cover_branch("ubsan.wrap_shift", True)
            detail = {"op": expr.op, "bits": bits, **flags}
            return make_check("ubsan_shift", expr, ctx, detail)
        if expr.op in ("/", "%"):
            ctx.cover_branch("ubsan.wrap_div", True)
            detail = {"op": expr.op, **flags}
            return make_check("ubsan_div", expr, ctx, detail)
        return expr

    if isinstance(expr, ast.Deref):
        ctx.cover_branch("ubsan.wrap_null", True)
        size = expr.ctype.sizeof() if expr.ctype is not None else 1
        return make_check("ubsan_null", expr, ctx, {"size": size, **flags})

    if isinstance(expr, ast.MemberAccess) and expr.arrow:
        size = expr.ctype.sizeof() if expr.ctype is not None else 1
        return make_check("ubsan_null", expr, ctx, {"size": size, **flags})

    if isinstance(expr, ast.ArraySubscript):
        base_type = expr.base.ctype
        if isinstance(base_type, ct.ArrayType):
            ctx.cover_branch("ubsan.wrap_bounds", True)
            detail = {"length": base_type.length,
                      "size": base_type.element.sizeof(), **flags}
            return make_check("ubsan_bounds", expr, ctx, detail)
        if isinstance(ct.decay(base_type) if base_type else None, ct.PointerType):
            # p[i] dereferences p just like *(p + i): it needs the same null
            # check (-fsanitize=null instruments every access through a
            # pointer base).
            ctx.cover_branch("ubsan.wrap_null", True)
            size = expr.ctype.sizeof() if expr.ctype is not None else 1
            return make_check("ubsan_null", expr, ctx, {"size": size, **flags})
        return expr

    return expr


def _instrument_children(expr: ast.Expr, ctx: InstrumentationContext,
                         in_compound_assign: bool = False,
                         in_incdec: bool = False) -> None:
    for field_name in expr._fields:
        value = getattr(expr, field_name, None)
        if isinstance(value, ast.Expr):
            setattr(expr, field_name,
                    _instrument_expr(value, ctx, in_compound_assign, in_incdec))
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, ast.Expr):
                    value[i] = _instrument_expr(item, ctx, in_compound_assign,
                                                in_incdec)


def _is_signed_int(ctype: Optional[ct.CType]) -> bool:
    return isinstance(ctype, ct.IntType) and ctype.signed


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------

class UbsanRuntime:
    """Evaluates UBSan checks; keeps no shadow state."""

    def __init__(self, ctx: InstrumentationContext) -> None:
        self.ctx = ctx

    def attach(self, memory: Memory) -> None:
        return None

    def on_alloc(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_free(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_scope_enter(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def on_scope_exit(self, memory: Memory, obj: MemoryObject) -> None:
        return None

    def check(self, kind: str, detail: dict, operands: dict,
              memory: Memory, loc: SourceLocation) -> Optional[SanitizerReport]:
        if kind == "ubsan_arith":
            return self._check_arith(detail, operands, loc)
        if kind == "ubsan_shift":
            return self._check_shift(detail, operands, loc)
        if kind == "ubsan_div":
            return self._check_div(detail, operands, loc)
        if kind == "ubsan_null":
            return self._check_null(operands, loc)
        if kind == "ubsan_bounds":
            return self._check_bounds(detail, operands, loc)
        return None

    def _check_arith(self, detail: dict, operands: dict,
                     loc: SourceLocation) -> Optional[SanitizerReport]:
        ctype = operands.get("ctype")
        if not isinstance(ctype, ct.IntType) or not ctype.signed:
            return None
        lhs, rhs, op = operands.get("lhs", 0), operands.get("rhs", 0), operands.get("op")
        exact = {"+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs}.get(op)
        if exact is None:
            return None
        if ctype.contains(exact):
            self.ctx.cover_branch("ubsan.arith_in_range", True)
            return None
        self.ctx.cover_branch("ubsan.arith_in_range", False)
        return make_report(rk.UBSAN, rk.SIGNED_INTEGER_OVERFLOW, loc,
                           message=f"{lhs} {op} {rhs} cannot be represented "
                                   f"in type {ctype}")

    def _check_shift(self, detail: dict, operands: dict,
                     loc: SourceLocation) -> Optional[SanitizerReport]:
        bits = detail.get("bits", 32)
        rhs = operands.get("rhs", 0)
        if 0 <= rhs < bits:
            self.ctx.cover_branch("ubsan.shift_in_range", True)
            return None
        self.ctx.cover_branch("ubsan.shift_in_range", False)
        return make_report(rk.UBSAN, rk.SHIFT_OUT_OF_BOUNDS, loc,
                           message=f"shift amount {rhs} is out of range for "
                                   f"{bits}-bit type")

    def _check_div(self, detail: dict, operands: dict,
                   loc: SourceLocation) -> Optional[SanitizerReport]:
        rhs = operands.get("rhs", 1)
        if rhs != 0:
            self.ctx.cover_branch("ubsan.div_nonzero", True)
            return None
        self.ctx.cover_branch("ubsan.div_nonzero", False)
        return make_report(rk.UBSAN, rk.DIVISION_BY_ZERO, loc,
                           message="division by zero")

    def _check_null(self, operands: dict,
                    loc: SourceLocation) -> Optional[SanitizerReport]:
        addr = operands.get("addr", 1)
        # Null-page semantics, like the real runtimes: an access whose
        # address lands in the first page is a null dereference (p[i] with a
        # null p computes 0 + i*size, which is never exactly 0 for i > 0).
        # Every legitimate VM segment starts far above this page.
        if not 0 <= addr < _NULL_PAGE:
            self.ctx.cover_branch("ubsan.null_nonnull", True)
            return None
        self.ctx.cover_branch("ubsan.null_nonnull", False)
        return make_report(rk.UBSAN, rk.NULL_POINTER_DEREFERENCE, loc,
                           message="load/store through a null pointer")

    def _check_bounds(self, detail: dict, operands: dict,
                      loc: SourceLocation) -> Optional[SanitizerReport]:
        length = detail.get("length")
        index = operands.get("index")
        if length is None or index is None:
            return None
        if 0 <= index < length:
            self.ctx.cover_branch("ubsan.index_in_bounds", True)
            return None
        self.ctx.cover_branch("ubsan.index_in_bounds", False)
        return make_report(rk.UBSAN, rk.ARRAY_INDEX_OUT_OF_BOUNDS, loc,
                           message=f"index {index} out of bounds for array "
                                   f"of {length} elements")
