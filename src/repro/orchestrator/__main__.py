"""``python -m repro.orchestrator`` — launch an orchestrated campaign."""

import sys

from repro.orchestrator.cli import main

if __name__ == "__main__":
    sys.exit(main())
