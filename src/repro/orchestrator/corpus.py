"""Persistent corpus store and crash-deduplication index.

Long campaigns produce far more UB programs and raw discrepancies than
distinct bugs.  The corpus store keeps every tested program (optionally
persisted to disk as ``.c`` sources plus a JSON index) and buckets every
FN-bug candidate by ``(UB type, crash site, sanitizer)`` — the same
signature the paper's authors used to avoid re-triaging duplicates: two
candidates whose UB, mapped crash location and missing sanitizer all agree
almost always share a root cause.

The store is an *observability* layer: it never influences which bugs the
campaign reports (that stays with the triager, so parallel and serial runs
match), but it answers "what did five months of fuzzing actually produce"
without replaying the campaign.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.fuzzer import SeedBatch
from repro.utils.io import atomic_write_json

#: A dedup bucket key: (ub_type value, crash site "line:col" or "?", sanitizer).
BucketKey = Tuple[str, str, str]


@dataclass
class CrashBucket:
    """All FN-bug candidates sharing one (UB type, crash site, sanitizer)."""

    ub_type: str
    crash_site: str
    sanitizer: str
    count: int = 0
    program_ids: List[str] = field(default_factory=list)
    configs: List[str] = field(default_factory=list)

    @property
    def key(self) -> BucketKey:
        return (self.ub_type, self.crash_site, self.sanitizer)

    def to_json(self) -> dict:
        return {"ub_type": self.ub_type, "crash_site": self.crash_site,
                "sanitizer": self.sanitizer, "count": self.count,
                "program_ids": self.program_ids, "configs": self.configs}

    @staticmethod
    def from_json(record: dict) -> "CrashBucket":
        return CrashBucket(ub_type=record["ub_type"],
                           crash_site=record["crash_site"],
                           sanitizer=record["sanitizer"],
                           count=record["count"],
                           program_ids=list(record["program_ids"]),
                           configs=list(record["configs"]))


class CorpusStore:
    """Stores tested programs and deduplicates their crashes.

    With ``root=None`` everything lives in memory; with a directory, program
    sources land under ``<root>/programs/`` and the index (programs + crash
    buckets) in ``<root>/corpus.json``.  ``ingest`` is idempotent per seed
    index, so re-running a resumed campaign over already-recorded seeds
    cannot double-count.
    """

    INDEX_NAME = "corpus.json"

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = str(root) if root is not None else None
        self.programs: Dict[str, dict] = {}
        self.buckets: Dict[BucketKey, CrashBucket] = {}
        self._ingested_seeds: set = set()
        if self.root is not None and os.path.exists(self._index_path()):
            self._load()

    # -- ingestion -------------------------------------------------------------

    def ingest(self, batch: SeedBatch) -> int:
        """Record one seed batch; returns how many *new* crash buckets opened."""
        if batch.seed_index in self._ingested_seeds:
            return 0
        self._ingested_seeds.add(batch.seed_index)
        new_buckets = 0
        for position, diff in enumerate(batch.diff_results):
            program_id = f"s{batch.seed_index:05d}-p{position:03d}"
            self.programs[program_id] = {
                "seed_index": batch.seed_index,
                "position": position,
                "ub_type": diff.program.ub_type.value,
                "generator": diff.program.generator,
                "fn_candidates": len(diff.fn_candidates),
                "wrong_reports": len(diff.wrong_report_candidates),
            }
            if self.root is not None:
                self._write_program(program_id, diff.program.source)
            for candidate in diff.fn_candidates:
                if self._add_crash(program_id, diff.program.ub_type.value,
                                   candidate.crash_site,
                                   candidate.missing.config):
                    new_buckets += 1
        return new_buckets

    def _add_crash(self, program_id: str, ub_type: str,
                   crash_site: Optional[tuple], missing_config) -> bool:
        site = f"{crash_site[0]}:{crash_site[1]}" if crash_site else "?"
        key: BucketKey = (ub_type, site, missing_config.sanitizer)
        bucket = self.buckets.get(key)
        is_new = bucket is None
        if bucket is None:
            bucket = CrashBucket(ub_type=ub_type, crash_site=site,
                                 sanitizer=missing_config.sanitizer)
            self.buckets[key] = bucket
        bucket.count += 1
        if program_id not in bucket.program_ids:
            bucket.program_ids.append(program_id)
        label = missing_config.label
        if label not in bucket.configs:
            bucket.configs.append(label)
        return is_new

    # -- queries ---------------------------------------------------------------

    @property
    def unique_crashes(self) -> int:
        return len(self.buckets)

    @property
    def total_crashes(self) -> int:
        return sum(bucket.count for bucket in self.buckets.values())

    def summary(self) -> dict:
        return {
            "programs": len(self.programs),
            "crashes": self.total_crashes,
            "unique_crashes": self.unique_crashes,
            "buckets": [bucket.to_json() for _, bucket in sorted(self.buckets.items())],
        }

    # -- persistence -----------------------------------------------------------

    def _index_path(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, self.INDEX_NAME)

    def _programs_dir(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, "programs")

    def _write_program(self, program_id: str, source: str) -> None:
        directory = self._programs_dir()
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, program_id + ".c"), "w",
                  encoding="utf-8") as handle:
            handle.write(source)

    def flush(self) -> None:
        """Write the JSON index (no-op for in-memory stores)."""
        if self.root is None:
            return
        index = {
            "programs": self.programs,
            "ingested_seeds": sorted(self._ingested_seeds),
            "buckets": [bucket.to_json() for _, bucket in sorted(self.buckets.items())],
        }
        atomic_write_json(self._index_path(), index)

    def _load(self) -> None:
        with open(self._index_path(), "r", encoding="utf-8") as handle:
            index = json.load(handle)
        self.programs = dict(index.get("programs", {}))
        self._ingested_seeds = set(index.get("ingested_seeds", []))
        self.buckets = {}
        for record in index.get("buckets", []):
            bucket = CrashBucket.from_json(record)
            self.buckets[bucket.key] = bucket
