"""Persistent corpus store and crash-deduplication index.

Long campaigns produce far more UB programs and raw discrepancies than
distinct bugs.  The corpus store keeps every tested program and buckets
every FN-bug candidate by ``(UB type, crash site, sanitizer)`` — the same
signature the paper's authors used to avoid re-triaging duplicates: two
candidates whose UB, mapped crash location and missing sanitizer all agree
almost always share a root cause.

Since the corpus-database refactor the store is a façade over
:class:`repro.corpusdb.FindingsDB`: programs (zlib-compressed,
content-addressed), buckets, surveyed outcome cells and reductions all
land in SQLite (``<root>/corpus.sqlite`` by default, or a shared
``db_path``), while the in-memory mirrors keep the original dict API that
the campaign, reduction wiring and tests consume.  ``flush()`` commits
only the *delta* accumulated since the previous flush — one ``BEGIN
IMMEDIATE`` transaction whose cost scales with new work, never with
corpus size — and ``finalize()`` writes the human-readable ``corpus.json``
summary once at the end of a run.  A legacy flat-JSON campaign directory
is migrated into the database transparently on first open.

Because the database outlives any one campaign, the store also answers
the cross-campaign question at ingestion time: a bucket whose signature
was first recorded by an *earlier* campaign is flagged as a recurrence
(``CrashBucket.first_seen``) instead of presenting as a new finding.

The store is an *observability* layer: it never influences which bugs the
campaign reports (that stays with the triager, so parallel and serial runs
match), but it answers "what did five months of fuzzing actually produce"
without replaying the campaign.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.crash_site import format_crash_site
from repro.core.fuzzer import SeedBatch
from repro.corpusdb import (
    CRASH_KIND,
    FindingsDB,
    crash_signature,
    migrate_campaign_dir,
    program_digest,
)
from repro.utils.io import atomic_write_json

logger = logging.getLogger(__name__)

#: A dedup bucket key: (ub_type value, crash site "line:col" or "?", sanitizer).
BucketKey = Tuple[str, str, str]


def bucket_key_for(candidate) -> BucketKey:
    """The dedup bucket key of one FN-bug candidate.

    The single definition shared by ingestion, per-bucket reduction and the
    examples — the three must agree or reduced reproducers would silently
    stop matching their buckets."""
    return (candidate.program.ub_type.value,
            format_crash_site(candidate.crash_site),
            candidate.missing.config.sanitizer)


def bucket_slug(key: BucketKey) -> str:
    """Filesystem-safe bucket name, e.g. ``divide-by-zero-7_3-ubsan``.

    Used both for ``reduced/<slug>.c`` filenames and for the labels shown
    in progress lines and the reduction-quality table, so a reported label
    always greps to its corpus file."""
    ub_type, site, sanitizer = key
    site = site.replace(":", "_").replace("?", "unknown")
    return f"{ub_type}-{site}-{sanitizer}"


def signature_for(key: BucketKey) -> str:
    """The database signature of one crash bucket key."""
    return crash_signature(*key)


@dataclass
class CrashBucket:
    """All FN-bug candidates sharing one (UB type, crash site, sanitizer)."""

    ub_type: str
    crash_site: str
    sanitizer: str
    count: int = 0
    program_ids: List[str] = field(default_factory=list)
    configs: List[str] = field(default_factory=list)
    #: Reduction stats (original/reduced token counts, predicate
    #: evaluations, wall-clock) once the bucket's representative program has
    #: been shrunk to a minimal reproducer.
    reduction: Optional[dict] = None
    #: Cross-campaign provenance: ``{"campaign": key, "at": timestamp}`` of
    #: the campaign that first recorded this signature, set when the bucket
    #: is a *recurrence* (first seen by an earlier campaign in the shared
    #: findings database); ``None`` for buckets this campaign opened.
    first_seen: Optional[dict] = None
    #: Auto-suppression: the responsible event id from the known-bug patch
    #: database when this signature was already attributed by a bisection —
    #: the bucket is ledgered (``corpus_suppressions``) instead of
    #: presenting as a new finding.  ``None`` for unattributed buckets.
    suppressed_by: Optional[str] = None

    @property
    def key(self) -> BucketKey:
        return (self.ub_type, self.crash_site, self.sanitizer)

    @property
    def slug(self) -> str:
        """Filesystem-safe bucket name (see :func:`bucket_slug`)."""
        return bucket_slug(self.key)

    @property
    def recurrence(self) -> bool:
        """True when an earlier campaign already recorded this signature."""
        return self.first_seen is not None

    def to_json(self) -> dict:
        record = {"ub_type": self.ub_type, "crash_site": self.crash_site,
                  "sanitizer": self.sanitizer, "count": self.count,
                  "program_ids": self.program_ids, "configs": self.configs}
        if self.reduction is not None:
            record["reduction"] = self.reduction
        if self.first_seen is not None:
            record["first_seen"] = self.first_seen
        if self.suppressed_by is not None:
            record["suppressed_by"] = self.suppressed_by
        return record

    @staticmethod
    def from_json(record: dict) -> "CrashBucket":
        return CrashBucket(ub_type=record["ub_type"],
                           crash_site=record["crash_site"],
                           sanitizer=record["sanitizer"],
                           count=record["count"],
                           program_ids=list(record["program_ids"]),
                           configs=list(record["configs"]),
                           reduction=record.get("reduction"),
                           first_seen=record.get("first_seen"),
                           suppressed_by=record.get("suppressed_by"))


def _outcome_status(outcome) -> str:
    """Classify one per-config outcome for its database cell."""
    if outcome.error is not None:
        return "compile-error"
    if outcome.result is None:
        return "error"
    return "detected" if outcome.detected else "silent"


class CorpusStore:
    """Stores tested programs and deduplicates their crashes.

    With ``root=None`` everything lives in an in-memory database; with a
    directory, program sources land under ``<root>/programs/``, the
    findings database at ``<root>/corpus.sqlite`` (or the shared
    ``db_path``, letting many campaigns accumulate into one file) and a
    summary index in ``<root>/corpus.json`` on :meth:`finalize`.
    ``ingest`` is idempotent per seed index, so re-running a resumed
    campaign over already-recorded seeds cannot double-count.
    """

    INDEX_NAME = "corpus.json"
    DB_NAME = "corpus.sqlite"

    def __init__(self, root: Optional[str] = None,
                 db_path: Optional[str] = None,
                 campaign_key: Optional[str] = None) -> None:
        self.root = str(root) if root is not None else None
        self.programs: Dict[str, dict] = {}
        self.buckets: Dict[BucketKey, CrashBucket] = {}
        self._ingested_seeds: set = set()
        #: Merged telemetry summary of the campaign that produced this
        #: corpus (deterministic metric totals + cache counters); written
        #: into the index by the orchestrator at the end of a traced run.
        self.telemetry: Optional[dict] = None
        #: Buckets this campaign opened that no earlier campaign in the
        #: shared database had recorded / had already recorded.
        self.new_global_buckets = 0
        self.recurrent_buckets = 0
        #: Buckets whose signature the known-bug patch database already
        #: attributes to a responsible event: reported once with a
        #: ``suppressed_by`` line, ledgered, never re-filed as new.
        self.suppressed_buckets = 0
        self._suppressed_hits: Dict[BucketKey, int] = {}
        #: Rows the most recent :meth:`flush` wrote — the figure the
        #: flush-cost benchmark gates on (O(delta), never O(corpus)).
        self.last_flush_ops = 0
        self._pending_seeds: List[int] = []
        self._pending_programs: List[dict] = []
        self._pending_hits: List[dict] = []
        self._pending_outcomes: List[dict] = []
        self._pending_reductions: List[dict] = []
        if db_path is None:
            db_path = (os.path.join(self.root, self.DB_NAME)
                       if self.root is not None else ":memory:")
        self.db_path = str(db_path)
        self.campaign_key = campaign_key or (
            os.path.abspath(self.root) if self.root is not None else "<memory>")
        self.db = FindingsDB(self.db_path)
        if (self.root is not None and os.path.exists(self._index_path())
                and self.db.campaign_id(self.campaign_key) is None):
            # A pre-database flat campaign directory: import it once, then
            # serve every later open from the database.
            migrate_campaign_dir(self.db, self.root, key=self.campaign_key)
        self.campaign_id = self.db.open_campaign(self.campaign_key,
                                                 root=self.root)
        #: The known-bug patch database's attributed signatures, loaded
        #: once at campaign start — the auto-suppression lookup.
        self._known_bugs = self.db.known_bug_index()
        self._load_from_db()

    def close(self) -> None:
        self.db.close()

    # -- ingestion -------------------------------------------------------------

    def ingest(self, batch: SeedBatch) -> int:
        """Record one seed batch; returns how many *new* crash buckets opened."""
        if batch.seed_index in self._ingested_seeds:
            return 0
        self._ingested_seeds.add(batch.seed_index)
        self._pending_seeds.append(batch.seed_index)
        new_buckets = 0
        for position, diff in enumerate(batch.diff_results):
            program_id = f"s{batch.seed_index:05d}-p{position:03d}"
            source = diff.program.source
            digest = program_digest(source)
            self.programs[program_id] = {
                "seed_index": batch.seed_index,
                "position": position,
                "ub_type": diff.program.ub_type.value,
                "generator": diff.program.generator,
                "fn_candidates": len(diff.fn_candidates),
                "wrong_reports": len(diff.wrong_report_candidates),
            }
            if self.root is not None:
                self._write_program(program_id, source)
            self._pending_programs.append({
                "program_id": program_id,
                "seed_index": batch.seed_index,
                "position": position,
                "source": source,
                "ub_type": diff.program.ub_type.value,
                "generator": diff.program.generator,
                "fn_candidates": len(diff.fn_candidates),
                "wrong_reports": len(diff.wrong_report_candidates),
            })
            # Every surveyed (program, config) cell becomes an outcome row —
            # the unit --resurvey skips on the next campaign.  Restored thin
            # batches have no outcomes (their cells were recorded when the
            # seed originally ran).
            for outcome in diff.outcomes:
                config = outcome.config
                self._pending_outcomes.append({
                    "program_digest": digest,
                    "compiler": config.compiler,
                    "version": "",
                    "pipeline": config.opt_level,
                    "sanitizer": config.sanitizer,
                    "status": _outcome_status(outcome),
                    "detail": outcome.error or "",
                })
            for candidate in diff.fn_candidates:
                key = bucket_key_for(candidate)
                if self._add_crash(program_id, key, candidate.missing.config):
                    new_buckets += 1
                self._pending_hits.append({
                    "kind": CRASH_KIND,
                    "signature": signature_for(key),
                    "subject": key[0],
                    "crash_site": key[1],
                    "sanitizer": key[2],
                    "slug": bucket_slug(key),
                    "program_id": program_id,
                    "program_digest": digest,
                    "config": candidate.missing.config.label,
                })
        return new_buckets

    def _add_crash(self, program_id: str, key: BucketKey,
                   missing_config) -> bool:
        ub_type, site, _ = key
        bucket = self.buckets.get(key)
        is_new = bucket is None
        if bucket is None:
            bucket = CrashBucket(ub_type=ub_type, crash_site=site,
                                 sanitizer=missing_config.sanitizer)
            known = self._known_bugs.get((CRASH_KIND, signature_for(key)))
            if known is not None:
                # Already attributed: report once with the responsible
                # event, ledger the sighting, never count it as a find.
                bucket.suppressed_by = known["responsible"]
                self.suppressed_buckets += 1
            bucket.first_seen = self._earlier_sighting(key)
            if bucket.suppressed_by is not None:
                pass
            elif bucket.first_seen is None:
                self.new_global_buckets += 1
            else:
                self.recurrent_buckets += 1
            self.buckets[key] = bucket
        if bucket.suppressed_by is not None:
            self._suppressed_hits[key] = self._suppressed_hits.get(key, 0) + 1
        bucket.count += 1
        if program_id not in bucket.program_ids:
            bucket.program_ids.append(program_id)
        label = missing_config.label
        if label not in bucket.configs:
            bucket.configs.append(label)
        return is_new

    def _earlier_sighting(self, key: BucketKey) -> Optional[dict]:
        """Cross-campaign dedup: did an earlier campaign record this
        signature?  Returns its provenance, or None for a fresh bucket."""
        row = self.db.find_bucket(CRASH_KIND, signature_for(key))
        if row is None or row["first_campaign"] == self.campaign_id:
            return None
        return {"campaign": row["first_campaign_key"],
                "at": row["first_seen_at"]}

    # -- reduction -------------------------------------------------------------

    def record_reduction(self, key: BucketKey, reduced_source: str,
                         stats: Optional[dict] = None) -> Optional[str]:
        """Attach a reduced reproducer to one crash bucket.

        Persistent stores write it as ``<root>/reduced/<bucket-slug>.c``
        next to the bucket's programs; the stats land in the bucket's index
        record either way, and the reduction persists into the findings
        database on the next flush.  Returns the written path (None in
        memory)."""
        bucket = self.buckets.get(key)
        if bucket is None:
            raise KeyError(f"no crash bucket {key!r}")
        bucket.reduction = dict(stats or {})
        self._pending_reductions.append({
            "kind": CRASH_KIND,
            "signature": signature_for(key),
            "source": reduced_source,
            "stats": dict(stats or {}),
        })
        if self.root is None:
            bucket.reduction.setdefault("source", reduced_source)
            return None
        directory = os.path.join(self.root, "reduced")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, bucket.slug + ".c")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(reduced_source)
        bucket.reduction.setdefault("path", os.path.join("reduced",
                                                         bucket.slug + ".c"))
        return path

    # -- queries ---------------------------------------------------------------

    @property
    def unique_crashes(self) -> int:
        return len(self.buckets)

    @property
    def total_crashes(self) -> int:
        return sum(bucket.count for bucket in self.buckets.values())

    def recorded_cells(self):
        """Every surveyed (program digest, compiler, version, pipeline,
        sanitizer) cell in the findings database — the ``--resurvey`` skip
        set, including cells other campaigns recorded."""
        return self.db.recorded_cells()

    def summary(self) -> dict:
        return {
            "programs": len(self.programs),
            "crashes": self.total_crashes,
            "unique_crashes": self.unique_crashes,
            "new_buckets": self.new_global_buckets,
            "recurrent_buckets": self.recurrent_buckets,
            "suppressed_buckets": self.suppressed_buckets,
            "buckets": [bucket.to_json() for _, bucket in sorted(self.buckets.items())],
        }

    def suppressions(self) -> List[dict]:
        """This campaign's suppression ledger lines, one per suppressed
        bucket: slug, responsible event and hit count."""
        lines = []
        for key, bucket in sorted(self.buckets.items()):
            if bucket.suppressed_by is None:
                continue
            lines.append({"slug": bucket.slug,
                          "suppressed_by": bucket.suppressed_by,
                          "hits": bucket.count})
        return lines

    # -- persistence -----------------------------------------------------------

    def _index_path(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, self.INDEX_NAME)

    def _programs_dir(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, "programs")

    def _write_program(self, program_id: str, source: str) -> None:
        directory = self._programs_dir()
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, program_id + ".c"), "w",
                  encoding="utf-8") as handle:
            handle.write(source)

    def flush(self) -> None:
        """Commit the delta accumulated since the last flush.

        One ``BEGIN IMMEDIATE`` transaction whose row count scales with the
        new seeds/programs/hits since the previous flush — never with how
        big the corpus already is."""
        self.last_flush_ops = self.db.ingest_delta(
            self.campaign_id,
            seeds=self._pending_seeds,
            programs=self._pending_programs,
            hits=self._pending_hits,
            outcomes=self._pending_outcomes,
            reductions=self._pending_reductions)
        if self._suppressed_hits:
            # Cumulative per-bucket counts; the DB keeps the max, so a
            # re-flushed delta after resume cannot double-count.
            self.db.record_suppressions(
                self.campaign_id,
                ({"kind": CRASH_KIND, "signature": signature_for(key),
                  "hits": hits}
                 for key, hits in self._suppressed_hits.items()))
        if self.last_flush_ops:
            logger.debug("flushed corpus delta to %s (%d rows)",
                         self.db_path, self.last_flush_ops)
        self._pending_seeds = []
        self._pending_programs = []
        self._pending_hits = []
        self._pending_outcomes = []
        self._pending_reductions = []

    def finalize(self) -> None:
        """Flush, then write the human-readable ``corpus.json`` summary.

        Called once at the end of a campaign (cheap relative to the run);
        the JSON index is a convenience view — the database is the source
        of truth."""
        self.flush()
        if self.root is None:
            return
        index = {
            "programs": self.programs,
            "ingested_seeds": sorted(self._ingested_seeds),
            "buckets": [bucket.to_json() for _, bucket in sorted(self.buckets.items())],
        }
        if self.telemetry is not None:
            index["telemetry"] = self.telemetry
        logger.debug("writing corpus index %s (%d programs, %d buckets)",
                     self._index_path(), len(self.programs), len(self.buckets))
        atomic_write_json(self._index_path(), index)

    def _load_from_db(self) -> None:
        """Rebuild the in-memory mirrors from this campaign's database rows."""
        for row in self.db.campaign_programs(self.campaign_id):
            self.programs[row["program_id"]] = {
                "seed_index": row["seed_index"],
                "position": row["position"],
                "ub_type": row["ub_type"],
                "generator": row["generator"],
                "fn_candidates": row["fn_candidates"],
                "wrong_reports": row["wrong_reports"],
            }
        self._ingested_seeds = set(self.db.ingested_seeds(self.campaign_id))
        counts = self._campaign_bucket_counts()
        for hit in self.db.campaign_hits(self.campaign_id):
            if hit["kind"] != CRASH_KIND:
                continue
            key = (hit["subject"], hit["crash_site"], hit["sanitizer"])
            bucket = self.buckets.get(key)
            if bucket is None:
                bucket = CrashBucket(ub_type=key[0], crash_site=key[1],
                                     sanitizer=key[2],
                                     count=counts.get(hit["bucket_id"], 0))
                known = self._known_bugs.get((CRASH_KIND, hit["signature"]))
                if known is not None:
                    bucket.suppressed_by = known["responsible"]
                    self.suppressed_buckets += 1
                if hit["first_campaign"] != self.campaign_id:
                    row = self.db.find_bucket(CRASH_KIND, hit["signature"])
                    bucket.first_seen = {
                        "campaign": row["first_campaign_key"],
                        "at": row["first_seen_at"]}
                self.buckets[key] = bucket
            if hit["program_id"] and hit["program_id"] not in bucket.program_ids:
                bucket.program_ids.append(hit["program_id"])
            if hit["config"] and hit["config"] not in bucket.configs:
                bucket.configs.append(hit["config"])
        for key, bucket in self.buckets.items():
            stored = self.db.reduction_for(CRASH_KIND, signature_for(key))
            if stored is None:
                continue
            bucket.reduction = dict(stored["stats"])
            if self.root is not None:
                bucket.reduction.setdefault(
                    "path", os.path.join("reduced", bucket.slug + ".c"))
            else:
                bucket.reduction.setdefault("source", stored["source"])

    def _campaign_bucket_counts(self) -> Dict[int, int]:
        rows = self.db.connection.execute(
            "SELECT bucket_id, hits FROM corpus_bucket_campaigns "
            "WHERE campaign_id = ?", (self.campaign_id,))
        return {row["bucket_id"]: row["hits"] for row in rows}
