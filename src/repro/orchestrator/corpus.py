"""Persistent corpus store and crash-deduplication index.

Long campaigns produce far more UB programs and raw discrepancies than
distinct bugs.  The corpus store keeps every tested program (optionally
persisted to disk as ``.c`` sources plus a JSON index) and buckets every
FN-bug candidate by ``(UB type, crash site, sanitizer)`` — the same
signature the paper's authors used to avoid re-triaging duplicates: two
candidates whose UB, mapped crash location and missing sanitizer all agree
almost always share a root cause.

The store is an *observability* layer: it never influences which bugs the
campaign reports (that stays with the triager, so parallel and serial runs
match), but it answers "what did five months of fuzzing actually produce"
without replaying the campaign.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.crash_site import format_crash_site
from repro.core.fuzzer import SeedBatch
from repro.utils.io import atomic_write_json

logger = logging.getLogger(__name__)

#: A dedup bucket key: (ub_type value, crash site "line:col" or "?", sanitizer).
BucketKey = Tuple[str, str, str]


def bucket_key_for(candidate) -> BucketKey:
    """The dedup bucket key of one FN-bug candidate.

    The single definition shared by ingestion, per-bucket reduction and the
    examples — the three must agree or reduced reproducers would silently
    stop matching their buckets."""
    return (candidate.program.ub_type.value,
            format_crash_site(candidate.crash_site),
            candidate.missing.config.sanitizer)


def bucket_slug(key: BucketKey) -> str:
    """Filesystem-safe bucket name, e.g. ``divide-by-zero-7_3-ubsan``.

    Used both for ``reduced/<slug>.c`` filenames and for the labels shown
    in progress lines and the reduction-quality table, so a reported label
    always greps to its corpus file."""
    ub_type, site, sanitizer = key
    site = site.replace(":", "_").replace("?", "unknown")
    return f"{ub_type}-{site}-{sanitizer}"


@dataclass
class CrashBucket:
    """All FN-bug candidates sharing one (UB type, crash site, sanitizer)."""

    ub_type: str
    crash_site: str
    sanitizer: str
    count: int = 0
    program_ids: List[str] = field(default_factory=list)
    configs: List[str] = field(default_factory=list)
    #: Reduction stats (original/reduced token counts, predicate
    #: evaluations, wall-clock) once the bucket's representative program has
    #: been shrunk to a minimal reproducer.
    reduction: Optional[dict] = None

    @property
    def key(self) -> BucketKey:
        return (self.ub_type, self.crash_site, self.sanitizer)

    @property
    def slug(self) -> str:
        """Filesystem-safe bucket name (see :func:`bucket_slug`)."""
        return bucket_slug(self.key)

    def to_json(self) -> dict:
        record = {"ub_type": self.ub_type, "crash_site": self.crash_site,
                  "sanitizer": self.sanitizer, "count": self.count,
                  "program_ids": self.program_ids, "configs": self.configs}
        if self.reduction is not None:
            record["reduction"] = self.reduction
        return record

    @staticmethod
    def from_json(record: dict) -> "CrashBucket":
        return CrashBucket(ub_type=record["ub_type"],
                           crash_site=record["crash_site"],
                           sanitizer=record["sanitizer"],
                           count=record["count"],
                           program_ids=list(record["program_ids"]),
                           configs=list(record["configs"]),
                           reduction=record.get("reduction"))


class CorpusStore:
    """Stores tested programs and deduplicates their crashes.

    With ``root=None`` everything lives in memory; with a directory, program
    sources land under ``<root>/programs/`` and the index (programs + crash
    buckets) in ``<root>/corpus.json``.  ``ingest`` is idempotent per seed
    index, so re-running a resumed campaign over already-recorded seeds
    cannot double-count.
    """

    INDEX_NAME = "corpus.json"

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = str(root) if root is not None else None
        self.programs: Dict[str, dict] = {}
        self.buckets: Dict[BucketKey, CrashBucket] = {}
        self._ingested_seeds: set = set()
        #: Merged telemetry summary of the campaign that produced this
        #: corpus (deterministic metric totals + cache counters); written
        #: into the index by the orchestrator at the end of a traced run.
        self.telemetry: Optional[dict] = None
        if self.root is not None and os.path.exists(self._index_path()):
            self._load()

    # -- ingestion -------------------------------------------------------------

    def ingest(self, batch: SeedBatch) -> int:
        """Record one seed batch; returns how many *new* crash buckets opened."""
        if batch.seed_index in self._ingested_seeds:
            return 0
        self._ingested_seeds.add(batch.seed_index)
        new_buckets = 0
        for position, diff in enumerate(batch.diff_results):
            program_id = f"s{batch.seed_index:05d}-p{position:03d}"
            self.programs[program_id] = {
                "seed_index": batch.seed_index,
                "position": position,
                "ub_type": diff.program.ub_type.value,
                "generator": diff.program.generator,
                "fn_candidates": len(diff.fn_candidates),
                "wrong_reports": len(diff.wrong_report_candidates),
            }
            if self.root is not None:
                self._write_program(program_id, diff.program.source)
            for candidate in diff.fn_candidates:
                if self._add_crash(program_id, bucket_key_for(candidate),
                                   candidate.missing.config):
                    new_buckets += 1
        return new_buckets

    def _add_crash(self, program_id: str, key: BucketKey,
                   missing_config) -> bool:
        ub_type, site, _ = key
        bucket = self.buckets.get(key)
        is_new = bucket is None
        if bucket is None:
            bucket = CrashBucket(ub_type=ub_type, crash_site=site,
                                 sanitizer=missing_config.sanitizer)
            self.buckets[key] = bucket
        bucket.count += 1
        if program_id not in bucket.program_ids:
            bucket.program_ids.append(program_id)
        label = missing_config.label
        if label not in bucket.configs:
            bucket.configs.append(label)
        return is_new

    # -- reduction -------------------------------------------------------------

    def record_reduction(self, key: BucketKey, reduced_source: str,
                         stats: Optional[dict] = None) -> Optional[str]:
        """Attach a reduced reproducer to one crash bucket.

        Persistent stores write it as ``<root>/reduced/<bucket-slug>.c``
        next to the bucket's programs; the stats land in the bucket's index
        record either way.  Returns the written path (None in memory)."""
        bucket = self.buckets.get(key)
        if bucket is None:
            raise KeyError(f"no crash bucket {key!r}")
        bucket.reduction = dict(stats or {})
        if self.root is None:
            bucket.reduction.setdefault("source", reduced_source)
            return None
        directory = os.path.join(self.root, "reduced")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, bucket.slug + ".c")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(reduced_source)
        bucket.reduction.setdefault("path", os.path.join("reduced",
                                                         bucket.slug + ".c"))
        return path

    # -- queries ---------------------------------------------------------------

    @property
    def unique_crashes(self) -> int:
        return len(self.buckets)

    @property
    def total_crashes(self) -> int:
        return sum(bucket.count for bucket in self.buckets.values())

    def summary(self) -> dict:
        return {
            "programs": len(self.programs),
            "crashes": self.total_crashes,
            "unique_crashes": self.unique_crashes,
            "buckets": [bucket.to_json() for _, bucket in sorted(self.buckets.items())],
        }

    # -- persistence -----------------------------------------------------------

    def _index_path(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, self.INDEX_NAME)

    def _programs_dir(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, "programs")

    def _write_program(self, program_id: str, source: str) -> None:
        directory = self._programs_dir()
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, program_id + ".c"), "w",
                  encoding="utf-8") as handle:
            handle.write(source)

    def flush(self) -> None:
        """Write the JSON index (no-op for in-memory stores)."""
        if self.root is None:
            return
        index = {
            "programs": self.programs,
            "ingested_seeds": sorted(self._ingested_seeds),
            "buckets": [bucket.to_json() for _, bucket in sorted(self.buckets.items())],
        }
        if self.telemetry is not None:
            index["telemetry"] = self.telemetry
        logger.debug("flushing corpus index %s (%d programs, %d buckets)",
                     self._index_path(), len(self.programs), len(self.buckets))
        atomic_write_json(self._index_path(), index)

    def _load(self) -> None:
        with open(self._index_path(), "r", encoding="utf-8") as handle:
            index = json.load(handle)
        self.programs = dict(index.get("programs", {}))
        self._ingested_seeds = set(index.get("ingested_seeds", []))
        self.telemetry = index.get("telemetry")
        self.buckets = {}
        for record in index.get("buckets", []):
            bucket = CrashBucket.from_json(record)
            self.buckets[bucket.key] = bucket
