"""JSON-stable records for checkpointing campaign state.

A :class:`~repro.core.fuzzer.SeedBatch` carries full
:class:`~repro.core.differential.DifferentialResult` objects, which are too
heavy (per-config execution traces) to snapshot.  This module flattens a
batch into plain JSON data holding exactly what the campaign's *finalization*
needs — per-type generation counts, per-program discrepancy counters and the
candidate fields consumed by representative selection and triage — and
rebuilds "thin" batches from those records on resume.

Thin batches reproduce the exact same deduplicated bug reports and campaign
stats as the originals; only the raw per-configuration outcomes (used by the
RQ3 oracle-accuracy analysis) are absent, since they never survive a
checkpoint round-trip.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Dict, List, Optional

from repro.cdsl.source import SourceLocation
from repro.core.crash_site import OracleVerdict
from repro.core.differential import (
    ConfigOutcome,
    DifferentialResult,
    FNBugCandidate,
    TestConfig,
    WrongReportCandidate,
)
from repro.core.fuzzer import CampaignConfig, SeedBatch
from repro.core.insertion import UBProgram
from repro.core.ub_types import UBType
from repro.vm.errors import ExecutionResult, SanitizerReport

RECORD_VERSION = 1


# ---------------------------------------------------------------------------
# Config fingerprinting
# ---------------------------------------------------------------------------

def _freeze(value):
    """Reduce a config value to stable, JSON-serializable data.

    Callables are identified by qualified name (never ``repr``, whose memory
    addresses change between runs); dataclasses — e.g. seeded
    :class:`~repro.sanitizers.defects.Defect` objects — are frozen field by
    field so two registries differing in *any* field fingerprint apart.
    """
    if isinstance(value, Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _freeze(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if callable(value):
        # Qualname alone collides for e.g. two lambdas born in one scope;
        # the bytecode digest and source position keep them apart while
        # staying stable across processes (unlike repr's memory address).
        name = getattr(value, "__qualname__", value.__class__.__name__)
        code = getattr(value, "__code__", None)
        if code is None:
            return name
        digest = hashlib.sha256(code.co_code).hexdigest()[:12]
        return f"{name}@{code.co_firstlineno}:{digest}"
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_freeze(item) for item in value]
        return sorted(items, key=repr) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, dict):
        return {str(key): _freeze(val) for key, val in sorted(value.items())}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def config_fingerprint(config: CampaignConfig) -> str:
    """A stable digest of *every* campaign knob.

    The payload is derived from ``dataclasses.fields`` so a future
    :class:`CampaignConfig` field is automatically part of the key — the
    cache and the checkpoint can never silently ignore a knob.  Used both to
    key the analysis-layer campaign cache and to refuse resuming a
    checkpoint against a different configuration.
    """
    payload = {field.name: _freeze(getattr(config, field.name))
               for field in dataclasses.fields(config)}
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()
    return digest[:16]


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _program_record(program: UBProgram) -> dict:
    return {
        "source": program.source,
        "ub_type": program.ub_type.value,
        "seed_index": program.seed_index,
        "generator": program.generator,
        "description": program.description,
    }


def _config_record(config: TestConfig) -> dict:
    return {"compiler": config.compiler, "sanitizer": config.sanitizer,
            "opt_level": config.opt_level}


def _fn_record(candidate: FNBugCandidate) -> dict:
    report = (candidate.detecting.result.report
              if candidate.detecting.result is not None else None)
    return {
        "missing": _config_record(candidate.missing.config),
        "detecting": _config_record(candidate.detecting.config),
        "detecting_kind": report.kind if report is not None else None,
        "detecting_sanitizer": report.sanitizer if report is not None else None,
        "crash_site": list(candidate.crash_site) if candidate.crash_site else None,
        "reason": candidate.verdict.reason,
    }


def _wrong_record(candidate: WrongReportCandidate) -> dict:
    return {
        "first": _config_record(candidate.first.config),
        "second": _config_record(candidate.second.config),
        "difference": candidate.difference,
    }


def batch_to_record(batch: SeedBatch) -> dict:
    """Flatten one seed batch into a JSON-serializable record."""
    diffs: List[dict] = []
    for diff in batch.diff_results:
        diffs.append({
            "program": _program_record(diff.program),
            "optimization_discrepancies": diff.optimization_discrepancies,
            "fn_candidates": [_fn_record(c) for c in diff.fn_candidates],
            "wrong_reports": [_wrong_record(c) for c in diff.wrong_report_candidates],
        })
    return {
        "seed_index": batch.seed_index,
        "generated": batch.generated,
        "duration_seconds": batch.duration_seconds,
        "programs_generated": {ub.value: count
                               for ub, count in batch.programs_generated.items()},
        "surveyed_cells": batch.surveyed_cells,
        "skipped_cells": batch.skipped_cells,
        "diffs": diffs,
    }


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------

def _program_from(record: dict) -> UBProgram:
    return UBProgram(source=record["source"], ub_type=UBType(record["ub_type"]),
                     seed_index=record["seed_index"],
                     generator=record["generator"],
                     description=record["description"])


def _config_from(record: dict) -> TestConfig:
    return TestConfig(compiler=record["compiler"], sanitizer=record["sanitizer"],
                      opt_level=record["opt_level"])


def _fn_from(record: dict, program: UBProgram) -> FNBugCandidate:
    detecting_result: Optional[ExecutionResult] = None
    if record["detecting_kind"] is not None:
        report = SanitizerReport(sanitizer=record["detecting_sanitizer"] or "",
                                 kind=record["detecting_kind"],
                                 location=SourceLocation())
        detecting_result = ExecutionResult(status="sanitizer_report",
                                           report=report)
    crash_site = tuple(record["crash_site"]) if record["crash_site"] else None
    return FNBugCandidate(
        program=program,
        detecting=ConfigOutcome(_config_from(record["detecting"]),
                                detecting_result),
        missing=ConfigOutcome(_config_from(record["missing"]), None),
        verdict=OracleVerdict(is_bug=True, crash_site=crash_site,
                              reason=record["reason"]))


def _wrong_from(record: dict, program: UBProgram) -> WrongReportCandidate:
    return WrongReportCandidate(
        program=program,
        first=ConfigOutcome(_config_from(record["first"]), None),
        second=ConfigOutcome(_config_from(record["second"]), None),
        difference=record["difference"])


def batch_from_record(record: dict) -> SeedBatch:
    """Rebuild a (thin) seed batch from a checkpoint record."""
    diff_results: List[DifferentialResult] = []
    for diff in record["diffs"]:
        program = _program_from(diff["program"])
        diff_results.append(DifferentialResult(
            program=program,
            outcomes=[],
            fn_candidates=[_fn_from(c, program) for c in diff["fn_candidates"]],
            wrong_report_candidates=[_wrong_from(c, program)
                                     for c in diff["wrong_reports"]],
            optimization_discrepancies=diff["optimization_discrepancies"]))
    programs_generated: Dict[UBType, int] = {
        UBType(value): count
        for value, count in record["programs_generated"].items()}
    return SeedBatch(seed_index=record["seed_index"],
                     generated=record["generated"],
                     programs_generated=programs_generated,
                     diff_results=diff_results,
                     duration_seconds=record["duration_seconds"],
                     # .get: records written before the resurvey fields
                     # existed load as plain full surveys.
                     surveyed_cells=record.get("surveyed_cells", 0),
                     skipped_cells=record.get("skipped_cells", 0))
