"""Pluggable campaign executors: serial in-process or a multiprocessing pool.

An executor maps seed indices to :class:`~repro.core.fuzzer.SeedBatch`
objects and yields them **in submission order**, so the campaign's merge
step (:meth:`repro.core.fuzzer.FuzzingCampaign.collect`) sees the exact
sequence a serial run would have produced regardless of which process
finished first.
"""

from __future__ import annotations

import logging
import multiprocessing
from typing import Iterable, Iterator, Optional, Sequence

from repro.core.fuzzer import SeedBatch
from repro.orchestrator.worker import (
    campaign_for_config,
    initialize_worker,
    run_seed_in_worker,
)
from repro.telemetry import runtime as telemetry

logger = logging.getLogger(__name__)


class Executor:
    """Maps seed indices to batches, preserving submission order.

    *config* may be a fuzzing :class:`~repro.core.fuzzer.CampaignConfig`
    or a :class:`~repro.markers.engine.MarkerCampaignConfig`; the campaign
    kind is selected by :func:`repro.orchestrator.worker.campaign_for_config`.
    """

    def map_seeds(self, config, seed_indices: Sequence[int],
                  survey_skip: frozenset = frozenset()) -> Iterator[SeedBatch]:
        """Yield one batch per seed index, in order.

        *survey_skip* (``--resurvey``) holds already-recorded outcome cells
        to skip; fuzzing campaigns receive it, marker campaigns ignore it."""
        raise NotImplementedError

    @property
    def workers(self) -> int:
        return 1


class SerialExecutor(Executor):
    """Runs every seed work-item lazily in the calling process.

    The reference executor: :class:`PoolExecutor` must merge to exactly the
    campaign this one produces for the same config.
    """

    def map_seeds(self, config, seed_indices: Sequence[int],
                  survey_skip: frozenset = frozenset()) -> Iterator[SeedBatch]:
        campaign = campaign_for_config(config)
        if survey_skip and hasattr(campaign, "survey_skip"):
            campaign.survey_skip = frozenset(survey_skip)
        for seed_index in seed_indices:
            yield campaign.run_seed(seed_index)


class PoolExecutor(Executor):
    """Shards seeds across a :mod:`multiprocessing` worker pool.

    Results are consumed through ``imap`` with ``chunksize=1``: seeds are
    handed out round-robin as workers free up, but yielded back in seed
    order, which keeps the merged campaign deterministic.  The ``fork``
    start method is preferred (cheap, and defect registries containing
    callables need no pickling); platforms without it fall back to their
    default method.
    """

    def __init__(self, workers: int = 2,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)

    @property
    def workers(self) -> int:
        return self._workers

    def map_seeds(self, config, seed_indices: Sequence[int],
                  survey_skip: frozenset = frozenset()) -> Iterator[SeedBatch]:
        seed_indices = list(seed_indices)
        if not seed_indices:
            return
        processes = min(self._workers, len(seed_indices))
        logger.debug("starting pool of %d workers for %d seeds",
                     processes, len(seed_indices))
        # Telemetry enablement travels by value (never by inherited state):
        # workers re-enable from these flags and ship results back in the
        # batch payloads.
        pool = self._context.Pool(processes=processes,
                                  initializer=initialize_worker,
                                  initargs=(config, telemetry.worker_flags(),
                                            survey_skip))
        try:
            for batch in pool.imap(run_seed_in_worker, seed_indices, chunksize=1):
                yield batch
        finally:
            # terminate() rather than close(): when the consumer stops early
            # (max_programs_total reached, session cap), pending work-items
            # are abandoned, not drained.
            pool.terminate()
            pool.join()


def make_executor(workers: int = 1) -> Executor:
    """``workers <= 1`` → serial; otherwise a pool of that many processes."""
    if workers <= 1:
        return SerialExecutor()
    return PoolExecutor(workers=workers)
