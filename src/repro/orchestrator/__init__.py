"""Parallel campaign orchestration: sharded execution, corpus, checkpointing.

This package scales the serial fuzzing loop of :mod:`repro.core.fuzzer` to
many cores without giving up reproducibility:

* :mod:`repro.orchestrator.executor`   — serial / multiprocessing executors;
* :mod:`repro.orchestrator.campaign`   — :class:`OrchestratedCampaign`;
* :mod:`repro.orchestrator.corpus`     — corpus store + crash dedup index;
* :mod:`repro.orchestrator.checkpoint` — JSON checkpoint/resume;
* :mod:`repro.orchestrator.stats`      — live throughput/ETA monitoring;
* :mod:`repro.orchestrator.cli`        — ``python -m repro.orchestrator``.

The invariant the whole package is built around: a seed work-item's output
is a pure function of ``(CampaignConfig, seed_index)``, so any sharding of
work-items over any number of processes merges into the same campaign.
"""

from repro.orchestrator.campaign import OrchestratedCampaign
from repro.orchestrator.checkpoint import CampaignCheckpoint, CheckpointMismatch
from repro.orchestrator.corpus import CorpusStore, CrashBucket, bucket_key_for
from repro.orchestrator.executor import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.orchestrator.records import (
    batch_from_record,
    batch_to_record,
    config_fingerprint,
)
from repro.orchestrator.stats import ThroughputMonitor, ThroughputSnapshot

__all__ = [
    "OrchestratedCampaign",
    "CampaignCheckpoint", "CheckpointMismatch",
    "CorpusStore", "CrashBucket", "bucket_key_for",
    "Executor", "PoolExecutor", "SerialExecutor", "make_executor",
    "batch_from_record", "batch_to_record", "config_fingerprint",
    "ThroughputMonitor", "ThroughputSnapshot",
]
