"""The campaign orchestrator: sharded execution with checkpoint/resume.

:class:`OrchestratedCampaign` wraps a :class:`~repro.core.fuzzer.FuzzingCampaign`
with the production machinery the serial loop lacks:

* **sharded execution** — seed work-items run on a pluggable executor
  (serial or a ``multiprocessing`` pool); per-seed RNG derivation makes the
  merged result bit-identical to a serial run;
* **checkpoint/resume** — completed seeds are snapshotted to JSON after every
  batch, so a killed campaign resumes from where it stopped and finishes with
  the same deduplicated bug reports as an uninterrupted one;
* **corpus store + crash dedup** — every tested program and every FN-bug
  candidate is recorded, bucketed by (UB type, crash site, sanitizer);
* **crash reduction** — with ``reduce=True`` each dedup bucket's
  representative program is shrunk to a minimal reproducer after the merge
  (``reduce_jobs`` fans candidate evaluation out over processes) and the
  result is persisted as ``reduced/<bucket>.c`` in the corpus; resumed
  campaigns restore already-reduced buckets instead of re-reducing them.
  (The separate triage-time knob ``CampaignConfig.reduce`` shrinks every
  candidate before defect bisection — see its docstring.);
* **live stats** — throughput and ETA stream through a
  :class:`~repro.orchestrator.stats.ThroughputMonitor`.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.core.fuzzer import (
    CampaignConfig,
    CampaignResult,
    FuzzingCampaign,
    SeedBatch,
)
from repro.orchestrator.checkpoint import CampaignCheckpoint
from repro.orchestrator.corpus import (
    BucketKey,
    CorpusStore,
    bucket_key_for,
    bucket_slug,
)
from repro.orchestrator.executor import Executor, make_executor
from repro.orchestrator.records import config_fingerprint
from repro.orchestrator.stats import ThroughputMonitor
from repro.reduction import ReductionRecord, record_for, reduce_fn_candidate
from repro.telemetry import runtime as telemetry
from repro.telemetry.monitor import HealthMonitor
from repro.telemetry.profile import telemetry_paths
from repro.utils.io import atomic_write_json

logger = logging.getLogger(__name__)


class OrchestratedCampaign:
    """Runs a fuzzing or marker campaign through the orchestration engine.

    ``workers=1`` (the default) runs serially in-process; ``workers=N``
    shards seeds across N worker processes.  Either way the deduplicated
    bug reports are identical for the same config and ``rng_seed``.

    Passing a :class:`~repro.markers.engine.MarkerCampaignConfig` selects
    **marker mode** (the CLI's ``--mode markers``): the same executor
    shards marked-program surveys, the same monitor streams progress, and
    ``reduce=True`` shrinks one representative finding per dedup bucket via
    :func:`repro.reduction.reduce_marker_finding`.  Checkpoint/corpus
    storage is fuzzing-specific and rejected in marker mode.
    """

    def __init__(self, config: Optional[CampaignConfig] = None,
                 workers: int = 1,
                 executor: Optional[Executor] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_interval: int = 1,
                 corpus: Union[CorpusStore, str, None] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 max_seeds_per_session: Optional[int] = None,
                 reduce: bool = False,
                 reduce_jobs: int = 1,
                 trace: bool = False,
                 db_path: Optional[str] = None,
                 resurvey: bool = False,
                 health_monitor: Optional[HealthMonitor] = None) -> None:
        self.config = config if config is not None else CampaignConfig()
        if not isinstance(self.config, CampaignConfig):
            if checkpoint_path is not None or corpus is not None:
                raise ValueError(
                    "checkpoint/corpus storage is only supported for "
                    "fuzzing campaigns, not marker campaigns")
            if max_seeds_per_session is not None:
                raise ValueError(
                    "max_seeds_per_session requires checkpoint/resume, "
                    "which marker campaigns do not support — a capped run "
                    "would silently return a partial result")
            if resurvey:
                raise ValueError(
                    "resurvey applies to fuzzing campaigns; marker "
                    "campaigns dedupe by bucket signature instead")
        self.executor = executor if executor is not None else make_executor(workers)
        self.checkpoint = (CampaignCheckpoint(checkpoint_path, self.config,
                                              flush_interval=checkpoint_interval)
                           if checkpoint_path is not None else None)
        if isinstance(corpus, (str, bytes)):
            # A shared --db file also hosts the findings tables, so two
            # campaigns over different corpus dirs dedupe against each
            # other; without one the store keeps a per-corpus database.
            corpus = CorpusStore(root=corpus, db_path=db_path)
        self.corpus = corpus
        self.progress = progress
        self.max_seeds_per_session = max_seeds_per_session
        self.reduce = reduce
        self.reduce_jobs = reduce_jobs
        self.trace = trace
        if trace and (self.corpus is None or self.corpus.root is None):
            raise ValueError(
                "trace=True requires a persistent corpus (corpus=<dir>) to "
                "hold telemetry/trace.jsonl")
        self.db_path = db_path
        if (db_path is not None and isinstance(self.config, CampaignConfig)
                and (self.corpus is None or self.corpus.root is None)):
            raise ValueError(
                "db_path requires a persistent corpus (corpus=<dir>): "
                "store ingestion reads the telemetry the corpus persists")
        self.resurvey = resurvey
        if resurvey and self.corpus is None:
            raise ValueError(
                "resurvey needs a corpus store: the skip set is the "
                "findings database's recorded outcome cells")
        #: Resurvey accounting over freshly executed batches (run()).
        self.surveyed_cells = 0
        self.skipped_cells = 0
        self._survey_skip: frozenset = frozenset()
        #: Populated by run(); exposes live throughput/ETA while running.
        self.monitor: Optional[ThroughputMonitor] = None
        #: Stall/straggler detection over freshly executed batches; the
        #: summary lands in checkpoint metadata and the corpus index.
        self.health = (health_monitor if health_monitor is not None
                       else HealthMonitor())
        #: Run id assigned by the telemetry store when ``db_path`` is set.
        self.db_run_id: Optional[int] = None
        #: Seed indices restored from the checkpoint on the last run().
        self.resumed_indices: list[int] = []
        #: Per-bucket reduction records from the last run() (``reduce=True``).
        self.reductions: List[ReductionRecord] = []
        #: Merged telemetry summary of the last run(): deterministic metric
        #: totals plus the compilation-cache hit/miss/eviction counters.
        self.telemetry_summary: Optional[dict] = None
        #: Marker-mode suppression ledger rows from the last run(): buckets
        #: the known-bug patch database already attributes (``--db`` only).
        self.marker_suppressions: List[dict] = []

    # -- public ----------------------------------------------------------------

    def run(self):
        """Execute (or resume) the campaign and return the merged result.

        Returns a :class:`~repro.core.fuzzer.CampaignResult` (fuzzing
        config) or a :class:`~repro.markers.engine.MarkerCampaignResult`
        (marker config).

        Metrics are collected for every orchestrated run (the overhead is a
        handful of counter bumps per compile); ``trace=True`` additionally
        records spans to ``<corpus>/telemetry/trace.jsonl``.  An already
        active :func:`repro.telemetry.enable` session is reused (and left
        open) instead."""
        session, owned = self._begin_telemetry()
        try:
            self._emit_campaign_start()
            with telemetry.span("campaign", workers=self.executor.workers,
                                seeds=self.config.num_seeds):
                if isinstance(self.config, CampaignConfig):
                    result = self._run_fuzzing()
                else:
                    result = self._run_markers()
            self._finish_telemetry(session)
            self._ingest_into_store()
            return result
        finally:
            if owned:
                telemetry.disable()

    def _run_fuzzing(self) -> CampaignResult:
        campaign = FuzzingCampaign(self.config)
        completed: Dict[int, SeedBatch] = (self.checkpoint.load()
                                           if self.checkpoint is not None else {})
        self.resumed_indices = sorted(completed)
        pending = [index for index in range(self.config.num_seeds)
                   if index not in completed]
        if self.max_seeds_per_session is not None:
            pending = pending[:self.max_seeds_per_session]
        self._survey_skip = frozenset()
        if self.resurvey:
            self._survey_skip = frozenset(self.corpus.recorded_cells())
            logger.info("resurvey: %d recorded outcome cells eligible to "
                        "skip", len(self._survey_skip))
        logger.info("campaign start: %d seeds (%d restored), %d workers",
                    self.config.num_seeds, len(completed),
                    self.executor.workers)
        self.monitor = ThroughputMonitor(self.config.num_seeds, emit=self.progress)
        self.monitor.start()
        self.health.start()
        result = campaign.collect(self._merged_batches(completed, pending))
        if self.reduce:
            self.reductions = self._reduce_buckets(campaign, result)
            if self.corpus is not None:
                self.corpus.flush()
        logger.info("campaign finished: %d seeds, %d programs, %d reports "
                    "in %.1fs", result.stats.seeds_used,
                    result.stats.programs_tested, len(result.bug_reports),
                    result.stats.duration_seconds)
        return result

    # -- telemetry lifecycle ----------------------------------------------------

    def _emit_campaign_start(self) -> None:
        """Write a start-of-campaign meta event into the trace stream.

        The `watch` subcommand reads it for seed totals / worker count /
        wall-clock anchor — span events alone cannot provide those until
        the campaign *finishes* (the campaign span closes last)."""
        active = telemetry.tracer()
        if active is None:
            return
        active.emit({"ev": "campaign_start", "seeds": self.config.num_seeds,
                     "workers": self.executor.workers, "time": time.time()})

    def _begin_telemetry(self):
        """Install (or adopt) the telemetry session for this run.

        Returns ``(session, owned)``; an externally enabled session is
        adopted and never torn down here."""
        existing = telemetry.current()
        if existing is not None:
            return existing, False
        trace_path = None
        if self.trace:
            trace_path = telemetry_paths(self.corpus.root)[0]
        session = telemetry.enable(campaign=config_fingerprint(self.config),
                                   tracing=self.trace, trace_path=trace_path)
        return session, True

    def _finish_telemetry(self, session) -> None:
        """Summarize merged metrics; persist them with the campaign state."""
        if session is None:
            return
        registry = session.metrics
        summary = {
            "campaign": session.campaign,
            "totals": registry.deterministic_totals(),
            "cache": {
                "hits": registry.counter_value("cache.hits"),
                "misses": registry.counter_value("cache.misses"),
                "evictions": registry.counter_value("cache.evictions"),
            },
            "health": self.health.summary(),
        }
        self.telemetry_summary = summary
        if self.checkpoint is not None:
            self.checkpoint.set_metadata({"telemetry": summary})
            self.checkpoint.flush()
        if isinstance(self.config, CampaignConfig) and self.corpus is not None:
            self.corpus.telemetry = summary
            if self.corpus.root is not None:
                metrics_path = telemetry_paths(self.corpus.root)[1]
                atomic_write_json(metrics_path, {
                    "version": 1,
                    "campaign": session.campaign,
                    "metrics": registry.to_json(),
                })
            # End of run: commit the remaining delta and write the
            # human-readable corpus.json summary next to the database.
            self.corpus.finalize()

    def _ingest_into_store(self) -> None:
        """Auto-ingest the finished campaign into the telemetry store.

        Fuzzing-only: marker campaigns persist their findings straight into
        the findings database (:meth:`_run_markers`) and keep no corpus
        directory for the telemetry store to read."""
        if self.db_path is None or self.corpus is None:
            return
        from repro.telemetry.store import TelemetryStore
        with TelemetryStore(self.db_path) as store:
            self.db_run_id = store.ingest_campaign(self.corpus.root)
        logger.info("campaign ingested into %s as run %s", self.db_path,
                    self.db_run_id)

    # -- marker mode ------------------------------------------------------------

    def _run_markers(self):
        """Shard a marker campaign over the executor and merge the result."""
        from repro.markers.engine import MarkerEngine
        from repro.reduction import marker_record_for, reduce_marker_finding

        engine = MarkerEngine(self.config)
        pending = list(range(self.config.num_seeds))
        self.monitor = ThroughputMonitor(self.config.num_seeds,
                                         emit=self.progress)
        self.monitor.start()
        self.health.start()

        def batches():
            fresh = iter(self.executor.map_seeds(self.config, pending))
            try:
                for batch in fresh:
                    self.monitor.observe(batch)
                    self.health.observe(batch.duration_seconds)
                    yield batch
            finally:
                if hasattr(fresh, "close"):
                    fresh.close()

        result = engine.collect(batches())
        if self.reduce:
            self.reductions = []
            for bucket in result.buckets.values():
                reduced, reduction = reduce_marker_finding(
                    bucket.representative, cache=engine.oracle.cache,
                    jobs=self.reduce_jobs, vm=self.config.vm)
                record = marker_record_for(reduced, reduction)
                bucket.representative = reduced
                self.reductions.append(record)
                if self.progress is not None:
                    self.progress(f"reduced {record.label}: "
                                  f"{record.original_tokens} -> "
                                  f"{record.reduced_tokens} tokens "
                                  f"({record.token_reduction:.0%})")
        if self.db_path is not None:
            # Marker findings persist into the findings database directly
            # (the corpus store is crash-specific); re-ingesting the same
            # campaign fingerprint and findings is idempotent.
            from repro.corpusdb import FindingsDB
            fingerprint = config_fingerprint(self.config)
            with FindingsDB(self.db_path) as db:
                campaign_id = db.ingest_marker_result(
                    f"markers-{fingerprint}", result,
                    fingerprint=fingerprint)
                # Buckets the known-bug patch database already attributes
                # were ledgered by the ingest; surface them in the summary.
                self.marker_suppressions = db.suppression_ledger(campaign_id)
            logger.info("marker findings ingested into %s", self.db_path)
        return result

    # -- internals --------------------------------------------------------------

    def _reduce_buckets(self, campaign: FuzzingCampaign,
                        result: CampaignResult) -> List[ReductionRecord]:
        """Shrink one representative FN candidate per dedup bucket.

        Candidates are visited in campaign order, so the representative of
        each (UB type, crash site, sanitizer) bucket — and with it the
        reduced reproducer — is identical for serial and parallel runs.
        The campaign's own differential tester (and compilation cache)
        evaluates candidates when ``reduce_jobs == 1``; pool workers build
        their own caches.  Buckets whose corpus record already carries a
        reduction (a resumed or session-batched campaign) are restored, not
        re-reduced — reduction is the dominant per-bucket cost.
        """
        records: List[ReductionRecord] = []
        seen: set = set()
        for candidate in result.fn_candidates:
            key: BucketKey = bucket_key_for(candidate)
            if key in seen:
                continue
            seen.add(key)
            restored = self._restored_reduction(key)
            if restored is not None:
                records.append(restored)
                continue
            reduced, reduction = reduce_fn_candidate(candidate,
                                                     tester=campaign.tester,
                                                     jobs=self.reduce_jobs)
            record = record_for(bucket_slug(key), candidate, reduction)
            records.append(record)
            if self.corpus is not None and key in self.corpus.buckets:
                self.corpus.record_reduction(key, reduction.reduced_source,
                                             stats=record.to_json())
            if self.progress is not None:
                self.progress(f"reduced {record.label}: "
                              f"{record.original_tokens} -> "
                              f"{record.reduced_tokens} tokens "
                              f"({record.token_reduction:.0%})")
        return records

    def _restored_reduction(self, key: BucketKey) -> Optional[ReductionRecord]:
        """Rebuild the record of an already-reduced bucket from the corpus."""
        if self.corpus is None:
            return None
        bucket = self.corpus.buckets.get(key)
        if bucket is None or not bucket.reduction:
            return None
        stats = bucket.reduction
        source = stats.get("source")
        if source is None and self.corpus.root is not None \
                and stats.get("path"):
            try:
                with open(os.path.join(self.corpus.root, stats["path"]),
                          encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                return None
        try:
            return ReductionRecord(
                label=stats.get("label", bucket.slug),
                ub_type=bucket.ub_type, crash_site=bucket.crash_site,
                sanitizer=bucket.sanitizer,
                original_tokens=stats["original_tokens"],
                reduced_tokens=stats["reduced_tokens"],
                predicate_evaluations=stats["predicate_evaluations"],
                duration_seconds=stats["duration_seconds"],
                reduced_source=source if source is not None else "")
        except KeyError:
            return None

    def _merged_batches(self, completed: Dict[int, SeedBatch],
                        pending: list[int]) -> Iterator[SeedBatch]:
        """Yield batches in seed order, merging checkpointed and fresh ones."""
        fresh = iter(self.executor.map_seeds(self.config, pending,
                                             survey_skip=self._survey_skip))
        try:
            for index in range(self.config.num_seeds):
                if index in completed:
                    batch = completed[index]
                    # Restored work advances the campaign position but not
                    # the throughput/ETA figures — no work happened.
                    self.monitor.note_restored(batch)
                else:
                    try:
                        batch = next(fresh)
                    except StopIteration:
                        # Session cap reached: hand back a partial campaign;
                        # the checkpoint already holds everything computed.
                        return
                    if batch.seed_index != index:  # pragma: no cover - invariant
                        raise RuntimeError(
                            f"executor yielded seed {batch.seed_index}, "
                            f"expected {index}")
                    if self.checkpoint is not None:
                        self.checkpoint.record(batch)
                    self.monitor.observe(batch)
                    self.health.observe(batch.duration_seconds)
                    self.surveyed_cells += batch.surveyed_cells
                    self.skipped_cells += batch.skipped_cells
                if self.corpus is not None:
                    self.corpus.ingest(batch)
                yield batch
        finally:
            if hasattr(fresh, "close"):
                fresh.close()
            if self.checkpoint is not None:
                self.checkpoint.flush()
            if self.corpus is not None:
                self.corpus.flush()
