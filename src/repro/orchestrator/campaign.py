"""The campaign orchestrator: sharded execution with checkpoint/resume.

:class:`OrchestratedCampaign` wraps a :class:`~repro.core.fuzzer.FuzzingCampaign`
with the production machinery the serial loop lacks:

* **sharded execution** — seed work-items run on a pluggable executor
  (serial or a ``multiprocessing`` pool); per-seed RNG derivation makes the
  merged result bit-identical to a serial run;
* **checkpoint/resume** — completed seeds are snapshotted to JSON after every
  batch, so a killed campaign resumes from where it stopped and finishes with
  the same deduplicated bug reports as an uninterrupted one;
* **corpus store + crash dedup** — every tested program and every FN-bug
  candidate is recorded, bucketed by (UB type, crash site, sanitizer);
* **live stats** — throughput and ETA stream through a
  :class:`~repro.orchestrator.stats.ThroughputMonitor`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Union

from repro.core.fuzzer import (
    CampaignConfig,
    CampaignResult,
    FuzzingCampaign,
    SeedBatch,
)
from repro.orchestrator.checkpoint import CampaignCheckpoint
from repro.orchestrator.corpus import CorpusStore
from repro.orchestrator.executor import Executor, make_executor
from repro.orchestrator.stats import ThroughputMonitor


class OrchestratedCampaign:
    """Runs a fuzzing campaign through the orchestration engine.

    ``workers=1`` (the default) runs serially in-process; ``workers=N``
    shards seeds across N worker processes.  Either way the deduplicated
    bug reports are identical for the same config and ``rng_seed``.
    """

    def __init__(self, config: Optional[CampaignConfig] = None,
                 workers: int = 1,
                 executor: Optional[Executor] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_interval: int = 1,
                 corpus: Union[CorpusStore, str, None] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 max_seeds_per_session: Optional[int] = None) -> None:
        self.config = config or CampaignConfig()
        self.executor = executor if executor is not None else make_executor(workers)
        self.checkpoint = (CampaignCheckpoint(checkpoint_path, self.config,
                                              flush_interval=checkpoint_interval)
                           if checkpoint_path is not None else None)
        if isinstance(corpus, (str, bytes)):
            corpus = CorpusStore(root=corpus)
        self.corpus = corpus
        self.progress = progress
        self.max_seeds_per_session = max_seeds_per_session
        #: Populated by run(); exposes live throughput/ETA while running.
        self.monitor: Optional[ThroughputMonitor] = None
        #: Seed indices restored from the checkpoint on the last run().
        self.resumed_indices: list[int] = []

    # -- public ----------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute (or resume) the campaign and return the merged result."""
        campaign = FuzzingCampaign(self.config)
        completed: Dict[int, SeedBatch] = (self.checkpoint.load()
                                           if self.checkpoint is not None else {})
        self.resumed_indices = sorted(completed)
        pending = [index for index in range(self.config.num_seeds)
                   if index not in completed]
        if self.max_seeds_per_session is not None:
            pending = pending[:self.max_seeds_per_session]
        self.monitor = ThroughputMonitor(self.config.num_seeds, emit=self.progress)
        self.monitor.start()
        return campaign.collect(self._merged_batches(completed, pending))

    # -- internals --------------------------------------------------------------

    def _merged_batches(self, completed: Dict[int, SeedBatch],
                        pending: list[int]) -> Iterator[SeedBatch]:
        """Yield batches in seed order, merging checkpointed and fresh ones."""
        fresh = iter(self.executor.map_seeds(self.config, pending))
        try:
            for index in range(self.config.num_seeds):
                if index in completed:
                    batch = completed[index]
                    # Restored work advances the campaign position but not
                    # the throughput/ETA figures — no work happened.
                    self.monitor.note_restored(batch)
                else:
                    try:
                        batch = next(fresh)
                    except StopIteration:
                        # Session cap reached: hand back a partial campaign;
                        # the checkpoint already holds everything computed.
                        return
                    if batch.seed_index != index:  # pragma: no cover - invariant
                        raise RuntimeError(
                            f"executor yielded seed {batch.seed_index}, "
                            f"expected {index}")
                    if self.checkpoint is not None:
                        self.checkpoint.record(batch)
                    self.monitor.observe(batch)
                if self.corpus is not None:
                    self.corpus.ingest(batch)
                yield batch
        finally:
            if hasattr(fresh, "close"):
                fresh.close()
            if self.checkpoint is not None:
                self.checkpoint.flush()
            if self.corpus is not None:
                self.corpus.flush()
