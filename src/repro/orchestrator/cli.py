"""Command-line launcher for orchestrated campaigns.

Usage::

    python -m repro.orchestrator --seeds 20 --workers 4 \
        --checkpoint campaign.json --corpus corpus/ --trace

Interrupt it at any point; re-running the same command resumes from the
checkpoint and finishes with the same bug set as an uninterrupted run.

``--trace`` persists span-level telemetry under ``<corpus>/telemetry/``;
replay it into a per-stage profile with::

    python -m repro.orchestrator stats corpus/

Status output goes through :mod:`logging` (configure with ``-v``/``-q``);
the result summary itself prints to stdout (``--json`` for machines).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import List, Optional, Sequence

from repro.core.fuzzer import CampaignConfig
from repro.core.ub_types import ALL_UB_TYPES, UBType
from repro.orchestrator.campaign import OrchestratedCampaign
from repro.telemetry import configure_logging

logger = logging.getLogger(__name__)
#: Progress/status lines (per-seed throughput, reduction notices) stream
#: through this logger at INFO — visible by default, silenced by --quiet.
_PROGRESS = logging.getLogger("repro.orchestrator.progress")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator",
        description="Run a sharded campaign: sanitizer fuzzing with "
                    "checkpoint/resume, corpus storage and crash dedup "
                    "(--mode fuzz), or marker-based missed-optimization "
                    "and optimizer-regression finding (--mode markers).")
    parser.add_argument("--mode", choices=("fuzz", "markers"), default="fuzz",
                        help="campaign kind: sanitizer FN-bug fuzzing or "
                             "the marker elimination engine (default: fuzz)")
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seed programs (default: 10)")
    parser.add_argument("--rng-seed", type=int, default=0,
                        help="master RNG seed; the full campaign is a pure "
                             "function of this (default: 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; 1 = serial (default: 1)")
    parser.add_argument("--opt-levels", default=None,
                        help="comma-separated optimization levels (default: "
                             "all five for --mode fuzz, -O2,-O3 for "
                             "--mode markers)")
    parser.add_argument("--versions", default=None, metavar="SPEC",
                        help="markers mode: releases to survey, e.g. "
                             "'gcc=9-12,llvm=13-16' (default: every "
                             "simulated version)")
    parser.add_argument("--compilers", default="gcc,llvm",
                        help="comma-separated compilers (gcc, llvm)")
    parser.add_argument("--ub-types", default="",
                        help="comma-separated UB types (default: all)")
    parser.add_argument("--max-programs-per-type", type=int, default=2,
                        help="cap on UB programs per (seed, UB type)")
    parser.add_argument("--max-programs-total", type=int, default=None,
                        help="stop after this many UB programs overall")
    parser.add_argument("--no-triage", action="store_true",
                        help="skip defect triage (candidates only, faster)")
    parser.add_argument("--vm", choices=("compiled", "interp"),
                        default="compiled",
                        help="VM executor: closure-compiled bytecode with "
                             "batched deduplication (compiled, the default) "
                             "or the AST-walking interpreter (interp); "
                             "results are bit-identical")
    parser.add_argument("--reduce", action="store_true",
                        help="reduce one representative crash per dedup "
                             "bucket to a minimal reproducer (written to "
                             "the corpus as reduced/<bucket>.c)")
    parser.add_argument("--reduce-jobs", type=int, default=1, metavar="N",
                        help="worker processes for reduction candidate "
                             "evaluation (default: 1 = serial; any N "
                             "produces the identical reduced program)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSON snapshot to write/resume from")
    parser.add_argument("--checkpoint-interval", type=int, default=1,
                        help="rewrite the snapshot every N completed seeds "
                             "(default: 1; larger = less I/O, a crash "
                             "recomputes up to N-1 seeds)")
    parser.add_argument("--corpus", default=None, metavar="DIR",
                        help="directory for the persistent corpus store")
    parser.add_argument("--max-seeds-per-session", type=int, default=None,
                        help="process at most N new seeds, then stop "
                             "(resume later from the checkpoint)")
    parser.add_argument("--trace", action="store_true",
                        help="record span-level telemetry to "
                             "<corpus>/telemetry/trace.jsonl (requires "
                             "--corpus; replay with the 'stats' subcommand)")
    parser.add_argument("--db", default=None, metavar="PATH", dest="db_path",
                        help="cross-campaign database (SQLite); fuzzing "
                             "campaigns auto-ingest telemetry on completion "
                             "(requires --corpus; query with the 'db' "
                             "subcommand), marker campaigns persist their "
                             "finding buckets (query with 'query')")
    parser.add_argument("--resurvey", action="store_true",
                        help="incremental re-run: skip (program, config) "
                             "outcome cells the findings database already "
                             "recorded, surveying only new cells (requires "
                             "--corpus)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-seed progress lines and other "
                             "status logging (warnings still shown)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more status logging (-v: info, -vv: debug)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print a machine-readable JSON summary")
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator stats",
        description="Replay the telemetry a traced campaign persisted "
                    "(telemetry/trace.jsonl + metrics.json) into a "
                    "per-stage time/cache/VM profile, optionally exporting "
                    "the span trace to standard formats.")
    parser.add_argument("campaign_dir",
                        help="campaign corpus directory (the --corpus of "
                             "the traced run)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the profile as JSON")
    parser.add_argument("--export-chrome", default=None, metavar="PATH",
                        help="write the span trace as Chrome trace-event "
                             "JSON (chrome://tracing, Perfetto)")
    parser.add_argument("--export-folded", default=None, metavar="PATH",
                        help="write the span trace as folded stacks "
                             "(flamegraph.pl / speedscope input)")
    return parser


def build_watch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator watch",
        description="Live-monitor a running traced campaign: tail its "
                    "telemetry/trace.jsonl (read-only, never disturbing "
                    "the writer) and render throughput, ETA, per-stage "
                    "self-time and stall health until the campaign "
                    "finishes.")
    parser.add_argument("campaign_dir",
                        help="the running campaign's --corpus directory")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="seconds between refreshes (default: 2)")
    parser.add_argument("--once", action="store_true",
                        help="render a single snapshot and exit")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up after S seconds (default: follow "
                             "until the campaign finishes)")
    parser.add_argument("--stall-factor", type=float, default=None,
                        metavar="X",
                        help="flag a stall when the trace is silent for X "
                             "times the rolling median seed duration "
                             "(default: 5)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print one JSON snapshot per refresh")
    return parser


def build_db_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator db",
        description="The cross-campaign telemetry store: ingest persisted "
                    "campaign telemetry and bench artifacts into a SQLite "
                    "database, list the stored runs, and chart metric "
                    "trends across them.")
    parser.add_argument("--db", required=True, metavar="PATH", dest="db_path",
                        help="path of the SQLite telemetry database "
                             "(created on first use)")
    sub = parser.add_subparsers(dest="db_command", required=True)

    ingest = sub.add_parser("ingest",
                            help="ingest campaign dirs / bench artifacts")
    ingest.add_argument("campaign_dirs", nargs="*", metavar="CAMPAIGN_DIR",
                        help="traced campaign corpus directories")
    ingest.add_argument("--bench-dir", default=None, metavar="DIR",
                        help="also ingest every bench_*.json under DIR")

    query = sub.add_parser("query", help="list the stored campaign runs")
    query.add_argument("--campaign", default=None, metavar="FINGERPRINT",
                       help="only runs of this config fingerprint")
    query.add_argument("--last", type=int, default=None, metavar="N",
                       help="only the most recent N runs")
    query.add_argument("--metrics", action="store_true",
                       help="also list the metric names the runs recorded")
    query.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable output")

    trend = sub.add_parser("trend",
                           help="one metric's series across stored runs")
    trend.add_argument("--metric", required=True,
                       help="metric name, e.g. stage.execute.self_seconds "
                            "or cache.hits ('db query --metrics' lists "
                            "them)")
    trend.add_argument("--last", type=int, default=20, metavar="N",
                       help="series length (default: 20 most recent runs)")
    trend.add_argument("--campaign", default=None, metavar="FINGERPRINT",
                       help="restrict to one config fingerprint")
    trend.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable output")
    return parser


def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator query",
        description="Query the cross-campaign findings database: every "
                    "finding bucket (crash and marker kinds) with its "
                    "recurrence history, filterable by bucket slug, "
                    "compiler, kind and last-seen time.")
    parser.add_argument("--db", required=True, metavar="PATH", dest="db_path",
                        help="findings database (a campaign's "
                             "<corpus>/corpus.sqlite, or the shared --db "
                             "file)")
    parser.add_argument("--bucket", default=None, metavar="SUBSTR",
                        help="only buckets whose slug or signature contains "
                             "SUBSTR")
    parser.add_argument("--compiler", default=None, metavar="NAME",
                        help="only buckets hit under this compiler")
    parser.add_argument("--kind", default=None, metavar="KIND",
                        help="bucket kind: crash, missed-optimization, "
                             "regression, unsound-elimination")
    parser.add_argument("--since", default=None, metavar="WHEN",
                        help="only buckets last seen at/after WHEN "
                             "(YYYY-MM-DD[THH:MM:SS] or a unix timestamp)")
    parser.add_argument("--campaign", default=None, metavar="KEY",
                        help="only buckets a given campaign key hit")
    parser.add_argument("--programs", action="store_true",
                        help="also print per-bucket program digests")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    return parser


def build_migrate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator migrate",
        description="Import legacy flat campaign directories (corpus.json "
                    "+ programs/ + reduced/) into a findings database; "
                    "re-running is idempotent, and migrated buckets "
                    "deduplicate against future campaigns.")
    parser.add_argument("campaign_dirs", nargs="+", metavar="CAMPAIGN_DIR",
                        help="legacy campaign corpus directories")
    parser.add_argument("--db", required=True, metavar="PATH", dest="db_path",
                        help="findings database to import into (created on "
                             "first use)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    return parser


def build_bisect_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator bisect",
        description="Bisect findings-database buckets over the simulated "
                    "release timeline: binary-search to the exact version "
                    "— and the pass-introduction or defect-window event at "
                    "that version — responsible for each finding, and "
                    "record the attribution in the known-bug patch "
                    "database so later campaigns suppress the bucket "
                    "instead of re-filing it.")
    parser.add_argument("buckets", nargs="*", metavar="SUBSTR",
                        help="bisect buckets whose slug or signature "
                             "contains SUBSTR (omit with --all)")
    parser.add_argument("--db", required=True, metavar="PATH", dest="db_path",
                        help="findings database holding the buckets")
    parser.add_argument("--all", action="store_true", dest="all_buckets",
                        help="bisect every bucket in the database")
    parser.add_argument("--kind", default=None, metavar="KIND",
                        help="only buckets of this kind: crash, "
                             "missed-optimization, regression, "
                             "unsound-elimination")
    parser.add_argument("--dry-run", action="store_true",
                        help="bisect and print, but record nothing")
    parser.add_argument("--vm", choices=("interp", "compiled"),
                        default="compiled",
                        help="execution backend for crash probes "
                             "(default: compiled)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    return parser


def build_known_bugs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrator known-bugs",
        description="Print the known-bug patch database: every attributed "
                    "bucket with its responsible release-timeline event, "
                    "affected-version window, and the campaigns whose "
                    "re-finds it suppressed.")
    parser.add_argument("--db", required=True, metavar="PATH", dest="db_path",
                        help="findings database holding the attributions")
    parser.add_argument("--ledger", action="store_true",
                        help="also print the per-campaign suppression "
                             "ledger")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    return parser


class CLIError(Exception):
    """A user-input problem reported as a clean one-line error."""


def _parse_ub_types(spec: str) -> Sequence[UBType]:
    if not spec.strip():
        return ALL_UB_TYPES
    types = []
    for value in spec.split(","):
        try:
            types.append(UBType(value.strip()))
        except ValueError:
            known = ", ".join(ub.value for ub in ALL_UB_TYPES)
            raise CLIError(f"unknown UB type {value.strip()!r} "
                           f"(choose from: {known})") from None
    return tuple(types)


def _check_compilers(names: Sequence[str]) -> None:
    from repro.compilers.compiler import make_compiler
    for name in names:
        try:
            make_compiler(name)
        except KeyError:
            raise CLIError(f"unknown compiler {name!r} "
                           f"(choose from: gcc, llvm)") from None


def _check_opt_levels(levels: Sequence[str]) -> None:
    from repro.compilers.options import ALL_OPT_LEVELS
    for level in levels:
        if level not in ALL_OPT_LEVELS:
            raise CLIError(f"unknown optimization level {level!r} "
                           f"(choose from: {', '.join(ALL_OPT_LEVELS)})")


def _parse_versions(spec: Optional[str]) -> Optional[dict]:
    """Parse ``gcc=9-12,llvm=13-16`` into ``{"gcc": [9..12], ...}``."""
    if spec is None or not spec.strip():
        return None
    versions: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            compiler, span = part.split("=", 1)
            low, _, high = span.partition("-")
            first, last = int(low), int(high or low)
        except ValueError:
            raise CLIError(f"bad --versions entry {part!r} "
                           f"(expected e.g. gcc=9-12)") from None
        if last < first:
            raise CLIError(f"bad --versions range {part!r}")
        versions[compiler.strip()] = list(range(first, last + 1))
    return versions


def _opt_levels_from_args(args: argparse.Namespace) -> tuple:
    default = ("-O0,-O1,-Os,-O2,-O3" if args.mode == "fuzz" else "-O2,-O3")
    spec = args.opt_levels if args.opt_levels is not None else default
    return tuple(level.strip() for level in spec.split(",") if level.strip())


def config_from_args(args: argparse.Namespace):
    compilers = tuple(name.strip() for name in args.compilers.split(",")
                      if name.strip())
    opt_levels = _opt_levels_from_args(args)
    if args.mode == "markers":
        from repro.markers.engine import MarkerCampaignConfig
        versions = _parse_versions(args.versions)
        if versions is not None:
            unknown = sorted(set(versions) - set(compilers))
            if unknown:
                raise CLIError(
                    f"--versions names compilers not being surveyed: "
                    f"{', '.join(unknown)} (surveying: "
                    f"{', '.join(compilers)})")
        return MarkerCampaignConfig(
            num_seeds=args.seeds,
            rng_seed=args.rng_seed,
            compilers=compilers,
            opt_levels=opt_levels,
            versions=versions,
            vm=args.vm)
    return CampaignConfig(
        num_seeds=args.seeds,
        rng_seed=args.rng_seed,
        ub_types=_parse_ub_types(args.ub_types),
        opt_levels=opt_levels,
        compilers=compilers,
        max_programs_per_type=args.max_programs_per_type,
        max_programs_total=args.max_programs_total,
        triage=not args.no_triage,
        vm=args.vm)


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv[:1] == ["stats"]:
        return _stats_main(argv[1:])
    if argv[:1] == ["watch"]:
        return _watch_main(argv[1:])
    if argv[:1] == ["db"]:
        return _db_main(argv[1:])
    if argv[:1] == ["query"]:
        return _query_main(argv[1:])
    if argv[:1] == ["migrate"]:
        return _migrate_main(argv[1:])
    if argv[:1] == ["bisect"]:
        return _bisect_main(argv[1:])
    if argv[:1] == ["known-bugs"]:
        return _known_bugs_main(argv[1:])
    args = build_parser().parse_args(argv)
    configure_logging(0 if args.quiet else 1 + args.verbose)
    try:
        return _run(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _progress(line: str) -> None:
    _PROGRESS.info("%s", line)


def _run(args: argparse.Namespace) -> int:
    from repro.orchestrator.checkpoint import CheckpointMismatch
    config = config_from_args(args)
    _check_compilers(config.compilers)
    _check_opt_levels(config.opt_levels)
    progress = None if args.quiet else _progress
    if args.mode == "markers":
        if args.checkpoint is not None or args.corpus is not None:
            raise CLIError("--checkpoint/--corpus are fuzzing-only "
                           "(marker campaigns are cheap to re-run)")
        if args.max_seeds_per_session is not None:
            raise CLIError("--max-seeds-per-session is fuzzing-only: "
                           "without a checkpoint a capped marker campaign "
                           "could never process its remaining seeds")
        if args.trace:
            raise CLIError("--trace is fuzzing-only: marker campaigns have "
                           "no corpus directory to persist the trace into")
        if args.resurvey:
            raise CLIError("--resurvey is fuzzing-only: marker campaigns "
                           "dedupe by bucket signature instead")
        return _run_markers(args, config, progress)
    if args.trace and args.corpus is None:
        raise CLIError("--trace requires --corpus DIR (the trace persists "
                       "as <corpus>/telemetry/trace.jsonl)")
    if args.db_path is not None and args.corpus is None:
        raise CLIError("--db requires --corpus DIR (store ingestion reads "
                       "the telemetry persisted under the corpus)")
    if args.resurvey and args.corpus is None:
        raise CLIError("--resurvey requires --corpus DIR (the skip set is "
                       "the findings database's recorded outcome cells)")
    orchestrated = OrchestratedCampaign(
        config,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        corpus=args.corpus,
        progress=progress,
        max_seeds_per_session=args.max_seeds_per_session,
        reduce=args.reduce,
        reduce_jobs=args.reduce_jobs,
        trace=args.trace,
        db_path=args.db_path,
        resurvey=args.resurvey)
    try:
        result = orchestrated.run()
    except CheckpointMismatch as exc:
        raise CLIError(f"{exc} — pass a fresh --checkpoint path to start "
                       f"over") from None
    except json.JSONDecodeError as exc:
        raise CLIError(f"checkpoint {args.checkpoint} is not valid JSON "
                       f"({exc}) — delete it or pass a fresh path") from None

    stats = result.stats
    summary = {
        "seeds_used": stats.seeds_used,
        "seeds_resumed": len(orchestrated.resumed_indices),
        "programs_generated": stats.total_programs(),
        "programs_tested": stats.programs_tested,
        "discrepant_programs": stats.discrepant_programs,
        "fn_candidates": stats.fn_candidates,
        "wrong_report_candidates": stats.wrong_report_candidates,
        "duration_seconds": round(stats.duration_seconds, 3),
        "workers": orchestrated.executor.workers,
        "bug_reports": [
            {"bug_id": report.bug_id, "compiler": report.compiler,
             "sanitizer": report.sanitizer, "ub_type": report.ub_type.value,
             "status": report.status, "category": report.category,
             "affected_opt_levels": report.affected_opt_levels,
             "affected_versions": report.affected_versions}
            for report in result.bug_reports
        ],
    }
    if orchestrated.corpus is not None:
        corpus_summary = orchestrated.corpus.summary()
        summary["corpus"] = {"programs": corpus_summary["programs"],
                             "crashes": corpus_summary["crashes"],
                             "unique_crashes": corpus_summary["unique_crashes"],
                             "new_buckets": corpus_summary["new_buckets"],
                             "recurrent_buckets":
                                 corpus_summary["recurrent_buckets"],
                             "suppressed_buckets":
                                 corpus_summary["suppressed_buckets"]}
        if corpus_summary["suppressed_buckets"]:
            summary["suppressions"] = orchestrated.corpus.suppressions()
    if args.resurvey:
        summary["resurvey"] = {"surveyed_cells": orchestrated.surveyed_cells,
                               "skipped_cells": orchestrated.skipped_cells}
    if orchestrated.telemetry_summary is not None:
        summary["cache"] = orchestrated.telemetry_summary["cache"]
    if args.trace:
        summary["telemetry_dir"] = os.path.join(args.corpus, "telemetry")
    if orchestrated.telemetry_summary is not None:
        summary["health"] = orchestrated.telemetry_summary["health"]
    if orchestrated.db_run_id is not None:
        summary["db"] = {"path": args.db_path, "run": orchestrated.db_run_id}
    if orchestrated.reductions:
        summary["reductions"] = [record.to_json()
                                 for record in orchestrated.reductions]

    if args.as_json:
        print(json.dumps(summary, indent=2))
        return 0

    print(f"seeds used            : {summary['seeds_used']}"
          + (f" ({summary['seeds_resumed']} resumed from checkpoint)"
             if summary["seeds_resumed"] else ""))
    print(f"UB programs generated : {summary['programs_generated']}")
    print(f"programs tested       : {summary['programs_tested']}")
    print(f"discrepant programs   : {summary['discrepant_programs']}")
    print(f"FN candidates         : {summary['fn_candidates']}")
    print(f"wrong-report candidates: {summary['wrong_report_candidates']}")
    if "corpus" in summary:
        corpus = summary["corpus"]
        print(f"corpus                : {corpus['programs']} programs, "
              f"{corpus['crashes']} crashes in "
              f"{corpus['unique_crashes']} dedup buckets")
        if corpus["recurrent_buckets"]:
            print(f"cross-campaign dedup  : {corpus['new_buckets']} "
                  f"new bucket(s), {corpus['recurrent_buckets']} seen in "
                  f"earlier campaigns")
        if corpus["suppressed_buckets"]:
            print(f"known-bug suppression : {corpus['suppressed_buckets']} "
                  f"bucket(s) already attributed — reported once, not "
                  f"re-filed")
            for line in summary.get("suppressions", ()):
                print(f"  suppressed_by {line['suppressed_by']}: "
                      f"{line['slug']} — {line['hits']} hit(s)")
    if "resurvey" in summary:
        resurvey = summary["resurvey"]
        total = resurvey["surveyed_cells"] + resurvey["skipped_cells"]
        pct = (f" ({resurvey['skipped_cells'] / total:.0%} of "
               f"{total})" if total else "")
        print(f"resurvey              : {resurvey['surveyed_cells']} cell(s) "
              f"surveyed, {resurvey['skipped_cells']} already "
              f"recorded{pct}")
    if "cache" in summary:
        print(f"compilation cache     : {_cache_line(summary['cache'])}")
    if "telemetry_dir" in summary:
        print(f"telemetry             : {summary['telemetry_dir']} "
              f"(replay: python -m repro.orchestrator stats "
              f"{args.corpus})")
    if "health" in summary:
        health = summary["health"]
        stalls = (f", {health['stalls']} stall(s), worst gap "
                  f"{health['worst_gap_seconds']}s"
                  if health["stalls"] else "")
        print(f"health                : {health['status']}{stalls}")
    if "db" in summary:
        print(f"telemetry store       : run {summary['db']['run']} in "
              f"{summary['db']['path']} (query: python -m "
              f"repro.orchestrator db --db {summary['db']['path']} query)")
    print(f"wall-clock            : {summary['duration_seconds']}s "
          f"({summary['workers']} worker(s))")
    if orchestrated.reductions:
        from repro.analysis.tables import table_reduction_quality
        from repro.utils.text import format_table
        headers, rows = table_reduction_quality(orchestrated.reductions)
        print("reduced reproducers   :")
        for line in format_table(headers, rows).splitlines():
            print(f"  {line}")
    print(f"distinct bugs         : {len(summary['bug_reports'])}")
    for report in summary["bug_reports"]:
        levels = ", ".join(report["affected_opt_levels"]) or "-"
        print(f"  [{report['status']:9s}] {report['bug_id']} — "
              f"{report['compiler']} {report['sanitizer']} / "
              f"{report['ub_type']} / levels: {levels}")
    return 0


def _cache_line(cache: dict) -> str:
    """``H hits / M misses (R% hit rate), E evicted`` from cache counters."""
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    total = hits + misses
    rate = f"{hits / total:.0%}" if total else "n/a"
    return (f"{hits} hits / {misses} misses ({rate} hit rate), "
            f"{cache.get('evictions', 0)} evicted")


def _run_markers(args: argparse.Namespace, config, progress) -> int:
    """Run a marker campaign and print its summary."""
    orchestrated = OrchestratedCampaign(
        config,
        workers=args.workers,
        progress=progress,
        reduce=args.reduce,
        reduce_jobs=args.reduce_jobs,
        db_path=args.db_path)
    result = orchestrated.run()
    stats = result.stats
    summary = {
        "mode": "markers",
        "seeds_used": stats.seeds_used,
        "markers_planted": stats.markers_planted,
        "live_markers": stats.live_markers,
        "configs_surveyed": stats.configs_surveyed,
        "raw_findings": stats.raw_findings,
        "findings_by_kind": dict(stats.findings_by_kind),
        "workers": orchestrated.executor.workers,
        "buckets": [
            {"kind": f.kind, "compiler": f.compiler,
             "site": f.marker.signature, "pass": f.responsible_pass,
             "opt_level": f.opt_level, "version": f.version,
             "prev_version": f.prev_version}
            for f in result.findings
        ],
    }
    if orchestrated.telemetry_summary is not None:
        summary["cache"] = orchestrated.telemetry_summary["cache"]
    if args.db_path is not None:
        summary["db"] = {"path": args.db_path}
    if orchestrated.marker_suppressions:
        summary["suppressions"] = [
            {"slug": line["slug"] or line["signature"][:40],
             "suppressed_by": line["responsible"], "hits": line["hits"]}
            for line in orchestrated.marker_suppressions]
    if orchestrated.reductions:
        summary["reductions"] = [record.to_json()
                                 for record in orchestrated.reductions]
    if args.as_json:
        print(json.dumps(summary, indent=2))
        return 0

    from repro.analysis import table_marker_findings, table_marker_survival
    from repro.utils.text import format_table
    print(f"seeds used            : {summary['seeds_used']}")
    print(f"markers planted       : {summary['markers_planted']} "
          f"({summary['live_markers']} live)")
    print(f"configs surveyed      : {summary['configs_surveyed']}")
    if "cache" in summary:
        print(f"compilation cache     : {_cache_line(summary['cache'])}")
    print(f"raw findings          : {summary['raw_findings']} "
          f"{summary['findings_by_kind']}")
    print(f"workers               : {summary['workers']}")
    headers, rows = table_marker_survival(result)
    print("marker survival       :")
    for line in format_table(headers, rows).splitlines():
        print(f"  {line}")
    headers, rows = table_marker_findings(result)
    print(f"finding buckets       : {len(result.buckets)}")
    for line in format_table(headers, rows).splitlines():
        print(f"  {line}")
    if "suppressions" in summary:
        print(f"known-bug suppression : {len(summary['suppressions'])} "
              f"bucket(s) already attributed — reported once, not re-filed")
        for line in summary["suppressions"]:
            print(f"  suppressed_by {line['suppressed_by']}: "
                  f"{line['slug']} — {line['hits']} hit(s)")
    if "db" in summary:
        print(f"findings database     : {summary['db']['path']} "
              f"(query: python -m repro.orchestrator query --db "
              f"{summary['db']['path']})")
    if orchestrated.reductions:
        from repro.analysis.tables import table_reduction_quality
        headers, rows = table_reduction_quality(orchestrated.reductions)
        print("reduced reproducers   :")
        for line in format_table(headers, rows).splitlines():
            print(f"  {line}")
    return 0


def _stats_main(argv: List[str]) -> int:
    """The ``stats`` subcommand: replay persisted telemetry into a profile."""
    args = build_stats_parser().parse_args(argv)
    from repro.telemetry.profile import load_profile
    if not os.path.isdir(args.campaign_dir):
        print(f"error: {args.campaign_dir!r} is not a campaign directory",
              file=sys.stderr)
        return 2
    try:
        profile = load_profile(args.campaign_dir)
    except FileNotFoundError:
        # An existing campaign dir that simply was never traced is not an
        # error — report the situation and how to change it, exit clean.
        print(f"no telemetry recorded under {args.campaign_dir} "
              f"(run the campaign with --trace to record one)")
        return 0
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(f"error: telemetry under {args.campaign_dir!r} is unreadable "
              f"({exc})", file=sys.stderr)
        return 2
    exit_code = _stats_exports(args)
    if exit_code is not None:
        return exit_code
    if args.as_json:
        print(json.dumps(profile.to_json(), indent=2))
        return 0

    from repro.analysis import table_stage_profile
    from repro.utils.text import format_table
    if profile.campaign:
        print(f"campaign              : {profile.campaign}")
    print(f"seeds traced          : {profile.seed_count} "
          f"({profile.span_count} spans)")
    if profile.wall_seconds is not None:
        print(f"wall-clock            : {profile.wall_seconds:.2f}s")
    headers, rows = table_stage_profile(profile)
    print("stage profile         :")
    for line in format_table(headers, rows).splitlines():
        print(f"  {line}")
    counters = profile.counters
    if counters.get("cache.hits", 0) or counters.get("cache.misses", 0):
        cache = {"hits": counters.get("cache.hits", 0),
                 "misses": counters.get("cache.misses", 0),
                 "evictions": counters.get("cache.evictions", 0)}
        print(f"compilation cache     : {_cache_line(cache)}")
    if counters.get("vm.runs"):
        print(f"vm                    : {counters['vm.runs']} runs, "
              f"{counters.get('vm.steps', 0)} steps")
    return 0


def _stats_exports(args: argparse.Namespace) -> Optional[int]:
    """Handle ``stats --export-chrome/--export-folded``.

    Returns an exit code when exporting was requested (0 done, 2 error),
    None when no export flag was given and stats should render normally.
    """
    if args.export_chrome is None and args.export_folded is None:
        return None
    from repro.telemetry.export import write_chrome_trace, write_folded_stacks
    from repro.telemetry.profile import telemetry_paths
    from repro.telemetry.tracer import read_trace
    trace_path = telemetry_paths(args.campaign_dir)[0]
    if not os.path.exists(trace_path):
        print(f"error: no span trace under {args.campaign_dir!r} — exports "
              f"need a campaign recorded with --trace (metrics alone are "
              f"not exportable)", file=sys.stderr)
        return 2
    events = read_trace(trace_path)
    if args.export_chrome is not None:
        path = write_chrome_trace(events, args.export_chrome)
        print(f"chrome trace          : {path} (load in chrome://tracing "
              f"or https://ui.perfetto.dev)")
    if args.export_folded is not None:
        path = write_folded_stacks(events, args.export_folded)
        print(f"folded stacks         : {path} (feed to flamegraph.pl or "
              f"speedscope)")
    return 0


def _watch_main(argv: List[str]) -> int:
    """The ``watch`` subcommand: live stats for a running traced campaign."""
    import time as _time

    from repro.telemetry.monitor import DEFAULT_STALL_FACTOR, WatchView
    args = build_watch_parser().parse_args(argv)
    if not os.path.isdir(args.campaign_dir):
        print(f"error: {args.campaign_dir!r} is not a campaign directory",
              file=sys.stderr)
        return 2
    view = WatchView(args.campaign_dir,
                     stall_factor=(args.stall_factor
                                   if args.stall_factor is not None
                                   else DEFAULT_STALL_FACTOR))
    deadline = (_time.monotonic() + args.timeout
                if args.timeout is not None else None)
    while True:
        view.refresh()
        if args.as_json:
            print(json.dumps(view.snapshot()), flush=True)
        else:
            for line in view.format_lines():
                print(line, flush=True)
        if args.once:
            return 0
        if view.finished:
            print("campaign finished")
            return 0
        if deadline is not None and _time.monotonic() >= deadline:
            print("watch timeout reached; campaign still running")
            return 0
        _time.sleep(max(0.05, args.interval))


def _db_main(argv: List[str]) -> int:
    """The ``db`` subcommand: the cross-campaign telemetry store CLI."""
    from repro.telemetry.store import TelemetryStore
    args = build_db_parser().parse_args(argv)
    with TelemetryStore(args.db_path) as store:
        if args.db_command == "ingest":
            return _db_ingest(store, args)
        if args.db_command == "query":
            return _db_query(store, args)
        return _db_trend(store, args)


def _db_ingest(store, args: argparse.Namespace) -> int:
    if not args.campaign_dirs and args.bench_dir is None:
        print("error: nothing to ingest — pass campaign directories and/or "
              "--bench-dir", file=sys.stderr)
        return 2
    for campaign_dir in args.campaign_dirs:
        try:
            run_id = store.ingest_campaign(campaign_dir)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            print(f"error: telemetry under {campaign_dir!r} is unreadable "
                  f"({exc})", file=sys.stderr)
            return 2
        print(f"ingested {campaign_dir} as run {run_id}")
    if args.bench_dir is not None:
        added = store.ingest_bench_dir(args.bench_dir)
        total = sum(added.values())
        print(f"ingested {total} bench sample(s) from "
              f"{len(added)} artifact(s) under {args.bench_dir}")
    counts = store.summary()
    print(f"store: {counts['runs']} runs, {counts['spans']} spans, "
          f"{counts['metric_points']} metric points, "
          f"{counts['bench_samples']} bench samples")
    return 0


def _db_query(store, args: argparse.Namespace) -> int:
    runs = store.runs(campaign=args.campaign, last=args.last)
    if args.as_json:
        payload = {"runs": [run.to_json() for run in runs]}
        if args.metrics:
            payload["metrics"] = store.metric_names()
        print(json.dumps(payload, indent=2))
        return 0
    if not runs:
        print("no runs stored"
              + (f" for campaign {args.campaign}" if args.campaign else "")
              + " — ingest one with: python -m repro.orchestrator db "
                "--db ... ingest <campaign-dir>")
        return 0
    from repro.utils.text import format_table
    headers = ["Run", "Ingested", "Campaign", "Git", "Seeds", "Spans",
               "Wall (s)", "Health"]
    rows = []
    for run in runs:
        import datetime
        stamp = datetime.datetime.fromtimestamp(run.ingested_at)
        rows.append([run.id, stamp.strftime("%Y-%m-%d %H:%M"),
                     (run.campaign or "?")[:16],
                     (run.git_sha or "?")[:10], run.seeds, run.spans,
                     f"{run.wall_seconds:.2f}" if run.wall_seconds else "-",
                     run.health or "-"])
    print(format_table(headers, rows))
    if args.metrics:
        print(f"metrics: {', '.join(store.metric_names())}")
    return 0


def _db_trend(store, args: argparse.Namespace) -> int:
    points = store.trend(args.metric, last=args.last,
                         campaign=args.campaign)
    if args.as_json:
        print(json.dumps({"metric": args.metric,
                          "points": [p.to_json() for p in points]},
                         indent=2))
        return 0
    if not points:
        known = store.metric_names()
        hint = (f" (known metrics include: {', '.join(known[:8])}...)"
                if known else " (the store is empty — ingest campaigns "
                              "first)")
        print(f"no data for metric {args.metric!r}{hint}")
        return 0
    from repro.analysis import table_campaign_trend
    from repro.utils.text import format_table
    headers, rows = table_campaign_trend(args.metric, points)
    print(format_table(headers, rows))
    return 0


def _parse_since(spec: str) -> float:
    """``--since`` accepts an ISO date/datetime or a raw unix timestamp."""
    import datetime
    try:
        return float(spec)
    except ValueError:
        pass
    for fmt in ("%Y-%m-%dT%H:%M:%S", "%Y-%m-%d %H:%M:%S", "%Y-%m-%d"):
        try:
            return datetime.datetime.strptime(spec, fmt).timestamp()
        except ValueError:
            continue
    raise CLIError(f"--since {spec!r} is neither YYYY-MM-DD[THH:MM:SS] "
                   f"nor a unix timestamp")


def _stamp(value) -> str:
    import datetime
    if value is None:
        return "-"
    return datetime.datetime.fromtimestamp(value).strftime("%Y-%m-%d %H:%M")


def _query_main(argv: List[str]) -> int:
    """The ``query`` subcommand: filterable findings-database view."""
    from repro.corpusdb import FindingsDB
    args = build_query_parser().parse_args(argv)
    if not os.path.exists(args.db_path):
        print(f"error: findings database {args.db_path!r} does not exist "
              f"(run a campaign with --corpus, or import legacy dirs with "
              f"'migrate')", file=sys.stderr)
        return 2
    try:
        since = _parse_since(args.since) if args.since is not None else None
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with FindingsDB(args.db_path) as db:
        rows = db.query_buckets(kind=args.kind, compiler=args.compiler,
                                bucket=args.bucket, since=since,
                                campaign=args.campaign)
        if args.programs:
            for row in rows:
                row["programs"] = db.bucket_digests(row["id"])
        counts = db.summary()
    if args.as_json:
        print(json.dumps({"buckets": rows, "summary": counts}, indent=2))
        return 0
    if not rows:
        print("no matching buckets")
    else:
        from repro.utils.text import format_table
        headers = ["Bucket", "Kind", "Sanitizer", "Pass", "Hits",
                   "Campaigns", "First seen", "Last seen", "Reduced"]
        table = []
        for row in rows:
            table.append([row["slug"], row["kind"], row["sanitizer"] or "-",
                          row["responsible_pass"] or "-", row["count"],
                          row["campaigns"], _stamp(row["first_seen_at"]),
                          _stamp(row["last_seen_at"]),
                          "yes" if row["reduced"] else "-"])
        print(format_table(headers, table))
        if args.programs:
            for row in rows:
                digests = ", ".join(d[:12] for d in row["programs"])
                print(f"  {row['slug']}: {digests}")
    print(f"database: {counts['buckets']} buckets, {counts['hits']} hits, "
          f"{counts['programs']} programs, {counts['outcomes']} outcomes, "
          f"{counts['reductions']} reductions across "
          f"{counts['campaigns']} campaigns")
    return 0


def _bisect_main(argv: List[str]) -> int:
    """The ``bisect`` subcommand: attribute buckets to timeline events."""
    from repro.compilers.cache import CompilationCache
    from repro.corpusdb import FindingsDB
    from repro.triage import BisectionError, bisect_bucket, record_attribution
    args = build_bisect_parser().parse_args(argv)
    if not args.buckets and not args.all_buckets:
        print("error: name at least one bucket substring, or pass --all",
              file=sys.stderr)
        return 2
    if not os.path.exists(args.db_path):
        print(f"error: findings database {args.db_path!r} does not exist "
              f"(run a campaign with --db first)", file=sys.stderr)
        return 2
    cache = CompilationCache()
    attributions = []
    failures = []
    with FindingsDB(args.db_path) as db:
        if args.all_buckets:
            rows = db.query_buckets(kind=args.kind)
        else:
            seen = set()
            rows = []
            for substr in args.buckets:
                for row in db.query_buckets(kind=args.kind, bucket=substr):
                    if row["id"] not in seen:
                        seen.add(row["id"])
                        rows.append(row)
        for row in rows:
            try:
                attribution = bisect_bucket(db, row, cache=cache, vm=args.vm)
            except BisectionError as exc:
                failures.append({"slug": row["slug"], "error": str(exc)})
                continue
            if not args.dry_run:
                record_attribution(db, attribution)
            attributions.append(attribution)
    if args.as_json:
        print(json.dumps({
            "attributions": [a.to_json() for a in attributions],
            "failures": failures,
            "recorded": not args.dry_run,
        }, indent=2))
        return 0 if not failures else 1
    if not attributions and not failures:
        print("no matching buckets")
        return 0
    if attributions:
        from repro.analysis.tables import table_attribution
        from repro.utils.text import format_table
        headers, table = table_attribution(attributions)
        print(format_table(headers, table))
    for failure in failures:
        print(f"  [unbisected] {failure['slug']}: {failure['error']}")
    verb = "bisected" if args.dry_run else "attributed"
    print(f"{verb} {len(attributions)} bucket(s)"
          + (f", {len(failures)} failed" if failures else "")
          + ("" if args.dry_run else
             f" — recorded in {args.db_path} (campaigns sharing this "
             f"database now suppress them)"))
    return 0 if not failures else 1


def _known_bugs_main(argv: List[str]) -> int:
    """The ``known-bugs`` subcommand: print the known-bug patch database."""
    from repro.corpusdb import FindingsDB
    args = build_known_bugs_parser().parse_args(argv)
    if not os.path.exists(args.db_path):
        print(f"error: findings database {args.db_path!r} does not exist "
              f"(run a campaign with --db first)", file=sys.stderr)
        return 2
    with FindingsDB(args.db_path) as db:
        bugs = db.known_bugs()
        ledger = db.suppression_ledger()
        counts = db.summary()
    if args.as_json:
        print(json.dumps({"known_bugs": bugs, "ledger": ledger,
                          "summary": counts}, indent=2))
        return 0
    if not bugs:
        print("no known bugs recorded (attribute buckets with 'bisect')")
        return 0
    from repro.analysis.tables import table_known_bugs
    from repro.utils.text import format_table
    headers, table = table_known_bugs(bugs)
    print(format_table(headers, table))
    if args.ledger:
        print("suppression ledger    :")
        if not ledger:
            print("  (no campaign re-found an attributed bucket yet)")
        for line in ledger:
            print(f"  suppressed_by {line['responsible']}: "
                  f"{line['slug'] or line['signature'][:40]} — "
                  f"{line['hits']} hit(s) in campaign "
                  f"{(line['campaign_key'] or '?')[-40:]}")
    print(f"known bugs: {len(bugs)} attributed, "
          f"{counts['suppressions']} suppression ledger line(s) across "
          f"{counts['campaigns']} campaigns")
    return 0


def _migrate_main(argv: List[str]) -> int:
    """The ``migrate`` subcommand: import legacy flat campaign dirs."""
    from repro.corpusdb import FindingsDB, migrate_campaign_dir
    args = build_migrate_parser().parse_args(argv)
    reports = []
    with FindingsDB(args.db_path) as db:
        for campaign_dir in args.campaign_dirs:
            try:
                report = migrate_campaign_dir(db, campaign_dir)
            except FileNotFoundError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                print(f"error: corpus index under {campaign_dir!r} is "
                      f"unreadable ({exc})", file=sys.stderr)
                return 2
            reports.append(report)
        counts = db.summary()
    if args.as_json:
        print(json.dumps({"migrated": reports, "summary": counts}, indent=2))
        return 0
    for report in reports:
        missing = (f", {report['missing_sources']} missing source(s) skipped"
                   if report.get("missing_sources") else "")
        print(f"migrated {report['campaign_dir']} as campaign "
              f"{report['campaign_key']}: {report['programs']} programs, "
              f"{report['buckets']} buckets, "
              f"{report['reductions']} reductions{missing}")
    print(f"database: {counts['buckets']} buckets, {counts['hits']} hits, "
          f"{counts['programs']} programs, {counts['outcomes']} outcomes, "
          f"{counts['reductions']} reductions across "
          f"{counts['campaigns']} campaigns")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
