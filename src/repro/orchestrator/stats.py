"""Live throughput/ETA statistics for running campaigns.

The monitor observes completed seed batches and derives rolling rates
(seeds/sec, programs-tested/sec) and an ETA from the per-seed average.  It
is deliberately passive: the orchestrator feeds it batches and an optional
``emit`` callable (e.g. ``print``) receives one formatted line per seed, so
tests can capture progress without touching stdout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.fuzzer import SeedBatch


@dataclass
class ThroughputSnapshot:
    """One observation of campaign progress.

    ``seeds_done`` includes checkpoint-restored seeds (overall campaign
    position); the rate and ETA are computed from freshly executed work
    only, so resuming a mostly-done campaign doesn't report absurd
    throughput.
    """

    seeds_done: int
    seeds_total: int
    seeds_restored: int
    programs_tested: int
    fn_candidates: int
    elapsed_seconds: float
    programs_per_second: float
    eta_seconds: Optional[float]

    def format_line(self) -> str:
        eta = "--" if self.eta_seconds is None else f"{self.eta_seconds:6.1f}s"
        restored = (f" ({self.seeds_restored} restored)"
                    if self.seeds_restored else "")
        return (f"seeds {self.seeds_done}/{self.seeds_total}{restored} | "
                f"programs {self.programs_tested} "
                f"({self.programs_per_second:.2f}/s) | "
                f"fn-candidates {self.fn_candidates} | "
                f"elapsed {self.elapsed_seconds:6.1f}s | eta {eta}")


class ThroughputMonitor:
    """Tracks campaign progress and streams per-seed status lines."""

    def __init__(self, seeds_total: int,
                 emit: Optional[Callable[[str], None]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.seeds_total = seeds_total
        self.emit = emit
        self._clock = clock
        self._start: Optional[float] = None
        #: When fresh work began: restore-replay time (checkpoint loading,
        #: corpus ingestion of already-computed batches) keeps pushing this
        #: forward until the first freshly-executed batch is observed, so
        #: rates and ETAs are computed from fresh work only.
        self._fresh_start: Optional[float] = None
        self.seeds_done = 0
        self.seeds_restored = 0
        self.programs_tested = 0
        self.programs_restored = 0
        self.fn_candidates = 0
        self.history: list[ThroughputSnapshot] = []

    def start(self) -> None:
        self._start = self._clock()
        self._fresh_start = self._start

    def note_restored(self, batch: SeedBatch) -> None:
        """Record a checkpoint-restored batch: campaign position advances,
        but nothing is emitted and rates/ETA ignore it (no work was done)."""
        self.seeds_restored += 1
        self.programs_restored += batch.programs_tested
        self.fn_candidates += sum(len(diff.fn_candidates)
                                  for diff in batch.diff_results)
        if self.seeds_done == 0:
            # Still replaying the checkpoint: the wall-clock consumed so far
            # is restore overhead, not execution, so fresh work starts now.
            self._fresh_start = self._clock()

    def observe(self, batch: SeedBatch) -> ThroughputSnapshot:
        """Record one completed batch; returns (and optionally emits) a snapshot."""
        if self._start is None:
            self.start()
        self.seeds_done += 1
        self.programs_tested += batch.programs_tested
        self.fn_candidates += sum(len(diff.fn_candidates)
                                  for diff in batch.diff_results)
        snapshot = self.snapshot()
        self.history.append(snapshot)
        if self.emit is not None:
            self.emit(snapshot.format_line())
        return snapshot

    def snapshot(self) -> ThroughputSnapshot:
        now = self._clock()
        elapsed = 0.0 if self._start is None else now - self._start
        # Rate and ETA come from freshly-executed work only: measuring them
        # against total elapsed (which includes replaying restored batches)
        # would under-report throughput and inflate the ETA after a resume.
        work_elapsed = 0.0 if self._fresh_start is None else now - self._fresh_start
        rate = self.programs_tested / work_elapsed if work_elapsed > 0 else 0.0
        position = self.seeds_restored + self.seeds_done
        eta: Optional[float] = None
        if self.seeds_done and self.seeds_total > position and work_elapsed > 0:
            per_seed = work_elapsed / self.seeds_done
            eta = per_seed * (self.seeds_total - position)
        return ThroughputSnapshot(seeds_done=position,
                                  seeds_total=self.seeds_total,
                                  seeds_restored=self.seeds_restored,
                                  programs_tested=self.programs_tested,
                                  fn_candidates=self.fn_candidates,
                                  elapsed_seconds=elapsed,
                                  programs_per_second=rate,
                                  eta_seconds=eta)
