"""Checkpoint/resume of interrupted campaigns via JSON snapshots.

The snapshot is a single JSON document holding the campaign config
fingerprint plus one record per completed seed (see
:mod:`repro.orchestrator.records`).  It is rewritten atomically
(temp file + ``os.replace``) after every recorded batch, so a campaign
killed at any point can resume from the last completed seed.

A checkpoint written for one configuration refuses to resume another: the
fingerprint covers every knob that influences results, so a silent partial
reuse can never produce a mixed bug set.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Dict, Optional

logger = logging.getLogger(__name__)

from repro.core.fuzzer import CampaignConfig, SeedBatch
from repro.orchestrator.records import (
    RECORD_VERSION,
    batch_from_record,
    batch_to_record,
    config_fingerprint,
)
from repro.utils.io import atomic_write_json


class CheckpointMismatch(Exception):
    """The snapshot on disk belongs to a different campaign configuration."""


class CampaignCheckpoint:
    """Persists completed seed batches for one campaign configuration.

    ``flush_interval`` trades durability for I/O: the snapshot (which grows
    with every completed seed, program sources included) is rewritten every
    N recorded batches instead of every one.  A crash between flushes only
    loses the unflushed seeds' *work* — they are simply recomputed on
    resume — never correctness.
    """

    def __init__(self, path: str, config: CampaignConfig,
                 flush_interval: int = 1) -> None:
        if flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        self.path = str(path)
        self.fingerprint = config_fingerprint(config)
        self.flush_interval = flush_interval
        self._records: Dict[int, dict] = {}
        self._loaded = False
        self._unflushed = 0
        #: Free-form campaign metadata persisted alongside the seeds — the
        #: orchestrator records the merged telemetry summary (cache
        #: hit/miss/eviction counters) here at the end of each session.
        self.metadata: Dict[str, object] = {}

    # -- reading ---------------------------------------------------------------

    def load(self) -> Dict[int, SeedBatch]:
        """Return the completed batches recorded on disk, keyed by seed index.

        Missing file → empty dict (a fresh campaign).  A snapshot written by
        a different configuration raises :class:`CheckpointMismatch`.
        """
        self._records = {}
        self._loaded = True
        if not os.path.exists(self.path):
            return {}
        with open(self.path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        if snapshot.get("version") != RECORD_VERSION:
            raise CheckpointMismatch(
                f"unsupported checkpoint version {snapshot.get('version')!r}")
        if snapshot.get("fingerprint") != self.fingerprint:
            raise CheckpointMismatch(
                f"checkpoint {self.path} was written for config "
                f"{snapshot.get('fingerprint')!r}, not {self.fingerprint!r}")
        self._records = {int(key): value
                         for key, value in snapshot.get("seeds", {}).items()}
        self.metadata = dict(snapshot.get("metadata", {}))
        logger.info("loaded checkpoint %s: %d completed seeds",
                    self.path, len(self._records))
        return {index: batch_from_record(record)
                for index, record in self._records.items()}

    @property
    def completed_indices(self) -> list[int]:
        return sorted(self._records)

    # -- writing ---------------------------------------------------------------

    def record(self, batch: SeedBatch) -> None:
        """Add one completed batch; rewrites the snapshot atomically every
        ``flush_interval`` batches (call :meth:`flush` to force a write)."""
        if not self._loaded:
            self.load()
        self._records[batch.seed_index] = batch_to_record(batch)
        self._unflushed += 1
        if self._unflushed >= self.flush_interval:
            self.flush()

    def set_metadata(self, metadata: Dict[str, object]) -> None:
        """Merge campaign metadata into the snapshot; flushed on next write.

        Metadata never participates in the fingerprint check — it is
        observability (telemetry summaries), not campaign state."""
        self.metadata.update(metadata)
        self._unflushed = max(self._unflushed, 1)

    def flush(self) -> None:
        """Write the snapshot now, if there is anything unflushed."""
        if self._unflushed == 0:
            return
        self._write_snapshot()
        self._unflushed = 0

    def _write_snapshot(self) -> None:
        snapshot = {
            "version": RECORD_VERSION,
            "fingerprint": self.fingerprint,
            "seeds": {str(index): record
                      for index, record in sorted(self._records.items())},
        }
        if self.metadata:
            snapshot["metadata"] = self.metadata
        logger.debug("flushing checkpoint %s (%d seeds)", self.path,
                     len(self._records))
        atomic_write_json(self.path, snapshot)
