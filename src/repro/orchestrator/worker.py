"""Worker-process entry points for the pooled executor.

Each pool process builds one :class:`~repro.core.fuzzer.FuzzingCampaign` at
initialization and reuses it for every seed index it is handed.  Because a
seed work-item's RNG streams are derived from ``(rng_seed, seed_index)``
(see :func:`repro.utils.rng.derive_seed`) and never from process-local
state, any worker produces bit-identical batches for a given index.

The campaign carries one process-wide
:class:`~repro.compilers.cache.CompilationCache`, so every seed a worker
processes shares frontend/optimizer artifacts across its differential
configurations (cache contents never influence results — cached and
uncached compiles are bit-identical — so sharding stays deterministic).
"""

from __future__ import annotations

from typing import Optional

from repro.core.fuzzer import CampaignConfig, FuzzingCampaign, SeedBatch

_WORKER_CAMPAIGN: Optional[FuzzingCampaign] = None


def initialize_worker(config: CampaignConfig) -> None:
    """Pool initializer: build this process's campaign once."""
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = FuzzingCampaign(config)


def run_seed_in_worker(seed_index: int) -> SeedBatch:
    """Pool task: process one seed work-item."""
    if _WORKER_CAMPAIGN is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialized")
    return _WORKER_CAMPAIGN.run_seed(seed_index)


def worker_cache_stats() -> Optional[dict]:
    """Compilation-cache statistics of this process's campaign (None until
    the worker is initialized).  Used by diagnostics and tests."""
    if _WORKER_CAMPAIGN is None:
        return None
    return _WORKER_CAMPAIGN.compilation_cache.stats()
