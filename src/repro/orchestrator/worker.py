"""Worker-process entry points for the pooled executor.

Each pool process builds one campaign at initialization and reuses it for
every seed index it is handed.  Two campaign kinds run through the same
machinery — the config type selects which:

* :class:`~repro.core.fuzzer.CampaignConfig` →
  :class:`~repro.core.fuzzer.FuzzingCampaign` (sanitizer FN-bug fuzzing);
* :class:`~repro.markers.engine.MarkerCampaignConfig` →
  :class:`~repro.markers.engine.MarkerEngine` (marker-based
  missed-optimization / regression finding).

Because a seed work-item depends only on ``(config, seed_index)`` (RNG
streams are derived, never process-local), any worker produces bit-identical
batches for a given index.  Each campaign carries one process-wide
:class:`~repro.compilers.cache.CompilationCache`, so every seed a worker
processes shares frontend/optimizer artifacts (cache contents never
influence results — cached and uncached compiles are bit-identical — so
sharding stays deterministic).
"""

from __future__ import annotations

from typing import Optional

from repro.core.fuzzer import CampaignConfig, FuzzingCampaign, SeedBatch
from repro.telemetry import runtime as telemetry


def campaign_for_config(config):
    """Build the campaign matching *config*'s type (see module docstring)."""
    if isinstance(config, CampaignConfig):
        return FuzzingCampaign(config)
    # Imported at use rather than module scope so this dispatch reads as
    # the single place the orchestrator depends on the marker engine (the
    # package is loaded anyway whenever `repro` itself is imported).
    from repro.markers.engine import MarkerCampaignConfig, MarkerEngine
    if isinstance(config, MarkerCampaignConfig):
        return MarkerEngine(config)
    raise TypeError(f"unsupported campaign config type "
                    f"{type(config).__name__!r}")


_WORKER_CAMPAIGN = None


def initialize_worker(config, telemetry_flags: Optional[dict] = None,
                      survey_skip=None) -> None:
    """Pool initializer: build this process's campaign once.

    *telemetry_flags* (from :func:`repro.telemetry.runtime.worker_flags`)
    re-enables telemetry inside the worker.  Any session state inherited
    across ``fork`` is dropped first — a worker must never write to (or
    close) the parent's trace file; its spans buffer in per-seed scopes and
    travel back to the parent inside the batch payload.

    *survey_skip* (``--resurvey``) is the set of already-recorded outcome
    cells; it travels by value like the telemetry flags so every worker
    skips the identical cells — sharding stays deterministic.
    """
    global _WORKER_CAMPAIGN
    telemetry.enable_from_flags(telemetry_flags)
    _WORKER_CAMPAIGN = campaign_for_config(config)
    if survey_skip and isinstance(_WORKER_CAMPAIGN, FuzzingCampaign):
        _WORKER_CAMPAIGN.survey_skip = frozenset(survey_skip)


def run_seed_in_worker(seed_index: int):
    """Pool task: process one seed work-item."""
    if _WORKER_CAMPAIGN is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialized")
    return _WORKER_CAMPAIGN.run_seed(seed_index)


def worker_cache_stats() -> Optional[dict]:
    """Compilation-cache statistics of this process's campaign (None until
    the worker is initialized).  Used by diagnostics and tests."""
    if _WORKER_CAMPAIGN is None:
        return None
    cache = getattr(_WORKER_CAMPAIGN, "compilation_cache", None)
    if cache is None:
        cache = _WORKER_CAMPAIGN.oracle.cache
    return cache.stats()
