"""Cross-campaign telemetry store: SQLite-backed, append-only, queryable.

Per-campaign telemetry (``telemetry/trace.jsonl`` + ``metrics.json``,
checkpoint summaries, ``artifacts/bench_*.json`` records) dies with its
directory.  :class:`TelemetryStore` ingests all of it into one SQLite
database (stdlib :mod:`sqlite3`, WAL mode) so questions spanning many runs
— "is the execute stage getting slower across releases?", "what did the
last twenty campaigns measure for cache hit rate?" — become single queries.

Schema (four tables, see :data:`SCHEMA`):

* ``runs``          — one row per ingested campaign, keyed by a content
  digest (re-ingesting the same telemetry is idempotent) and carrying the
  campaign config fingerprint, git sha and health summary;
* ``spans``         — the flattened span trace of each run;
* ``metric_points`` — counters, gauges, histogram statistics and the
  replayed per-stage profile (``stage.<name>.self_seconds`` etc.) of each
  run, one (run, name, kind) point per row;
* ``bench_samples`` — numeric fields of ``bench_<name>.json`` artifacts,
  stamped with git sha / timestamp / hostname by
  ``benchmarks/bench_common.py``, forming the cross-run trajectory that
  ``scripts/check_bench_regression.py`` gates against.

Everything goes through the ``python -m repro.orchestrator db`` subcommand
(``ingest`` / ``query`` / ``trend``); campaigns started with ``--db`` ingest
themselves on completion.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import socket
import sqlite3
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

#: Bump when the table layout changes; stored in ``PRAGMA user_version``.
STORE_VERSION = 1

SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    digest      TEXT NOT NULL UNIQUE,
    campaign    TEXT,
    git_sha     TEXT,
    source_dir  TEXT,
    ingested_at REAL NOT NULL,
    seeds       INTEGER NOT NULL DEFAULT 0,
    spans       INTEGER NOT NULL DEFAULT 0,
    wall_seconds REAL,
    health      TEXT
);
CREATE TABLE IF NOT EXISTS spans (
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    span_id INTEGER NOT NULL,
    parent  INTEGER,
    scope   INTEGER,
    name    TEXT NOT NULL,
    t       REAL NOT NULL,
    dur     REAL NOT NULL,
    error   TEXT
);
CREATE INDEX IF NOT EXISTS spans_by_run ON spans(run_id, name);
CREATE TABLE IF NOT EXISTS metric_points (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    name   TEXT NOT NULL,
    kind   TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, name, kind)
);
CREATE TABLE IF NOT EXISTS bench_samples (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    digest      TEXT NOT NULL,
    bench       TEXT NOT NULL,
    field       TEXT NOT NULL,
    value       REAL NOT NULL,
    git_sha     TEXT,
    hostname    TEXT,
    recorded_at REAL,
    schema      INTEGER,
    UNIQUE (digest, bench, field)
);
CREATE INDEX IF NOT EXISTS bench_by_series ON bench_samples(bench, field, id);
"""


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout.

    ``REPRO_GIT_SHA`` overrides the lookup (CI detached-head workflows set
    it from the event payload; tests pin it for stable fixtures).
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=10,
                              cwd=cwd)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


@dataclass
class RunRecord:
    """One ingested campaign, as returned by :meth:`TelemetryStore.runs`."""

    id: int
    campaign: Optional[str]
    git_sha: Optional[str]
    source_dir: Optional[str]
    ingested_at: float
    seeds: int
    spans: int
    wall_seconds: Optional[float]
    health: Optional[str]

    def to_json(self) -> dict:
        return {
            "id": self.id, "campaign": self.campaign,
            "git_sha": self.git_sha, "source_dir": self.source_dir,
            "ingested_at": self.ingested_at, "seeds": self.seeds,
            "spans": self.spans, "wall_seconds": self.wall_seconds,
            "health": self.health,
        }


@dataclass
class TrendPoint:
    """One observation of a metric series across the stored runs."""

    run_id: int
    campaign: Optional[str]
    git_sha: Optional[str]
    ingested_at: float
    value: float

    def to_json(self) -> dict:
        return {"run": self.run_id, "campaign": self.campaign,
                "git_sha": self.git_sha, "ingested_at": self.ingested_at,
                "value": self.value}


class TelemetryStore:
    """The cross-campaign telemetry database (SQLite, WAL mode).

    Opens (creating if needed) the database at *path* and applies the
    schema.  Use as a context manager or call :meth:`close`::

        with TelemetryStore("observatory.sqlite") as store:
            run_id = store.ingest_campaign("corpus/")
            for point in store.trend("stage.execute.self_seconds"):
                print(point.run_id, point.value)
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        # The shared connection helper (WAL, NORMAL sync, busy timeout)
        # lets one database file host both the telemetry tables and the
        # corpusdb findings tables without the two writers starving each
        # other; the table namespaces (corpus_* vs. runs/spans/...) are
        # disjoint by construction.
        from repro.corpusdb.connection import connect
        self._conn = connect(self.path)
        with self._conn:
            self._conn.executescript(SCHEMA)
            if self._user_version() == 0:
                self._conn.execute(f"PRAGMA user_version={STORE_VERSION}")

    def _user_version(self) -> int:
        return self._conn.execute("PRAGMA user_version").fetchone()[0]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- ingestion --------------------------------------------------------------

    def ingest_campaign(self, campaign_dir: str,
                        git_sha: Optional[str] = None) -> int:
        """Ingest one campaign directory's persisted telemetry; returns the
        run id.

        Reads ``telemetry/trace.jsonl`` and/or ``metrics.json`` (at least
        one must exist — :func:`repro.telemetry.load_profile` raises
        otherwise), plus the checkpoint/corpus health metadata when
        present.  Idempotent: re-ingesting unchanged telemetry returns the
        existing run id; changed telemetry for the same directory becomes a
        new run.
        """
        from repro.telemetry.profile import load_profile, telemetry_paths
        from repro.telemetry.tracer import read_trace

        campaign_dir = os.path.abspath(campaign_dir)
        trace_path, metrics_path = telemetry_paths(campaign_dir)
        digest = hashlib.sha256()
        events: List[dict] = []
        for path in (trace_path, metrics_path):
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        if os.path.exists(trace_path):
            events = read_trace(trace_path)
        profile = load_profile(campaign_dir)
        key = digest.hexdigest()

        existing = self._conn.execute(
            "SELECT id FROM runs WHERE digest = ?", (key,)).fetchone()
        if existing is not None:
            logger.info("campaign %s already ingested as run %d",
                        campaign_dir, existing["id"])
            return int(existing["id"])

        health = self._health_for(campaign_dir)
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (digest, campaign, git_sha, source_dir, "
                "ingested_at, seeds, spans, wall_seconds, health) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (key, profile.campaign,
                 git_sha if git_sha is not None else current_git_sha(),
                 campaign_dir, time.time(), profile.seed_count,
                 profile.span_count, profile.wall_seconds, health))
            run_id = int(cursor.lastrowid)
            self._conn.executemany(
                "INSERT INTO spans (run_id, span_id, parent, scope, name, "
                "t, dur, error) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [(run_id, event["id"], event.get("parent"),
                  event.get("scope"), event["name"],
                  event.get("t", 0.0), event.get("dur", 0.0),
                  event.get("error"))
                 for event in events if event.get("ev") == "span"])
            self._conn.executemany(
                "INSERT OR REPLACE INTO metric_points "
                "(run_id, name, kind, value) VALUES (?, ?, ?, ?)",
                self._metric_rows(run_id, profile))
        logger.info("ingested campaign %s as run %d (%d spans)",
                    campaign_dir, run_id, profile.span_count)
        return run_id

    @staticmethod
    def _health_for(campaign_dir: str) -> Optional[str]:
        """The health status a finished campaign left in its corpus index."""
        index_path = os.path.join(campaign_dir, "corpus.json")
        try:
            with open(index_path, "r", encoding="utf-8") as handle:
                index = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        health = (index.get("telemetry") or {}).get("health")
        return health.get("status") if isinstance(health, dict) else None

    @staticmethod
    def _metric_rows(run_id: int, profile) -> List[Tuple]:
        rows: List[Tuple] = []
        snapshot = profile.metrics.to_json()
        for name, value in snapshot["counters"].items():
            rows.append((run_id, name, "counter", float(value)))
        for name, value in snapshot["gauges"].items():
            rows.append((run_id, name, "gauge", float(value)))
        for name, data in snapshot["histograms"].items():
            rows.append((run_id, f"{name}.count", "histogram",
                         float(data["count"])))
            rows.append((run_id, f"{name}.sum", "histogram",
                         float(data["sum"])))
        # The replayed profile: the queryable form of `stats` (self time is
        # what trend analysis wants — inclusive time double-counts nesting).
        for stage in profile.stages:
            rows.append((run_id, f"stage.{stage.name}.calls", "profile",
                         float(stage.calls)))
            rows.append((run_id, f"stage.{stage.name}.total_seconds",
                         "profile", stage.total_seconds))
            rows.append((run_id, f"stage.{stage.name}.self_seconds",
                         "profile", stage.self_seconds))
        if profile.wall_seconds is not None:
            rows.append((run_id, "campaign.wall_seconds", "profile",
                         profile.wall_seconds))
        return rows

    def ingest_bench_file(self, path: str) -> int:
        """Ingest one ``bench_<name>.json`` artifact; returns samples added.

        Every numeric field becomes one ``bench_samples`` row carrying the
        artifact's stamp (git sha, timestamp, hostname — absent on
        pre-stamping schema-1 records).  Idempotent per file content.
        """
        with open(path, "rb") as handle:
            raw = handle.read()
        record = json.loads(raw.decode("utf-8"))
        bench = record.get("bench") or os.path.basename(path)
        digest = hashlib.sha256(raw).hexdigest()
        stamp = record.get("stamp") or {}
        rows = [
            (digest, bench, field, float(value), stamp.get("git_sha"),
             stamp.get("hostname"), stamp.get("recorded_at"),
             record.get("schema", 1))
            for field, value in sorted(record.items())
            if isinstance(value, (int, float)) and not isinstance(value, bool)
            and field not in ("schema",)
        ]
        with self._conn:
            added = 0
            for row in rows:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO bench_samples (digest, bench, "
                    "field, value, git_sha, hostname, recorded_at, schema) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)", row)
                added += cursor.rowcount
        return added

    def ingest_bench_dir(self, directory: str) -> Dict[str, int]:
        """Ingest every ``bench_*.json`` under *directory* (sorted order);
        returns ``{filename: samples added}``."""
        results: Dict[str, int] = {}
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return results
        for name in names:
            if name.startswith("bench_") and name.endswith(".json"):
                path = os.path.join(directory, name)
                try:
                    results[name] = self.ingest_bench_file(path)
                except (json.JSONDecodeError, ValueError) as exc:
                    logger.warning("skipping unreadable bench artifact %s "
                                   "(%s)", path, exc)
        return results

    # -- queries ----------------------------------------------------------------

    def runs(self, campaign: Optional[str] = None,
             last: Optional[int] = None) -> List[RunRecord]:
        """Ingested runs, oldest first; filter by campaign fingerprint."""
        sql = ("SELECT id, campaign, git_sha, source_dir, ingested_at, "
               "seeds, spans, wall_seconds, health FROM runs")
        params: list = []
        if campaign is not None:
            sql += " WHERE campaign = ?"
            params.append(campaign)
        sql += " ORDER BY id DESC"
        if last is not None:
            sql += " LIMIT ?"
            params.append(int(last))
        rows = self._conn.execute(sql, params).fetchall()
        return [RunRecord(id=row["id"], campaign=row["campaign"],
                          git_sha=row["git_sha"],
                          source_dir=row["source_dir"],
                          ingested_at=row["ingested_at"], seeds=row["seeds"],
                          spans=row["spans"],
                          wall_seconds=row["wall_seconds"],
                          health=row["health"])
                for row in reversed(rows)]

    def metric_names(self, run_id: Optional[int] = None) -> List[str]:
        """Every metric name in the store (or in one run), sorted."""
        if run_id is None:
            rows = self._conn.execute(
                "SELECT DISTINCT name FROM metric_points ORDER BY name")
        else:
            rows = self._conn.execute(
                "SELECT DISTINCT name FROM metric_points WHERE run_id = ? "
                "ORDER BY name", (run_id,))
        return [row["name"] for row in rows]

    def trend(self, metric: str, last: int = 20,
              campaign: Optional[str] = None) -> List[TrendPoint]:
        """The series of *metric* over the last *last* runs, oldest first."""
        sql = ("SELECT m.run_id, r.campaign, r.git_sha, r.ingested_at, "
               "m.value FROM metric_points m JOIN runs r ON r.id = m.run_id "
               "WHERE m.name = ?")
        params: list = [metric]
        if campaign is not None:
            sql += " AND r.campaign = ?"
            params.append(campaign)
        sql += " ORDER BY m.run_id DESC LIMIT ?"
        params.append(int(last))
        rows = self._conn.execute(sql, params).fetchall()
        return [TrendPoint(run_id=row["run_id"], campaign=row["campaign"],
                           git_sha=row["git_sha"],
                           ingested_at=row["ingested_at"],
                           value=row["value"])
                for row in reversed(rows)]

    def bench_series(self, bench: str, field: str,
                     last: int = 20) -> List[dict]:
        """The last *last* samples of one bench field, oldest first."""
        rows = self._conn.execute(
            "SELECT id, value, git_sha, hostname, recorded_at, schema "
            "FROM bench_samples WHERE bench = ? AND field = ? "
            "ORDER BY id DESC LIMIT ?", (bench, field, int(last))).fetchall()
        return [dict(row) for row in reversed(rows)]

    def bench_fields(self, bench: Optional[str] = None) -> List[Tuple[str, str]]:
        """Distinct ``(bench, field)`` series present in the store."""
        sql = "SELECT DISTINCT bench, field FROM bench_samples"
        params: list = []
        if bench is not None:
            sql += " WHERE bench = ?"
            params.append(bench)
        sql += " ORDER BY bench, field"
        return [(row["bench"], row["field"])
                for row in self._conn.execute(sql, params)]

    def span_durations(self, name: str,
                       run_id: Optional[int] = None) -> List[float]:
        """All recorded durations of spans called *name* (one run or all)."""
        if run_id is None:
            rows = self._conn.execute(
                "SELECT dur FROM spans WHERE name = ? ORDER BY run_id, "
                "span_id", (name,))
        else:
            rows = self._conn.execute(
                "SELECT dur FROM spans WHERE name = ? AND run_id = ? "
                "ORDER BY span_id", (name, run_id))
        return [row["dur"] for row in rows]

    def summary(self) -> dict:
        """Row counts per table — the `db query` footer."""
        counts = {}
        for table in ("runs", "spans", "metric_points", "bench_samples"):
            counts[table] = self._conn.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
        return counts


def stamp_fields() -> dict:
    """The provenance stamp bench artifact writers attach (see
    ``benchmarks/bench_common.py``): git sha, wall-clock timestamp and
    hostname — everything store ingestion and regression baselines key on."""
    return {
        "git_sha": current_git_sha(),
        "recorded_at": time.time(),
        "hostname": socket.gethostname(),
    }
