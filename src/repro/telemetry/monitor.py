"""Live campaign health: stall detection and non-intrusive trace following.

Two consumers share this module:

* the **orchestrator** feeds a :class:`HealthMonitor` every freshly
  executed batch.  The monitor keeps a rolling median of per-seed wall
  times; a gap between batches exceeding ``stall_factor`` × that median is
  flagged as a stall (one WARN log per incident) and the final summary —
  status, stall count, worst gap — lands in the checkpoint metadata and
  corpus index under ``telemetry.health``;
* the **watch subcommand** (``python -m repro.orchestrator watch <dir>``)
  attaches a :class:`TraceFollower` to a *running* campaign's
  ``telemetry/trace.jsonl``.  The follower tails the file read-only
  (complete lines only, partial tail retained for the next poll), so it can
  never disturb the writer, and feeds a :class:`WatchView` that renders
  throughput, ETA and the per-stage self-time breakdown from whatever spans
  have been flushed so far.
"""

from __future__ import annotations

import json
import logging
import os
import statistics
import time
from typing import Callable, List, Optional

from repro.telemetry.profile import profile_from_events, telemetry_paths

logger = logging.getLogger(__name__)

#: A batch gap this many times the rolling per-seed median flags a stall.
DEFAULT_STALL_FACTOR = 5.0
#: Gaps under this many seconds never flag, whatever the median says —
#: sub-second seeds would otherwise make normal scheduling jitter "stalls".
MIN_STALL_SECONDS = 2.0


class HealthMonitor:
    """Rolling stall/straggler detector over per-seed batch completions.

    ``observe(duration)`` records one freshly executed seed batch; the gap
    since the previous observation is compared against
    ``max(min_stall_seconds, stall_factor * rolling_median)``.  The first
    flagged gap of an incident logs a WARN; :meth:`summary` reports the
    campaign's final health for checkpoint metadata.
    """

    def __init__(self, stall_factor: float = DEFAULT_STALL_FACTOR,
                 window: int = 16,
                 min_stall_seconds: float = MIN_STALL_SECONDS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if stall_factor <= 1.0:
            raise ValueError("stall_factor must be > 1")
        self.stall_factor = stall_factor
        self.window = window
        self.min_stall_seconds = min_stall_seconds
        self._clock = clock
        self._durations: List[float] = []
        self._last_progress: Optional[float] = None
        self.batches = 0
        self.stalls = 0
        self.worst_gap_seconds = 0.0

    def start(self) -> None:
        self._last_progress = self._clock()

    @property
    def median_seed_seconds(self) -> Optional[float]:
        """Rolling median duration of the last ``window`` seed batches."""
        if not self._durations:
            return None
        return statistics.median(self._durations)

    def threshold_seconds(self) -> Optional[float]:
        """The current stall threshold, or None before any observation."""
        median = self.median_seed_seconds
        if median is None:
            return None
        return max(self.min_stall_seconds, self.stall_factor * median)

    def observe(self, duration_seconds: float) -> None:
        """Record one freshly executed batch (its per-seed wall time)."""
        now = self._clock()
        self._check_gap(now)
        self._last_progress = now
        self.batches += 1
        self._durations.append(max(0.0, duration_seconds))
        if len(self._durations) > self.window:
            del self._durations[0]

    def check(self) -> str:
        """Live status right now: ``"ok"`` or ``"stalled"``.

        Unlike :meth:`observe`, checking never logs and never mutates the
        stall counters — it answers "is the campaign making progress"
        for pollers (the watch view asks the trace file the same question).
        """
        threshold = self.threshold_seconds()
        if threshold is None or self._last_progress is None:
            return "ok"
        gap = self._clock() - self._last_progress
        return "stalled" if gap > threshold else "ok"

    def _check_gap(self, now: float) -> None:
        threshold = self.threshold_seconds()
        if threshold is None or self._last_progress is None:
            return
        gap = now - self._last_progress
        self.worst_gap_seconds = max(self.worst_gap_seconds, gap)
        if gap > threshold:
            self.stalls += 1
            logger.warning(
                "campaign stall: no batch progress for %.1fs "
                "(threshold %.1fs = %.1fx rolling median %.2fs)",
                gap, threshold, self.stall_factor,
                self.median_seed_seconds or 0.0)

    def summary(self) -> dict:
        """The ``health`` record persisted with checkpoint/corpus metadata."""
        median = self.median_seed_seconds
        return {
            "status": "stalled" if self.stalls else "ok",
            "batches": self.batches,
            "stalls": self.stalls,
            "worst_gap_seconds": round(self.worst_gap_seconds, 3),
            "median_seed_seconds": (round(median, 3)
                                    if median is not None else None),
            "stall_factor": self.stall_factor,
        }


class TraceFollower:
    """Incrementally reads a growing ``trace.jsonl`` without disturbing it.

    Each :meth:`poll` opens the file read-only, seeks to the last consumed
    offset and parses only *complete* lines (a partially written last line
    stays buffered until the writer finishes it), appending the new events
    to :attr:`events`.  Missing file → no events yet (the campaign may not
    have started tracing).
    """

    def __init__(self, trace_path: str) -> None:
        self.trace_path = trace_path
        self.events: List[dict] = []
        self._offset = 0
        self._tail = b""

    def poll(self) -> int:
        """Consume newly flushed events; returns how many were added."""
        try:
            with open(self.trace_path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return 0
        if not chunk:
            return 0
        self._offset += len(chunk)
        data = self._tail + chunk
        lines = data.split(b"\n")
        self._tail = lines.pop()  # incomplete (or empty) final fragment
        added = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                self.events.append(json.loads(line.decode("utf-8")))
                added += 1
            except (json.JSONDecodeError, UnicodeDecodeError):
                logger.debug("skipping malformed trace line: %r", line[:80])
        return added

    def last_event_age(self) -> Optional[float]:
        """Seconds since the trace file last grew (None if it never existed)."""
        try:
            return max(0.0, time.time() - os.path.getmtime(self.trace_path))
        except OSError:
            return None


class WatchView:
    """Renders live campaign progress from a followed trace.

    The view is pure over ``follower.events`` plus wall-clock staleness:
    seeds done and per-stage self time come from the flushed spans, totals
    from the ``campaign_start`` meta event the orchestrator emits, and
    health from how long ago the trace last grew versus the rolling median
    seed duration (same rule as :class:`HealthMonitor`).
    """

    def __init__(self, campaign_dir: str,
                 stall_factor: float = DEFAULT_STALL_FACTOR) -> None:
        self.campaign_dir = campaign_dir
        self.stall_factor = stall_factor
        self.follower = TraceFollower(telemetry_paths(campaign_dir)[0])

    def refresh(self) -> int:
        return self.follower.poll()

    @property
    def started(self) -> bool:
        return bool(self.follower.events)

    @property
    def finished(self) -> bool:
        """True once the top-level campaign span has closed."""
        return any(event.get("ev") == "span"
                   and event.get("name") == "campaign"
                   and event.get("scope") is None
                   for event in self.follower.events)

    def snapshot(self) -> dict:
        """One render-ready progress snapshot from the events so far."""
        events = self.follower.events
        start_meta = next((event for event in events
                           if event.get("ev") == "campaign_start"), None)
        seeds_total = start_meta.get("seeds") if start_meta else None
        workers = start_meta.get("workers") if start_meta else None
        started_at = start_meta.get("time") if start_meta else None
        seed_durations = [event.get("dur", 0.0) for event in events
                          if event.get("ev") == "span"
                          and event.get("name") == "seed"]
        profile = profile_from_events(events)
        elapsed = (max(0.0, time.time() - started_at)
                   if started_at is not None else None)
        seeds_done = len(seed_durations)
        rate = (seeds_done / elapsed if elapsed and seeds_done else None)
        eta = None
        if (rate and seeds_total is not None and seeds_total > seeds_done):
            eta = (seeds_total - seeds_done) / rate
        return {
            "campaign": profile.campaign,
            "seeds_done": seeds_done,
            "seeds_total": seeds_total,
            "workers": workers,
            "spans": profile.span_count,
            "elapsed_seconds": elapsed,
            "seeds_per_second": rate,
            "eta_seconds": eta,
            "stages": [(stage.name, stage.calls, stage.self_seconds)
                       for stage in profile.stages if stage.calls],
            "health": self._health(seed_durations),
            "finished": self.finished,
        }

    def _health(self, seed_durations: List[float]) -> dict:
        age = self.follower.last_event_age()
        if age is None:
            return {"status": "waiting", "last_event_age_seconds": None}
        threshold = None
        if seed_durations:
            window = seed_durations[-16:]
            threshold = max(MIN_STALL_SECONDS,
                            self.stall_factor * statistics.median(window))
        status = "ok"
        if self.finished:
            status = "finished"
        elif threshold is not None and age > threshold:
            status = "stalled"
        return {"status": status,
                "last_event_age_seconds": round(age, 3),
                "threshold_seconds": (round(threshold, 3)
                                      if threshold is not None else None)}

    def format_lines(self) -> List[str]:
        """The human rendering of :meth:`snapshot` (one update block)."""
        snap = self.snapshot()
        lines: List[str] = []
        total = ("?" if snap["seeds_total"] is None
                 else str(snap["seeds_total"]))
        rate = (f"{snap['seeds_per_second']:.2f} seeds/s"
                if snap["seeds_per_second"] else "-- seeds/s")
        eta = (f"eta {snap['eta_seconds']:.0f}s"
               if snap["eta_seconds"] is not None else "eta --")
        lines.append(f"seeds {snap['seeds_done']}/{total} | {rate} | {eta} "
                     f"| {snap['spans']} spans")
        if snap["stages"]:
            total_self = sum(self_s for _, _, self_s in snap["stages"]) or 1.0
            breakdown = "  ".join(
                f"{name} {100 * self_s / total_self:.0f}%"
                for name, _, self_s in snap["stages"])
            lines.append(f"stage self-time: {breakdown}")
        health = snap["health"]
        age = health["last_event_age_seconds"]
        detail = f"last event {age:.1f}s ago" if age is not None \
            else "no trace yet"
        lines.append(f"health: {health['status']} ({detail})")
        return lines
