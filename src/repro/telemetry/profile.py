"""Replay persisted campaign telemetry into a where-time-goes profile.

A traced campaign leaves two files under ``<campaign-dir>/telemetry/``:
``trace.jsonl`` (span events, see :mod:`repro.telemetry.tracer`) and
``metrics.json`` (the merged :class:`~repro.telemetry.metrics.MetricsRegistry`
snapshot).  :func:`load_profile` reads them back and aggregates the stage
spans into per-stage call counts and durations; because stages nest (the
marker oracle compiles through the cache, so ``oracle`` spans contain
``frontend``/``optimize`` children), each stage reports both its *inclusive*
time and its *self* time (inclusive minus nested stage spans) — self times
sum to a true breakdown.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import STAGES
from repro.telemetry.tracer import read_trace

TELEMETRY_DIRNAME = "telemetry"
TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"


@dataclass
class StageStats:
    """Aggregated timings for one pipeline stage across the whole trace."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def mean_ms(self) -> float:
        return (self.total_seconds / self.calls) * 1000.0 if self.calls else 0.0


@dataclass
class CampaignProfile:
    """Everything ``repro.orchestrator stats`` renders for one campaign."""

    campaign: Optional[str]
    stages: List[StageStats]
    counters: Dict[str, int]
    seed_count: int
    span_count: int
    wall_seconds: Optional[float]
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def stage(self, name: str) -> StageStats:
        for stats in self.stages:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def to_json(self) -> dict:
        return {
            "campaign": self.campaign,
            "seeds": self.seed_count,
            "spans": self.span_count,
            "wall_seconds": self.wall_seconds,
            "stages": [{
                "name": stats.name,
                "calls": stats.calls,
                "total_seconds": round(stats.total_seconds, 6),
                "self_seconds": round(stats.self_seconds, 6),
            } for stats in self.stages],
            "counters": dict(self.counters),
        }


def profile_from_events(events: List[dict],
                        metrics: Optional[MetricsRegistry] = None,
                        campaign: Optional[str] = None) -> CampaignProfile:
    """Aggregate raw trace events into a :class:`CampaignProfile`.

    Span ids are only unique per originating tracer, so events are grouped
    by their seed ``scope`` (parent-side events have none) before the
    parent/child duration accounting.
    """
    stage_names = set(STAGES)
    stages = {name: StageStats(name) for name in STAGES}
    seeds = set()
    span_count = 0
    wall: Optional[float] = None
    by_scope: Dict[object, List[dict]] = {}
    for event in events:
        if event.get("ev") == "meta" and campaign is None:
            campaign = event.get("campaign")
        if event.get("ev") != "span":
            continue
        span_count += 1
        scope = event.get("scope")
        if scope is not None:
            seeds.add(scope)
        by_scope.setdefault(scope, []).append(event)
        if event.get("name") == "campaign" and scope is None:
            wall = event.get("dur")

    for scope_events in by_scope.values():
        # Time spent in nested stage spans, charged against each parent so
        # self time = inclusive time - nested stage time.
        nested: Dict[int, float] = {}
        for event in scope_events:
            parent = event.get("parent")
            if parent is not None and event.get("name") in stage_names:
                nested[parent] = nested.get(parent, 0.0) + event.get("dur", 0.0)
        for event in scope_events:
            name = event.get("name")
            if name not in stage_names:
                continue
            stats = stages[name]
            duration = event.get("dur", 0.0)
            stats.calls += 1
            stats.total_seconds += duration
            stats.self_seconds += max(0.0, duration - nested.get(event["id"], 0.0))

    registry = metrics if metrics is not None else MetricsRegistry()
    counters = {name: registry.counter_value(name)
                for name in registry.deterministic_totals()
                if not name.endswith(".count")}
    if metrics is not None and not span_count:
        # Metrics-only campaign (no --trace): synthesize stage rows from the
        # per-stage histograms so `stats` still shows a breakdown.
        for name in STAGES:
            payload = metrics.to_json()["histograms"].get(
                f"stage.{name}.seconds")
            if payload:
                stages[name].calls = payload["count"]
                stages[name].total_seconds = payload["sum"]
                stages[name].self_seconds = payload["sum"]
    return CampaignProfile(
        campaign=campaign,
        stages=[stages[name] for name in STAGES],
        counters=counters,
        seed_count=len(seeds),
        span_count=span_count,
        wall_seconds=wall,
        metrics=registry,
    )


def telemetry_paths(campaign_dir: str) -> Tuple[str, str]:
    """``(trace.jsonl, metrics.json)`` paths under *campaign_dir*."""
    base = os.path.join(campaign_dir, TELEMETRY_DIRNAME)
    return (os.path.join(base, TRACE_FILENAME),
            os.path.join(base, METRICS_FILENAME))


def load_profile(campaign_dir: str) -> CampaignProfile:
    """Load persisted telemetry for a campaign directory into a profile.

    Raises ``FileNotFoundError`` when the directory holds no telemetry at
    all (neither a trace nor a metrics snapshot).
    """
    import json

    trace_path, metrics_path = telemetry_paths(campaign_dir)
    events: List[dict] = []
    registry: Optional[MetricsRegistry] = None
    campaign = None
    if os.path.exists(trace_path):
        events = read_trace(trace_path)
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        campaign = snapshot.get("campaign")
        registry = MetricsRegistry.from_json(snapshot.get("metrics"))
    if not events and registry is None:
        raise FileNotFoundError(
            f"no telemetry under {campaign_dir!r}: run the campaign with "
            f"--trace (and --corpus) to record one")
    return profile_from_events(events, metrics=registry, campaign=campaign)
