"""Structured span tracing with JSONL persistence.

A :class:`Tracer` hands out nested spans through the
:meth:`Tracer.span` context manager::

    with tracer.span("optimize", compiler="llvm", opt="-O2"):
        ...

Each span becomes one JSON event **when it closes**, carrying its name, a
per-tracer integer id, the id of the enclosing span (``parent``), the start
offset from the tracer's epoch (``t``), the duration (``dur``) and any
keyword attributes (``attrs``).  Emitting on close means children appear
before their parents in the stream; consumers reconstruct the hierarchy from
the ids (see :mod:`repro.telemetry.profile`).

Events either buffer in memory (:attr:`Tracer.events` — how worker processes
capture spans that the parent later writes in seed order) or stream through
a :class:`TraceWriter` to a ``trace.jsonl`` file.  The writer records the
creating pid and silently drops writes from forked children, so a pool
worker inheriting the parent's tracer state can never interleave garbage
into the parent's trace file.
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional


class TraceWriter:
    """Append-only JSONL sink for trace events, one JSON object per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Line-buffered: every event reaches the file as soon as it closes,
        # so live `watch` readers tailing the trace see progress without the
        # writer ever being asked to flush (or being disturbed at all).
        self._handle: Optional[io.TextIOBase] = open(path, "w",
                                                     encoding="utf-8",
                                                     buffering=1)
        self._pid = os.getpid()

    def write(self, event: dict) -> None:
        # A forked child inherits this object; its writes must not interleave
        # with the parent's.  Workers buffer spans in memory instead.
        if self._handle is None or os.getpid() != self._pid:
            return
        self._handle.write(json.dumps(event, sort_keys=True,
                                      separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._handle is not None and os.getpid() == self._pid:
            self._handle.close()
        self._handle = None


def read_trace(path: str) -> List[dict]:
    """Load a ``trace.jsonl`` file back into a list of event dicts."""
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class _Span:
    """One active span; created by :meth:`Tracer.span`, closed on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._close(self, error=exc_type.__name__ if exc_type else None)

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute after the span opened."""
        self.attrs[key] = value


class Tracer:
    """Issues nested spans and emits one structured event per closed span.

    Span ids are consecutive integers in *open* order, so two runs executing
    the same work produce structurally identical traces (timestamps aside).
    Events go to *writer* when given, otherwise they accumulate in
    :attr:`events` for the caller to collect.
    """

    def __init__(self, writer: Optional[TraceWriter] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.events: List[dict] = []
        self._writer = writer
        self._clock = clock
        self._epoch = clock()
        self._stack: List[_Span] = []
        self._next_id = 1

    def span(self, name: str, **attrs: Any) -> _Span:
        """A context manager for one traced span; attrs become event fields."""
        return _Span(self, name, attrs)

    @property
    def depth(self) -> int:
        """Number of currently open spans (0 at top level)."""
        return len(self._stack)

    def emit(self, event: dict) -> None:
        """Record a raw event (used for meta records and replayed spans)."""
        if self._writer is not None:
            self._writer.write(event)
        else:
            self.events.append(event)

    # -- span lifecycle (called by _Span) ---------------------------------------------

    def _open(self, span: _Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.start = self._clock()
        self._stack.append(span)

    def _close(self, span: _Span, error: Optional[str]) -> None:
        duration = self._clock() - span.start
        # Tolerate exception-driven unwinding that skipped inner __exit__s.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        event: Dict[str, Any] = {
            "ev": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "t": round(span.start - self._epoch, 6),
            "dur": round(duration, 6),
        }
        if span.attrs:
            event["attrs"] = span.attrs
        if error is not None:
            event["error"] = error
        self.emit(event)
