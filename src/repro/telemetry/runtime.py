"""Process-wide telemetry state and the nullable fast path.

All instrumentation in the pipeline goes through this module, and all of it
follows one rule: when telemetry is disabled (the default), every hook is a
single module-global ``is None`` check — no objects allocated, no clock
reads, nothing per AST node.  That is what keeps the disabled-path overhead
within the ≤2% budget on the differential hot path.

The state machine:

* :func:`enable` installs a :class:`TelemetrySession` (metrics always;
  span tracing optionally, with an optional ``trace.jsonl`` writer).
* In the **parent**, work outside any seed records straight into the
  session's registry/tracer (triage, bucket reduction, campaign spans).
* Per-seed work runs inside :func:`seed_scope`, which swaps in a fresh
  registry (and, when tracing, a fresh buffering tracer) so the batch can
  carry its telemetry as a JSON payload across the process boundary.
* **Workers** never see the parent's session: the pool initializer calls
  :func:`reset_inherited` and re-enables from :func:`worker_flags`, so a
  forked worker gets its own state and never touches the parent's trace
  file (the writer's pid guard is the backstop).
* At batch collection the parent calls :func:`merge_batch` — in seed
  order — folding worker metrics into the session registry and replaying
  buffered spans (stamped with their seed ``scope``) into the trace.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer, TraceWriter

logger = logging.getLogger(__name__)

#: Stage names of the per-stage time histograms (``stage.<name>.seconds``)
#: and the rows of :func:`repro.analysis.table_stage_profile`.
STAGES = ("generate", "frontend", "optimize", "execute", "oracle", "reduce")


class _NullContext:
    """Shared do-nothing context manager returned on every disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NULL = _NullContext()


class SeedScope:
    """Telemetry captured while one seed runs: a registry plus span buffer."""

    __slots__ = ("seed_index", "metrics", "tracer")

    def __init__(self, seed_index: int, tracing: bool) -> None:
        self.seed_index = seed_index
        self.metrics = MetricsRegistry()
        self.tracer = Tracer() if tracing else None

    def payload(self) -> dict:
        """JSON-safe batch payload the parent merges at collection time."""
        payload = {"seed": self.seed_index, "metrics": self.metrics.to_json()}
        if self.tracer is not None:
            payload["spans"] = self.tracer.events
        return payload


class TelemetrySession:
    """The enabled-state bundle installed by :func:`enable`."""

    def __init__(self, campaign: Optional[str] = None, tracing: bool = False,
                 trace_writer: Optional[TraceWriter] = None) -> None:
        self.campaign = campaign
        self.tracing = tracing or trace_writer is not None
        self.trace_writer = trace_writer
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(writer=trace_writer) if self.tracing else None
        self.scope: Optional[SeedScope] = None

    def close(self) -> None:
        if self.trace_writer is not None:
            self.trace_writer.close()


_STATE: Optional[TelemetrySession] = None


# -- lifecycle --------------------------------------------------------------------------


def enable(campaign: Optional[str] = None, tracing: bool = False,
           trace_path: Optional[str] = None) -> TelemetrySession:
    """Install a telemetry session; returns it.  Replaces any active one.

    Metrics collection is always on while a session is active; *tracing*
    additionally records spans, and *trace_path* streams them to a JSONL
    file (opening with a ``meta`` event identifying the campaign).
    """
    global _STATE
    if _STATE is not None:
        disable()
    writer = TraceWriter(trace_path) if trace_path else None
    session = TelemetrySession(campaign=campaign, tracing=tracing,
                               trace_writer=writer)
    if writer is not None and session.tracer is not None:
        session.tracer.emit({"ev": "meta", "version": 1, "campaign": campaign,
                             "created": time.time()})
    _STATE = session
    logger.debug("telemetry enabled (tracing=%s, trace_path=%s)",
                 session.tracing, trace_path)
    return session


def disable() -> Optional[TelemetrySession]:
    """Tear down the active session (closing any writer) and return it."""
    global _STATE
    session, _STATE = _STATE, None
    if session is not None:
        session.close()
        logger.debug("telemetry disabled")
    return session


def reset_inherited() -> None:
    """Drop state inherited across ``fork`` without touching the writer.

    Called first thing in pool worker initializers: the child must not
    close (or ever write) the parent's trace file handle.
    """
    global _STATE
    _STATE = None


def current() -> Optional[TelemetrySession]:
    return _STATE


def worker_flags() -> Optional[dict]:
    """Serializable enablement flags to ship to pool workers via initargs."""
    if _STATE is None:
        return None
    return {"campaign": _STATE.campaign, "tracing": _STATE.tracing}


def enable_from_flags(flags: Optional[dict]) -> None:
    """Worker-side counterpart of :func:`worker_flags` (no trace writer)."""
    reset_inherited()
    if flags:
        enable(campaign=flags.get("campaign"),
               tracing=bool(flags.get("tracing")))


# -- seed scopes and batch merge --------------------------------------------------------


@contextmanager
def seed_scope(seed_index: int) -> Iterator[Optional[SeedScope]]:
    """Route telemetry for one seed into a fresh scope; yields it (or None).

    Yields ``None`` when telemetry is disabled.  Scopes do not nest: an
    inner call while a scope is active yields ``None`` and the outer scope
    keeps collecting.
    """
    session = _STATE
    if session is None or session.scope is not None:
        yield None
        return
    scope = SeedScope(seed_index, tracing=session.tracing)
    session.scope = scope
    try:
        yield scope
    finally:
        session.scope = None


def merge_batch(payload: Optional[dict]) -> None:
    """Fold one batch's telemetry payload into the session (parent side).

    Called once per batch from campaign ``collect()`` — the single merge
    point, always in seed order.  Buffered worker spans are stamped with
    their seed index (``scope``) and replayed into the session tracer.
    """
    session = _STATE
    if session is None or not payload:
        return
    session.metrics.merge_json(payload.get("metrics"))
    if session.tracer is not None:
        seed_index = payload.get("seed")
        for event in payload.get("spans", ()):
            stamped = dict(event)
            stamped["scope"] = seed_index
            session.tracer.emit(stamped)


# -- instrumentation fast paths ---------------------------------------------------------


def metrics() -> Optional[MetricsRegistry]:
    """The registry to record into right now, or None when disabled."""
    session = _STATE
    if session is None:
        return None
    scope = session.scope
    return scope.metrics if scope is not None else session.metrics


def tracer() -> Optional[Tracer]:
    """The tracer to open spans on right now, or None when not tracing."""
    session = _STATE
    if session is None:
        return None
    scope = session.scope
    if scope is not None:
        return scope.tracer
    return session.tracer


def inc(name: str, amount: int = 1) -> None:
    session = _STATE
    if session is None:
        return
    registry = session.scope.metrics if session.scope is not None \
        else session.metrics
    registry.inc(name, amount)


def span(name: str, **attrs: Any):
    """A traced span, or the shared null context when not tracing."""
    active = tracer()
    if active is None:
        return _NULL
    return active.span(name, **attrs)


def heartbeat(seed_index: int) -> None:
    """Record a worker liveness pulse for the seed that just completed.

    Sets the ``worker.heartbeat.time`` (wall clock) and
    ``worker.heartbeat.seed`` gauges and bumps the ``worker.heartbeats``
    counter.  Gauges merge by maximum, so after the parent-side batch merge
    the session metrics always carry the *latest* pulse any worker sent —
    the liveness signal health monitoring reads.  The counter increments
    exactly once per seed, keeping ``deterministic_totals()`` identical
    between serial and parallel runs.  Disabled: one global check.
    """
    session = _STATE
    if session is None:
        return
    registry = session.scope.metrics if session.scope is not None \
        else session.metrics
    registry.gauge("worker.heartbeat.time").set(time.time())
    registry.gauge("worker.heartbeat.seed").set(float(seed_index))
    registry.inc("worker.heartbeats")


class _StageContext:
    """Times one pipeline stage: histogram observation plus optional span."""

    __slots__ = ("name", "attrs", "_span", "_start")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_StageContext":
        active = tracer()
        self._span = None
        if active is not None:
            self._span = active.span(self.name, **self.attrs)
            self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        registry = metrics()
        if registry is not None:
            registry.observe(f"stage.{self.name}.seconds", elapsed)
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)

    def set(self, key: str, value: Any) -> None:
        if self._span is not None:
            self._span.set(key, value)


def stage(name: str, **attrs: Any):
    """Instrument one pipeline stage (see :data:`STAGES`).

    Records a ``stage.<name>.seconds`` histogram observation and, when
    tracing, a span of the same name.  Disabled: returns the shared null
    context — one global check, no allocation beyond the kwargs dict.
    """
    if _STATE is None:
        return _NULL
    return _StageContext(name, attrs)


# -- logging ----------------------------------------------------------------------------

_LOG_LEVELS = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy for CLI/standalone use.

    verbosity 0 → WARNING (quiet), 1 → INFO (progress and summaries),
    2+ → DEBUG (per-seed and cache detail).  Installs exactly one stream
    handler on the ``repro`` root logger; calling again (repeated CLI
    invocations in one process) retargets that same handler in place —
    never a second one, so a message can never be emitted twice.  Library
    use never needs this — module loggers propagate to whatever the
    application configured.
    """
    level = _LOG_LEVELS.get(max(0, min(2, verbosity)), logging.WARNING)
    root = logging.getLogger("repro")
    tagged = [h for h in root.handlers
              if getattr(h, "_repro_telemetry", False)]
    # Surviving duplicates (e.g. handlers installed by code predating the
    # idempotence guarantee) collapse down to the first.
    for extra in tagged[1:]:
        root.removeHandler(extra)
        extra.close()
    if tagged:
        handler = tagged[0]
        # Retarget in place, bypassing setStream(): it flushes the old
        # stream first, which raises if a previous target (say, a captured
        # stderr from an earlier CLI invocation) has since been closed.
        target = stream if stream is not None else sys.stderr
        if handler.stream is not target:
            handler.acquire()
            try:
                handler.stream = target
            finally:
                handler.release()
    else:
        handler = logging.StreamHandler(stream if stream is not None
                                        else sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        handler._repro_telemetry = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    root.setLevel(level)
    return root
