"""Standard-format exporters for persisted span traces.

Two targets, both fed from the ``trace.jsonl`` event list (see
:mod:`repro.telemetry.tracer`):

* **Chrome trace-event JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`) — loadable by ``chrome://tracing``, Perfetto
  and speedscope.  Each span becomes one complete ``"ph": "X"`` event;
  every seed scope maps to its own thread lane (span ``t`` offsets are
  relative to the originating tracer's epoch, so timestamps are only
  comparable *within* a scope — exactly the per-thread model the format
  assumes).
* **Folded stacks** (:func:`to_folded_stacks` / :func:`write_folded_stacks`)
  — Brendan Gregg's ``flamegraph.pl`` / speedscope input: one
  ``a;b;c weight`` line per distinct call path, weighted by *self* time in
  integer microseconds.

Both exports are deterministic functions of the event list: events are
ordered by (scope, start, id) and serialized with sorted keys, so the same
trace always produces byte-identical output — the export round-trip tests
pin that.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: Thread id of parent-side (scope-less) spans in the Chrome export; seed
#: scopes map to ``scope + _SEED_TID_BASE`` so they can never collide.
PARENT_TID = 0
_SEED_TID_BASE = 1


def _span_events(events: List[dict]) -> List[dict]:
    spans = [event for event in events if event.get("ev") == "span"]
    # (scope, start, id) is a total order: ids are unique per scope and
    # restarts of the same scope cannot happen within one trace.
    return sorted(spans, key=lambda e: (e.get("scope") is not None,
                                        e.get("scope") or 0,
                                        e.get("t", 0.0), e.get("id", 0)))


def _tid(event: dict) -> int:
    scope = event.get("scope")
    return PARENT_TID if scope is None else _SEED_TID_BASE + int(scope)


def to_chrome_trace(events: List[dict]) -> dict:
    """Convert trace events to a Chrome trace-event document (a dict).

    The result has a ``traceEvents`` list of complete (``"ph": "X"``)
    events with microsecond ``ts``/``dur``, one thread per seed scope, plus
    thread-name metadata rows; ``json.dump`` it (or use
    :func:`write_chrome_trace`) and load the file in ``chrome://tracing``
    or https://ui.perfetto.dev.
    """
    trace_events: List[dict] = []
    seen_tids: Dict[int, Optional[int]] = {}
    campaign = None
    for event in events:
        if event.get("ev") == "meta" and campaign is None:
            campaign = event.get("campaign")
    for event in _span_events(events):
        tid = _tid(event)
        seen_tids.setdefault(tid, event.get("scope"))
        args = dict(event.get("attrs") or {})
        if event.get("error") is not None:
            args["error"] = event["error"]
        record = {
            "ph": "X",
            "name": event["name"],
            "pid": 1,
            "tid": tid,
            "ts": int(round(event.get("t", 0.0) * 1e6)),
            "dur": int(round(event.get("dur", 0.0) * 1e6)),
            "cat": "repro",
        }
        if args:
            record["args"] = args
        trace_events.append(record)
    metadata: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": PARENT_TID,
        "args": {"name": f"repro campaign {campaign or '?'}"},
    }]
    for tid in sorted(seen_tids):
        scope = seen_tids[tid]
        label = "campaign" if scope is None else f"seed {scope}"
        metadata.append({"ph": "M", "name": "thread_name", "pid": 1,
                         "tid": tid, "args": {"name": label}})
    return {"traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms"}


def write_chrome_trace(events: List[dict], path: str) -> str:
    """Serialize :func:`to_chrome_trace` to *path*; returns the path.

    Output is byte-stable for a given event list (sorted keys, fixed
    separators, trailing newline).
    """
    document = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return path


def parse_chrome_trace(path: str) -> dict:
    """Load a written Chrome trace back (used by tests and validators)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _stack_paths(events: List[dict]) -> List[Tuple[Tuple[str, ...], float]]:
    """``(name path from root, self seconds)`` for every span, per scope."""
    by_scope: Dict[object, List[dict]] = {}
    for event in _span_events(events):
        by_scope.setdefault(event.get("scope"), []).append(event)
    paths: List[Tuple[Tuple[str, ...], float]] = []
    for scope_events in by_scope.values():
        by_id = {event["id"]: event for event in scope_events}
        child_time: Dict[int, float] = {}
        for event in scope_events:
            parent = event.get("parent")
            if parent in by_id:
                child_time[parent] = (child_time.get(parent, 0.0)
                                      + event.get("dur", 0.0))
        for event in scope_events:
            names = [event["name"]]
            cursor, hops = event, 0
            # A cycle cannot occur in a well-formed trace; the hop cap
            # bounds the walk on corrupted input instead of spinning.
            while cursor.get("parent") in by_id and hops < 1000:
                cursor = by_id[cursor["parent"]]
                names.append(cursor["name"])
                hops += 1
            self_seconds = max(
                0.0, event.get("dur", 0.0) - child_time.get(event["id"], 0.0))
            paths.append((tuple(reversed(names)), self_seconds))
    return paths


def to_folded_stacks(events: List[dict]) -> List[str]:
    """Fold the span trace into ``path;to;span weight`` flamegraph lines.

    Weights are *self* time in integer microseconds, aggregated across all
    seed scopes (identical call paths merge), sorted lexically — a
    deterministic, ``flamegraph.pl``-ready folding of the whole campaign.
    Zero-weight paths are kept so call structure survives even for spans
    faster than a microsecond.
    """
    weights: Dict[str, int] = {}
    for path, self_seconds in _stack_paths(events):
        key = ";".join(path)
        weights[key] = weights.get(key, 0) + int(round(self_seconds * 1e6))
    return [f"{key} {weight}" for key, weight in sorted(weights.items())]


def write_folded_stacks(events: List[dict], path: str) -> str:
    """Write :func:`to_folded_stacks` lines to *path*; returns the path."""
    lines = to_folded_stacks(events)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
        if lines:
            handle.write("\n")
    return path


def parse_folded_stacks(path: str) -> Dict[str, int]:
    """Load a folded-stacks file back into ``{path: weight}``."""
    stacks: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            key, _, weight = line.rpartition(" ")
            stacks[key] = int(weight)
    return stacks
