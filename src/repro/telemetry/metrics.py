"""Deterministic metrics primitives: counters, gauges and histograms.

A :class:`MetricsRegistry` is a plain in-process container — no threads, no
global state, no clocks.  Each orchestrator worker process populates its own
registry (one per seed scope, see :mod:`repro.telemetry.runtime`), serializes
it with :meth:`MetricsRegistry.to_json`, and ships it to the parent inside
the seed batch; the parent folds payloads back in with
:meth:`MetricsRegistry.merge_json` **in seed order**, so a parallel campaign
merges to exactly the totals a serial campaign accumulates.

Histograms use *fixed* bucket edges chosen at creation time (default
:data:`DEFAULT_TIME_EDGES`).  Fixed edges are what makes the merge
deterministic: bucket counts are integers and add associatively, unlike any
adaptive-bucketing scheme.  Observation *sums* are floats and therefore
excluded from :meth:`MetricsRegistry.deterministic_totals`, the projection
used by the parallel-equals-serial acceptance test.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Optional, Sequence, Tuple

#: Default histogram edges for stage durations, in seconds.  Spanning 0.5ms
#: to 10s covers everything from a single cached compile to a full reduction.
DEFAULT_TIME_EDGES: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value; merges take the maximum across processes."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-edge histogram: ``len(edges) + 1`` buckets plus count/sum/min/max.

    ``counts[i]`` holds observations ``<= edges[i]``; the final bucket is the
    overflow (``> edges[-1]``).
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str,
                 edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram {name!r} needs sorted non-empty edges")
        self.name = name
        self.edges = tuple(float(edge) for edge in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


class MetricsRegistry:
    """Named counters, gauges and histograms with deterministic merge.

    Example::

        registry = MetricsRegistry()
        registry.inc("cache.hits")
        registry.observe("stage.execute.seconds", 0.012)
        payload = registry.to_json()          # in a worker
        parent_registry.merge_json(payload)   # in the parent, in seed order
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_TIME_EDGES) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, edges)
        elif histogram.edges != tuple(edges):
            raise ValueError(f"histogram {name!r} already exists with "
                             f"different edges")
        return histogram

    # -- shorthands -------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float,
                edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        self.histogram(name, edges).observe(value)

    # -- serialization and merge ------------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-safe snapshot, keys sorted for stable output."""
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "edges": list(histogram.edges),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "sum": histogram.sum,
                    "min": histogram.min,
                    "max": histogram.max,
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def merge_json(self, payload: Optional[dict]) -> None:
        """Fold a :meth:`to_json` payload into this registry.

        Counters and histogram bucket counts add; gauges keep the maximum;
        histogram min/max combine.  Merging the same payloads in the same
        order always produces the same integer totals — float sums are the
        only order-sensitive figures, and they are excluded from
        :meth:`deterministic_totals` for exactly that reason.
        """
        if not payload:
            return
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, data in payload.get("histograms", {}).items():
            histogram = self.histogram(name, data["edges"])
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.count += data["count"]
            histogram.sum += data["sum"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = data.get(bound)
                if theirs is None:
                    continue
                ours = getattr(histogram, bound)
                setattr(histogram, bound,
                        theirs if ours is None else pick(ours, theirs))

    @classmethod
    def from_json(cls, payload: Optional[dict]) -> "MetricsRegistry":
        registry = cls()
        registry.merge_json(payload)
        return registry

    def deterministic_totals(self) -> Dict[str, int]:
        """The integer projection compared by the determinism tests.

        Counters plus histogram observation counts — every figure that must
        be bit-identical between a serial and a parallel run of the same
        campaign.  Durations (float sums) are deliberately excluded.
        """
        totals = {name: counter.value
                  for name, counter in sorted(self._counters.items())}
        for name, histogram in sorted(self._histograms.items()):
            totals[f"{name}.count"] = histogram.count
        return totals

    def counter_value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def names(self) -> Iterable[str]:
        return sorted({*self._counters, *self._gauges, *self._histograms})
