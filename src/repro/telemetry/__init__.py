"""Campaign telemetry: structured tracing, metrics, logging and profiling.

The layer has seven pieces:

* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with counters,
  gauges and fixed-edge histograms that merge deterministically across
  worker processes;
* :mod:`repro.telemetry.tracer` — :class:`Tracer` spans emitting structured
  JSONL events with parent nesting and seed identity;
* :mod:`repro.telemetry.runtime` — the process-wide nullable state every
  instrumentation hook checks (``enable``/``disable``, per-seed scopes,
  batch merge) plus :func:`configure_logging`;
* :mod:`repro.telemetry.profile` — replays a persisted
  ``telemetry/trace.jsonl`` + ``metrics.json`` pair into the per-stage
  profile behind ``python -m repro.orchestrator stats``;
* :mod:`repro.telemetry.store` — :class:`TelemetryStore`, the SQLite
  cross-campaign database behind ``python -m repro.orchestrator db`` and
  the perf-regression checker;
* :mod:`repro.telemetry.monitor` — :class:`HealthMonitor` stall detection
  and the :class:`WatchView` live view behind the ``watch`` subcommand;
* :mod:`repro.telemetry.export` — Chrome trace-event and folded-stacks
  (flamegraph) exporters behind ``stats --export-chrome/--export-folded``.

Everything is disabled by default; the instrumented hot paths reduce to a
single module-global ``is None`` check (see the fast-path rule in
``docs/ARCHITECTURE.md``).
"""

from repro.telemetry.export import (parse_chrome_trace, parse_folded_stacks,
                                    to_chrome_trace, to_folded_stacks,
                                    write_chrome_trace, write_folded_stacks)
from repro.telemetry.metrics import (DEFAULT_TIME_EDGES, Counter, Gauge,
                                     Histogram, MetricsRegistry)
from repro.telemetry.monitor import (HealthMonitor, TraceFollower, WatchView)
from repro.telemetry.profile import (CampaignProfile, StageStats,
                                     load_profile, profile_from_events,
                                     telemetry_paths)
from repro.telemetry.runtime import (STAGES, TelemetrySession,
                                     configure_logging, current, disable,
                                     enable, heartbeat, merge_batch,
                                     seed_scope)
from repro.telemetry.store import (RunRecord, TelemetryStore, TrendPoint,
                                   current_git_sha, stamp_fields)
from repro.telemetry.tracer import Tracer, TraceWriter, read_trace

__all__ = [
    "DEFAULT_TIME_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CampaignProfile",
    "StageStats",
    "load_profile",
    "profile_from_events",
    "telemetry_paths",
    "STAGES",
    "TelemetrySession",
    "configure_logging",
    "current",
    "disable",
    "enable",
    "heartbeat",
    "merge_batch",
    "seed_scope",
    "Tracer",
    "TraceWriter",
    "read_trace",
    "TelemetryStore",
    "RunRecord",
    "TrendPoint",
    "current_git_sha",
    "stamp_fields",
    "HealthMonitor",
    "TraceFollower",
    "WatchView",
    "to_chrome_trace",
    "write_chrome_trace",
    "parse_chrome_trace",
    "to_folded_stacks",
    "write_folded_stacks",
    "parse_folded_stacks",
]
