"""Deterministic random number helpers.

All stochastic components (the Csmith-like seed generator, the MUSIC mutator,
shadow statement synthesis, the fuzzing campaign) draw from a
:class:`RandomSource` instead of the global :mod:`random` state, so that every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")

_DERIVE_MULTIPLIER = 1_000_003
_SEED_MASK = 0xFFFFFFFF


def derive_seed(master: int, *indices: int) -> int:
    """Derive a stable child seed from a master seed and index path.

    Every per-item RNG in the system (one per seed program, one per mutation
    site, one per worker shard) is seeded through this function, so that the
    stream an item sees depends only on ``(master, indices)`` — never on how
    the work was ordered or which process ran it.  That property is what lets
    a parallel campaign reproduce a serial one bit-for-bit.
    """
    child = master & _SEED_MASK
    for index in indices:
        child = (child * _DERIVE_MULTIPLIER + index) & _SEED_MASK
    return child


class RandomSource:
    """A seedable random source with a few convenience helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, salt: int) -> "RandomSource":
        """Return an independent stream derived from this one.

        Forking lets parallel or per-item work (one stream per seed program,
        one per mutation site) stay reproducible regardless of ordering.
        """
        return RandomSource(derive_seed(self.seed, salt))

    def derive(self, *indices: int) -> "RandomSource":
        """Fork on a multi-component index path (see :func:`derive_seed`)."""
        return RandomSource(derive_seed(self.seed, *indices))

    def randint(self, lo: int, hi: int) -> int:
        """Return a random integer in the inclusive range [lo, hi]."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise IndexError("choice() on an empty sequence")
        return self._rng.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._rng.choices(list(items), weights=list(weights), k=1)[0]

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        k = min(k, len(items))
        return self._rng.sample(list(items), k)

    def flip(self, probability: float = 0.5) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability
