"""Small text helpers shared by the printer, reports and benchmark tables."""

from __future__ import annotations

from typing import Iterable, Sequence


def indent(text: str, spaces: int = 4) -> str:
    """Indent every non-empty line of *text* by *spaces* spaces."""
    pad = " " * spaces
    return "\n".join(pad + line if line else line for line in text.splitlines())


def number_lines(source: str) -> str:
    """Return *source* with 1-based line numbers, for diagnostics."""
    lines = source.splitlines()
    width = len(str(len(lines)))
    return "\n".join(f"{i + 1:>{width}} | {line}" for i, line in enumerate(lines))


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table, used by benchmarks to print paper tables."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(row))
    sep = "-+-".join("-" * w for w in widths)
    out = [fmt(list(headers)), sep]
    out.extend(fmt(row) for row in str_rows)
    return "\n".join(out)


def percent(numerator: int, denominator: int) -> str:
    """Format a ratio as a percentage string with one decimal."""
    if denominator == 0:
        return "n/a"
    return f"{100.0 * numerator / denominator:.1f}%"
