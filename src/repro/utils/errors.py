"""Common exception hierarchy for the repro package.

Every error raised by the toolchain derives from :class:`ReproError` so that
callers (the fuzzer, the differential tester, examples) can catch one base
class and keep running a campaign when a single program misbehaves.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class LexError(ReproError):
    """Raised by the lexer when the input contains an invalid token."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(ReproError):
    """Raised by the parser on a syntax error."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class SemaError(ReproError):
    """Raised by semantic analysis (undeclared identifier, bad types, ...)."""


class CompilationError(ReproError):
    """Raised when a simulated compiler cannot produce a binary."""


class ExecutionError(ReproError):
    """Raised when the VM cannot execute a binary (not a program crash)."""


class GenerationError(ReproError):
    """Raised by program generators when a request cannot be satisfied."""


class ProfilingError(ReproError):
    """Raised when an execution profile cannot be collected."""


class ReductionError(ReproError):
    """Raised by the test-case reducer."""
