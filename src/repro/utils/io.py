"""Small filesystem helpers shared by the persistence layers."""

from __future__ import annotations

import json
import os


def atomic_write_json(path: str, payload) -> None:
    """Write *payload* as JSON via a temp file + ``os.replace``.

    Readers (and a campaign killed mid-write) only ever observe either the
    previous complete document or the new one, never a torn write.  Parent
    directories are created as needed.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, path)
