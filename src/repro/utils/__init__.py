"""Shared utilities: error hierarchy, deterministic RNG, text formatting."""

from repro.utils.errors import (
    CompilationError,
    ExecutionError,
    GenerationError,
    LexError,
    ParseError,
    ProfilingError,
    ReductionError,
    ReproError,
    SemaError,
)
from repro.utils.rng import RandomSource, derive_seed
from repro.utils.text import format_table, indent, number_lines, percent

__all__ = [
    "CompilationError",
    "ExecutionError",
    "GenerationError",
    "LexError",
    "ParseError",
    "ProfilingError",
    "ReductionError",
    "ReproError",
    "SemaError",
    "RandomSource",
    "derive_seed",
    "format_table",
    "indent",
    "number_lines",
    "percent",
]
