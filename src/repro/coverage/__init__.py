"""Coverage measurement over the simulated compiler internals (Table 5)."""

from repro.coverage.report import CoverageReport, merge_reports, report_from_tracker
from repro.coverage.tracker import DEFAULT_PACKAGES, CoverageSnapshot, CoverageTracker

__all__ = [
    "CoverageReport",
    "merge_reports",
    "report_from_tracker",
    "DEFAULT_PACKAGES",
    "CoverageSnapshot",
    "CoverageTracker",
]
