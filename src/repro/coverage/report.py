"""Coverage report objects (the rows of the paper's Table 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.coverage.tracker import CoverageTracker


@dataclass
class CoverageReport:
    """Line / function / branch coverage achieved by one corpus."""

    corpus: str
    compiler: str
    line_coverage: float
    function_coverage: float
    branch_coverage: float

    def as_row(self) -> List[str]:
        return [self.corpus, self.compiler,
                f"{100 * self.line_coverage:.1f}%",
                f"{100 * self.function_coverage:.1f}%",
                f"{100 * self.branch_coverage:.1f}%"]


def report_from_tracker(tracker: CoverageTracker, corpus: str,
                        compiler: str) -> CoverageReport:
    return CoverageReport(corpus=corpus, compiler=compiler,
                          line_coverage=tracker.line_coverage(),
                          function_coverage=tracker.function_coverage(),
                          branch_coverage=tracker.branch_coverage())


def merge_reports(reports: Dict[str, CoverageReport]) -> List[List[str]]:
    """Order reports into printable rows (seeds first, UBfuzz last)."""
    order = ["seeds", "music", "csmith-nosafe", "ubfuzz"]
    rows: List[List[str]] = []
    for name in order:
        if name in reports:
            rows.append(reports[name].as_row())
    for name, report in reports.items():
        if name not in order:
            rows.append(report.as_row())
    return rows
